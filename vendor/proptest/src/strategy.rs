//! The [`Strategy`] trait and combinators (generation only, no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug + 'static;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + std::fmt::Debug + 'static,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries a bounded number of
    /// times, then returns the last value regardless — the stub has no
    /// rejection bookkeeping).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Build a recursive strategy: `self` is the leaf case; `recurse` maps a
    /// strategy for the inner level to a strategy for the outer level. The
    /// `depth` cap bounds nesting; `_desired_size`/`_expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // At every level an explicit chance of bottoming out, so
            // expected sizes stay tame while the depth cap is reachable.
            current = Union::weighted(vec![(2, leaf.clone()), (3, deeper)]).boxed();
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of a strategy, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + std::fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + std::fmt::Debug + 'static,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Weighted union of strategies over one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + std::fmt::Debug + 'static> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be zero.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        Union { options, total }
    }
}

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_tuple_strategy {
    ( $($name:ident : $idx:tt),+ ) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.below(span)) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

/// One parsed element of the pattern: a set of candidate chars plus a
/// repetition range (inclusive).
struct Piece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the regex subset used by the workspace's tests: concatenations of
/// single characters and `[...]` classes (ranges + escapes), each optionally
/// quantified by `{n}`, `{n,m}`, `?`, `*` or `+` (the latter two capped at 8
/// repetitions).
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = it.next() else {
                        panic!("proptest(stub): unterminated class in {pattern:?}")
                    };
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = it.next().expect("escape at end of class");
                            set.push(e);
                            prev = Some(e);
                        }
                        '-' if prev.is_some() && it.peek().is_some_and(|n| *n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = it.next().unwrap();
                            // `lo` is already in the set; add the rest.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(u) {
                                    set.push(ch);
                                }
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '\\' => vec![it.next().expect("escape at end of pattern")],
            '.' => (' '..='~').collect(),
            other => vec![other],
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut digits = String::new();
                let mut lo: Option<usize> = None;
                loop {
                    match it.next() {
                        Some('}') => break,
                        Some(',') => {
                            lo = Some(digits.parse().expect("repetition bound"));
                            digits.clear();
                        }
                        Some(d) => digits.push(d),
                        None => panic!("proptest(stub): unterminated {{}} in {pattern:?}"),
                    }
                }
                let hi: usize = digits.parse().expect("repetition bound");
                (lo.unwrap_or(hi), hi)
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(
            !chars.is_empty(),
            "proptest(stub): empty class in {pattern:?}"
        );
        pieces.push(Piece { chars, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.usize_in(piece.min, piece.max + 1)
            };
            for _ in 0..n {
                out.push(piece.chars[rng.usize_in(0, piece.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_escapes_and_printable_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z_.*+?()\\[\\]|% ]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || "_.*+?()[]|% ".contains(c),
                    "unexpected {c:?}"
                );
            }
            let t = "[ -~]{0,200}".generate(&mut r);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategy_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn union_respects_zero_weight_entries() {
        let u = Union::weighted(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(u.generate(&mut r), 2);
        }
    }

    #[test]
    fn tuples_and_ranges_compose() {
        let strat = ("[ab]", 0u32..5).prop_map(|(s, n)| format!("{s}{n}"));
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!(v.starts_with('a') || v.starts_with('b'));
        }
    }
}
