//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_recursive` and `boxed`,
//! * [`Just`](strategy::Just), tuple strategies, integer-range strategies,
//!   string strategies from a small regex subset (`"[a-z][a-z0-9]{0,4}"`),
//! * [`collection::vec`], [`arbitrary::any`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * a deterministic [`test_runner`] that executes N cases per test.
//!
//! **No shrinking**: on failure the runner reports the case index and seed
//! (re-running is deterministic) and re-raises the assertion panic. That is a
//! weaker debugging experience than real proptest but identical in what it
//! accepts and rejects.

#![forbid(unsafe_code)]

pub mod strategy;

/// Deterministic pseudo-random source and case runner.
pub mod test_runner {
    /// SplitMix64, seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo < hi);
            lo + self.below((hi - lo) as u64) as usize
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (the `cases` subset of proptest's config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Execute `case` for every case index; used by the `proptest!` macro.
    ///
    /// The per-case seed derives only from the test name and the case index,
    /// so failures reproduce run over run. An optional
    /// `PROPTEST_CASES` environment variable overrides the case count (for
    /// quick local runs or deeper CI soaks).
    pub fn run_proptest(name: &str, config: &ProptestConfig, case: &mut dyn FnMut(&mut TestRng)) {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);
        for i in 0..cases {
            let seed = fnv1a(name) ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::from_seed(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest(stub): property `{name}` failed at case {i}/{cases} \
                     (seed {seed:#018x}; deterministic, re-run to reproduce)"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }

    pub use ProptestConfig as Config;
}

/// `any::<T>()` — arbitrary values of simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical arbitrary-value strategy.
    pub trait Arbitrary: Sized {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII, occasionally wider BMP scalars.
            if rng.below(4) == 0 {
                char::from_u32(0x00A0 + (rng.below(0x0800)) as u32).unwrap_or('ß')
            } else {
                (0x20u8 + rng.below(0x5F) as u8) as char
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary + Clone + std::fmt::Debug + 'static> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, lo..hi)` — proptest's `collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.usize_in(self.size.start, self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The proptest entry-point macro: declares `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config = $cfg;
            let mut __proptest_case = |__proptest_rng: &mut $crate::test_runner::TestRng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
            };
            $crate::test_runner::run_proptest(
                stringify!($name),
                &__proptest_config,
                &mut __proptest_case,
            );
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Internal: bind `name in strategy` / `name: Type` parameters.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident $(,)? ) => {};
    ( $rng:ident, $name:ident in $strat:expr ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ( $rng:ident, $name:ident in $strat:expr, $($rest:tt)+ ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ( $rng:ident, $name:ident : $ty:ty ) => {
        let $name =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ( $rng:ident, $name:ident : $ty:ty, $($rest:tt)+ ) => {
        let $name =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($weight:expr => $strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a property; reported with the failing case on panic.
#[macro_export]
macro_rules! prop_assert {
    ( $cond:expr ) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ( $cond:expr, $($fmt:tt)+ ) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ( $left:expr, $right:expr $(,)? ) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!("prop_assert_eq failed:\n  left: {:?}\n right: {:?}", __l, __r);
        }
    }};
    ( $left:expr, $right:expr, $($fmt:tt)+ ) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!(
                "prop_assert_eq failed:\n  left: {:?}\n right: {:?}\n  {}",
                __l, __r, format!($($fmt)+)
            );
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ( $left:expr, $right:expr $(,)? ) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            panic!("prop_assert_ne failed: both sides equal {:?}", __l);
        }
    }};
}
