//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses: `StdRng`
//! seeded with [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_bool` and `gen_range` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically fine
//! for synthetic-workload generation and randomized tests. Its output does
//! **not** match the real `rand` crate's `StdRng` stream; nothing in the
//! workspace depends on the exact sequence, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Derive a value from 64 random bits.
    fn from_random_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_random_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_random_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_random_bits(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_random_bits(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`]. The sampled type is the
/// generic parameter (as in the real crate), which lets integer-literal
/// fallback resolve calls like `gen_range(0..10)`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::from_random_bits(rng.next_u64());
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::from_random_bits(self.next_u64()) < p
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f = r.gen_range(0.5..95.0);
            assert!((0.5..95.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
