//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's benches use — benchmark groups,
//! `bench_with_input`/`bench_function`, throughput annotations,
//! `criterion_group!`/`criterion_main!` — with a deliberately small runner:
//! a short warm-up, a fixed measurement budget per benchmark, and a one-line
//! median/throughput report on stdout. No statistics, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Time `f` repeatedly within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocations).
        black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 30 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to derive rates in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget.min(Duration::from_secs(2));
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.criterion.budget,
        };
        f(&mut b, input);
        self.report(&id.id, &mut b.samples);
        self
    }

    /// Benchmark `f` without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.criterion.budget,
        };
        f(&mut b);
        self.report(&id.id, &mut b.samples);
        self
    }

    fn report(&self, id: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if median > Duration::ZERO => {
                let mbps = b as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({mbps:.1} MiB/s)")
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?} over {} samples{rate}",
            self.name,
            samples.len()
        );
    }

    /// End the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// The harness entry object.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep stub benches quick: a fraction of a second per benchmark.
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `Criterion::default().configure_from_args()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark without a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declare a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
