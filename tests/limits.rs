//! Resource-limit enforcement: every cap of `ResourceLimits` must trip as
//! `EvalError::ResourceExhausted` on a stream crafted to exceed it, the
//! evaluator must stay queryable after the abort, and results whose
//! membership was determined before the breach must already have reached
//! the sink (companion to the failure-injection suite in robustness.rs).

use spex::core::{
    CompiledNetwork, CountingSink, EvalError, Evaluator, FragmentCollector, LimitKind,
    ResourceLimits,
};
use spex::query::Rpeq;

fn net(q: &str) -> CompiledNetwork {
    let q: Rpeq = q.parse().unwrap();
    CompiledNetwork::compile(&q)
}

/// Run `query` over `xml` with `limits`; expect a breach of `kind` and
/// return the evaluator's final statistics plus the collected fragments.
fn expect_breach(
    query: &str,
    xml: &str,
    limits: ResourceLimits,
    kind: LimitKind,
) -> (spex::core::EngineStats, Vec<String>) {
    let network = net(query);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_limits(&network, &mut sink, limits);
    let err = eval.push_str(xml).expect_err("limit must trip");
    match err {
        EvalError::ResourceExhausted {
            kind: k,
            limit,
            observed,
        } => {
            assert_eq!(k, kind, "wrong limit kind");
            assert!(observed > limit, "{observed} must exceed {limit}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // Queryable after the breach: the latched error is re-reported, the
    // statistics are readable, finishing is safe.
    assert_eq!(eval.exhausted().map(|b| b.kind), Some(kind));
    assert!(eval.stats().ticks == 0 || eval.stats().messages > 0);
    let stats = eval.finish();
    assert_eq!(
        stats.results + stats.dropped,
        stats.candidates_created,
        "every candidate must be accounted for after an abort"
    );
    (stats, sink.into_fragments())
}

#[test]
fn stream_depth_cap_trips() {
    let xml = "<a><b><c><d><e/></d></c></b></a>";
    let (stats, _) = expect_breach(
        "_*.e",
        xml,
        ResourceLimits::default().with_max_stream_depth(4),
        LimitKind::StreamDepth,
    );
    // Post-tick check: the breach is observed on the first event past the
    // cap, never later (one-tick overshoot at most).
    assert_eq!(stats.max_stream_depth, 5);
}

#[test]
fn buffered_events_cap_trips() {
    // `_*.a[b].c` with `b` after `c`: the whole `<c>…</c>` fragment stays
    // buffered while the qualifier is undetermined.
    let xml = "<r><a><c><u/><u/><u/><u/><u/><u/></c><b/></a></r>";
    let (stats, _) = expect_breach(
        "_*.a[b].c",
        xml,
        ResourceLimits::default().with_max_buffered_events(5),
        LimitKind::BufferedEvents,
    );
    assert!(stats.peak_buffered_events > 5);
}

#[test]
fn live_candidates_cap_trips() {
    // `_*._` makes every element a candidate, and all of them stay live
    // until the outermost fragment completes.
    let xml = "<a><a><a><a><a><a><a/></a></a></a></a></a></a>";
    let (stats, _) = expect_breach(
        "_*._",
        xml,
        ResourceLimits::default().with_max_live_candidates(4),
        LimitKind::LiveCandidates,
    );
    assert!(stats.peak_live_candidates > 4);
}

#[test]
fn formula_size_cap_trips() {
    // Qualified wildcard closures grow the condition formulas with depth
    // (the o(φ) analysis of §V — see `harness formula_growth`).
    let mut xml = String::new();
    for _ in 0..16 {
        xml.push_str("<a>");
    }
    xml.push_str("<leaf/>");
    for _ in 0..16 {
        xml.push_str("</a>");
    }
    let (stats, _) = expect_breach(
        "_*._[leaf]._*._",
        &xml,
        ResourceLimits::default().with_max_formula_size(3),
        LimitKind::FormulaSize,
    );
    assert!(stats.max_formula_size > 3);
}

#[test]
fn total_messages_cap_trips() {
    let xml = "<r><x/><x/><x/><x/><x/><x/><x/><x/></r>";
    let (stats, _) = expect_breach(
        "r.x",
        xml,
        ResourceLimits::default().with_max_total_messages(30),
        LimitKind::TotalMessages,
    );
    assert!(stats.messages > 30);
}

#[test]
fn results_determined_before_the_abort_were_already_emitted() {
    // Two <x> results are decided (and streamed) before the depth bomb at
    // the end of the document trips the cap.
    let xml = "<r><x>1</x><x>2</x><boom><boom><boom><boom/></boom></boom></boom></r>";
    let network = net("r.x");
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_limits(
        &network,
        &mut sink,
        ResourceLimits::default().with_max_stream_depth(4),
    );
    let err = eval.push_str(xml).expect_err("depth cap must trip");
    assert!(matches!(
        err,
        EvalError::ResourceExhausted {
            kind: LimitKind::StreamDepth,
            ..
        }
    ));
    let stats = eval.finish();
    assert_eq!(stats.results, 2);
    assert_eq!(
        sink.fragments(),
        ["<x>1</x>".to_string(), "<x>2</x>".to_string()]
    );
    // Delivered progressively, before finish(): each fragment's first
    // delivery happened at its own start tick, well before the breach.
    for (start, delivered) in &sink.timing {
        assert_eq!(start, delivered, "results must stream before the abort");
    }
}

#[test]
fn undetermined_buffers_are_released_on_abort() {
    // The candidate `<c>…` is still undetermined (its `b` never arrives
    // before the breach): the abort must drop it, not leak it.
    let xml = "<r><a><c><u/><u/></c><deep><deep><deep><deep/></deep></deep></deep></a></r>";
    let network = net("_*.a[b].c");
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_limits(
        &network,
        &mut sink,
        ResourceLimits::default().with_max_stream_depth(5),
    );
    assert!(eval.push_str(xml).is_err());
    let stats = eval.finish();
    assert!(sink.fragments().is_empty());
    assert_eq!(stats.dropped, stats.candidates_created);
    assert_eq!(stats.results, 0);
}

#[test]
fn push_discards_after_breach_but_try_push_reports_it() {
    let network = net("_*.x");
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::with_limits(
        &network,
        &mut sink,
        ResourceLimits::default().with_max_total_messages(10),
    );
    let events = spex::xml::reader::parse_events("<r><x/><x/><x/><x/></r>").unwrap();
    for ev in events {
        eval.push(ev); // infallible path: breach silently discards
    }
    let messages = eval.stats().messages;
    // The latched breach is visible on demand.
    assert_eq!(
        eval.exhausted().map(|b| b.kind),
        Some(LimitKind::TotalMessages)
    );
    assert!(
        eval.try_push(spex::xml::XmlEvent::text("late")).is_err(),
        "try_push must report the latched breach"
    );
    // Discarded means discarded: no further messages were processed.
    assert_eq!(eval.stats().messages, messages);
}

#[test]
fn limits_above_the_peaks_change_nothing() {
    // A guarded run whose caps sit above the measured peaks is
    // byte-identical to the unlimited run.
    let xml = "<a><a><c>x</c></a><b/><c>y</c></a>";
    let query = "_*.a[b].c";
    let network = net(query);

    let mut free_sink = FragmentCollector::new();
    let mut free = Evaluator::new(&network, &mut free_sink);
    free.push_str(xml).unwrap();
    let free_stats = free.finish();

    let generous = ResourceLimits::default()
        .with_max_stream_depth(free_stats.max_stream_depth)
        .with_max_buffered_events(free_stats.peak_buffered_events)
        .with_max_live_candidates(free_stats.peak_live_candidates)
        .with_max_formula_size(free_stats.max_formula_size)
        .with_max_total_messages(free_stats.messages);
    let mut capped_sink = FragmentCollector::new();
    let mut capped = Evaluator::with_limits(&network, &mut capped_sink, generous);
    capped
        .push_str(xml)
        .expect("caps at the peaks must not trip");
    let capped_stats = capped.finish();

    assert_eq!(capped_stats, free_stats);
    assert_eq!(capped_sink.fragments(), free_sink.fragments());
    assert_eq!(capped_sink.timing, free_sink.timing);
}

#[test]
fn multi_query_runs_accept_limits() {
    use spex::core::multi::SharedQuerySet;
    use spex::core::ResultSink;

    let set = SharedQuerySet::compile(&[
        ("x".to_string(), "r.x".parse().unwrap()),
        ("y".to_string(), "r.y".parse().unwrap()),
    ]);
    let mut cx = CountingSink::new();
    let mut cy = CountingSink::new();
    {
        let sinks: Vec<&mut dyn ResultSink> = vec![&mut cx, &mut cy];
        let mut run =
            set.run_with_limits(sinks, ResourceLimits::default().with_max_stream_depth(2));
        let mut tripped = false;
        for ev in spex::xml::reader::parse_events("<r><x/><y><deep/></y></r>").unwrap() {
            if run.try_push(ev).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "depth 4 must exceed the cap of 2");
        assert_eq!(
            run.exhausted().map(|b| b.kind),
            Some(LimitKind::StreamDepth)
        );
        run.finish();
    }
    // The <x/> result was determined before the breach and reached its sink.
    assert_eq!(cx.results, 1);
}

#[test]
fn zero_caps_trip_on_the_first_event() {
    let network = net("a");
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::with_limits(
        &network,
        &mut sink,
        ResourceLimits::default().with_max_total_messages(0),
    );
    assert!(eval.try_push(spex::xml::XmlEvent::StartDocument).is_err());
    let stats = eval.finish();
    assert_eq!(stats.results, 0);
}
