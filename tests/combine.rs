//! Integration properties of the multi-tenant query combiner
//! (`spex-combine`): a combined N-query set must be *observationally
//! indistinguishable* from N independently-compiled evaluations — the same
//! fragments, byte for byte, per query, on both execution engines — no
//! matter how aggressively the combiner shares prefixes, hash-conses
//! qualifiers, or aliases canonically-equal queries onto one sink. On
//! failure, proptest shrinks to the smallest (document, query set) pair
//! exhibiting the divergence.

use proptest::prelude::*;
use spex::core::sink::ResultSink;
use spex::core::{CompiledNetwork, Engine, Evaluator, FragmentCollector};
use spex::query::{Label, Rpeq};
use spex::xml::XmlEvent;
use std::collections::HashMap;

fn step(l: &str) -> Rpeq {
    Rpeq::Step(Label::Name(l.to_string()))
}

fn chain(labels: &[&str]) -> Rpeq {
    let mut it = labels.iter();
    let first = step(it.next().expect("non-empty chain"));
    it.fold(first, |acc, l| acc.then(step(l)))
}

fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("e".to_string()),
    ]
}

/// Deliberately-overlapping prefixes: every tenant query starts with one of
/// three shapes, so a generated set of a few dozen queries is guaranteed to
/// collide on the step trie (and often to collide *entirely*, exercising
/// the whole-query sink aliasing path).
fn shared_prefix() -> impl Strategy<Value = Rpeq> {
    prop_oneof![
        Just(chain(&["a", "b"])),
        Just(step("a")),
        Just(step("b").then(Rpeq::Star(Label::Name("c".to_string())))),
    ]
}

/// A small pool of qualifiers shared across tenants, including a
/// non-trivial union — the shapes the combiner hash-conses into one
/// condition sub-network when they land on the same trie node.
fn shared_qualifier() -> impl Strategy<Value = Rpeq> {
    prop_oneof![
        Just(step("b")),
        Just(chain(&["c", "b"])),
        Just(Rpeq::Plus(Label::Name("b".to_string())).or(step("c"))),
    ]
}

/// Per-tenant suffix: up to two further steps, occasionally a closure or a
/// wildcard, so queries diverge *after* the shared prefix.
fn suffix() -> impl Strategy<Value = Rpeq> {
    proptest::collection::vec(
        prop_oneof![
            3 => label().prop_map(|l| Rpeq::Step(Label::Name(l))),
            1 => label().prop_map(|l| Rpeq::Star(Label::Name(l))),
            1 => Just(Rpeq::Step(Label::Wildcard)),
        ],
        0..3,
    )
    .prop_map(|steps| steps.into_iter().fold(Rpeq::Empty, |acc, s| acc.then(s)))
}

/// One tenant's standing query: shared prefix, private suffix, and — half
/// the time — a qualifier drawn from the shared pool.
fn tenant_query() -> impl Strategy<Value = Rpeq> {
    (
        shared_prefix(),
        suffix(),
        prop_oneof![
            1 => Just(None),
            1 => shared_qualifier().prop_map(Some),
        ],
    )
        .prop_map(|(prefix, suffix, qualifier)| {
            let chain = prefix.then(suffix);
            match qualifier {
                Some(q) => chain.with_qualifier(q),
                None => chain,
            }
        })
}

/// Balanced subtree events over the same alphabet the queries use.
fn subtree(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = label().prop_map(|l| vec![XmlEvent::open(l.clone()), XmlEvent::close(l)]);
    leaf.prop_recursive(depth, 48, 3, |inner| {
        (label(), proptest::collection::vec(inner, 0..3)).prop_map(|(l, kids)| {
            let mut v = vec![XmlEvent::open(l.clone())];
            for k in kids {
                v.extend(k);
            }
            v.push(XmlEvent::close(l));
            v
        })
    })
}

fn document() -> impl Strategy<Value = Vec<XmlEvent>> {
    (label(), proptest::collection::vec(subtree(4), 0..3)).prop_map(|(root, kids)| {
        let mut v = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
        for k in kids {
            v.extend(k);
        }
        v.push(XmlEvent::close(root));
        v.push(XmlEvent::EndDocument);
        v
    })
}

/// `query` evaluated alone on its own network: the per-query oracle.
fn independent_fragments(query: &Rpeq, events: &[XmlEvent], engine: Engine) -> Vec<String> {
    let net = CompiledNetwork::compile(query);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_engine(&net, &mut sink, engine);
    for ev in events {
        eval.push(ev.clone());
    }
    eval.finish();
    sink.into_fragments()
}

/// The whole combined set in one pass, fragments keyed by query name.
fn combined_fragments(
    set: &spex::core::multi::SharedQuerySet,
    events: &[XmlEvent],
    engine: Engine,
) -> HashMap<String, Vec<String>> {
    let mut collectors: Vec<FragmentCollector> = (0..set.ids().len())
        .map(|_| FragmentCollector::new())
        .collect();
    {
        let sinks: Vec<&mut dyn ResultSink> = collectors
            .iter_mut()
            .map(|c| c as &mut dyn ResultSink)
            .collect();
        let mut run = set.run_engine(engine, sinks);
        for ev in events {
            run.push(ev.clone());
        }
        run.finish();
    }
    set.ids()
        .iter()
        .cloned()
        .zip(
            collectors
                .into_iter()
                .map(FragmentCollector::into_fragments),
        )
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn combined_set_is_byte_identical_to_independent_evaluation(
        events in document(),
        queries in proptest::collection::vec(tenant_query(), 1..33)
    ) {
        let named: Vec<(String, Rpeq)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (format!("q{i}"), q.clone()))
            .collect();
        let combined = spex_combine::combine(&named).expect("generated queries compile");
        for engine in [Engine::Vm, Engine::Network] {
            let shared = combined_fragments(&combined.set, &events, engine);
            prop_assert_eq!(shared.len(), named.len());
            for (name, query) in &named {
                let alone = independent_fragments(query, &events, engine);
                let via_set = shared.get(name).expect("every registered name has a sink");
                prop_assert_eq!(
                    via_set, &alone,
                    "{engine:?}: query {} `{}` diverges in a {}-query set over {}",
                    name, query, named.len(),
                    spex::workloads::events_to_xml(&events)
                );
            }
        }
    }
}

#[test]
fn combined_degree_strictly_decreases_on_overlap() {
    // A known-overlap tenant set: three queries on the `a.b` prefix (one
    // qualified), a canonical duplicate pair spelled two ways, and a union
    // respelling. Sharing must make the physical network *strictly*
    // smaller than the sum of the per-query networks — this is the whole
    // point of the combiner, so it is pinned here as an invariant, not
    // just reported.
    let named: Vec<(String, Rpeq)> = [
        ("q0", "a.b.c"),
        ("q1", "a.b.e"),
        ("q2", "a.b[c].e"),
        ("q3", "a.(b|c)"),
        ("q4", "a.(c|b)"), // canonically equal to q3: aliases its sink
        ("q5", "b*.b.e"),
    ]
    .iter()
    .map(|(n, q)| (n.to_string(), q.parse().expect("test query parses")))
    .collect();
    let combined = spex_combine::combine(&named).expect("test queries compile");
    assert_eq!(combined.report.queries, 6);
    assert_eq!(
        combined.report.distinct, 5,
        "q3/q4 must collapse to one canonical query"
    );
    assert!(
        combined.set.degree() < combined.set.unshared_degree(),
        "sharing must strictly shrink the network: degree {} vs unshared {}",
        combined.set.degree(),
        combined.set.unshared_degree()
    );
    assert_eq!(combined.report.degree, combined.set.degree());
    assert_eq!(
        combined.report.unshared_degree,
        combined.set.unshared_degree()
    );
}
