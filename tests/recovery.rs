//! End-to-end recovery tests: every mutator × every recovery policy, checked
//! against the DOM oracle (DESIGN.md §10).
//!
//! The properties under test, for each corrupted stream:
//!
//! 1. **No panic, no surfaced error** — a `Repair`/`SkipSubtree` run always
//!    completes with a `RunReport`.
//! 2. **Subset soundness** — delivered fragments are a sub-multiset of the
//!    clean-stream results computed by the in-memory DOM evaluator
//!    (`spex-baseline`), which never sees the corruption.
//! 3. **Fault positions point at the corruption** — no reported fault
//!    precedes the injection site, and a truncation fault sits exactly at
//!    the cut.
//!
//! Plus: Strict is byte-identical to plain evaluation on clean streams, the
//! two truncation outcomes relate as Drop ⊆ ForceFalse, and a ~200-mutant
//! sweep over the Mondial workload stays panic-free and sound.

use spex_bench::fault::{fault_sweep, is_sub_multiset, mondial_workloads, mutate, Mutator};
use spex_core::{evaluate_str, evaluate_str_recovering, RecoveryOptions, TruncationOutcome};
use spex_xml::{Document, RecoveryPolicy};

/// Clean-stream results via the in-memory DOM evaluator — an oracle that
/// shares no code with the streamed recovery path.
fn dom_oracle(query: &str, xml: &str) -> Vec<String> {
    let events = spex_xml::reader::parse_events(xml).expect("oracle input must be well-formed");
    let doc = Document::from_events(events).expect("well-formed");
    let q: spex_query::Rpeq = query.parse().expect("valid query");
    spex_baseline::DomEvaluator::new(&doc)
        .evaluate(&q)
        .into_iter()
        .map(|id| doc.subtree_string(id))
        .collect()
}

const DOC: &str = "<lib><shelf><book><t>a&amp;b</t></book><book><t>c</t></book></shelf>\
                   <shelf><box/><book><t>d</t></book></shelf></lib>";

const QUERIES: [&str; 3] = ["lib.shelf.book", "_*.book[t].t", "lib.shelf[box].book"];

#[test]
fn dom_oracle_agrees_with_streamed_evaluation_on_clean_input() {
    for query in QUERIES {
        let oracle = dom_oracle(query, DOC);
        let streamed = evaluate_str(query, DOC).unwrap();
        assert!(!oracle.is_empty(), "{query}: oracle selected nothing");
        assert!(
            is_sub_multiset(&streamed, &oracle) && is_sub_multiset(&oracle, &streamed),
            "{query}: oracle {oracle:?} != streamed {streamed:?}"
        );
    }
}

#[test]
fn strict_policy_is_byte_identical_on_clean_streams() {
    for query in QUERIES {
        let (frags, report) =
            evaluate_str_recovering(query, DOC, RecoveryOptions::default()).unwrap();
        assert_eq!(frags, evaluate_str(query, DOC).unwrap(), "{query}");
        assert!(report.faults.is_empty());
        assert!(!report.truncated);
    }
}

/// The full grid: 6 mutators × 12 seeds × 2 policies × 3 queries.
#[test]
fn mutator_by_policy_grid_is_sound_and_localizes_faults() {
    for query in QUERIES {
        let oracle = dom_oracle(query, DOC);
        for mutator in Mutator::ALL {
            for seed in 0..12u64 {
                let m = mutate(DOC, mutator, seed);
                if !m.changed {
                    continue;
                }
                for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
                    let ctx = format!("{query} / {mutator} / seed {seed} / {policy}");
                    let options = RecoveryOptions {
                        policy,
                        ..RecoveryOptions::default()
                    };
                    let (frags, report) = evaluate_str_recovering(query, &m.xml, options)
                        .unwrap_or_else(|e| panic!("{ctx}: surfaced error {e}\n{}", m.xml));
                    assert!(
                        is_sub_multiset(&frags, &oracle),
                        "{ctx}: {frags:?} not a subset of {oracle:?}\n{}",
                        m.xml
                    );
                    assert!(
                        !report.faults.is_empty(),
                        "{ctx}: corruption went unreported\n{}",
                        m.xml
                    );
                    // No fault precedes the injection site (bytes before it
                    // are untouched), and a truncation sits exactly at the
                    // cut.
                    let min_offset = report
                        .faults
                        .iter()
                        .map(|f| f.position.offset)
                        .min()
                        .unwrap();
                    assert!(
                        min_offset >= m.offset as u64,
                        "{ctx}: fault at byte {min_offset} precedes injection at {}\n{}",
                        m.offset,
                        m.xml
                    );
                    if mutator == Mutator::TruncateAtByte {
                        assert_eq!(
                            report.faults.last().unwrap().position.offset,
                            m.offset as u64,
                            "{ctx}: truncation fault not at the cut"
                        );
                        assert!(report.truncated, "{ctx}: truncation not flagged");
                    }
                }
            }
        }
    }
}

#[test]
fn truncation_outcomes_relate_as_drop_subset_of_force_false() {
    for query in QUERIES {
        for seed in 0..12u64 {
            let m = mutate(DOC, Mutator::TruncateAtByte, seed);
            assert!(m.changed);
            let run = |outcome: TruncationOutcome| {
                let options = RecoveryOptions {
                    policy: RecoveryPolicy::Repair,
                    on_truncation: outcome,
                    ..RecoveryOptions::default()
                };
                evaluate_str_recovering(query, &m.xml, options).expect("repair run completes")
            };
            let (dropped, drop_report) = run(TruncationOutcome::Drop);
            let (forced, force_report) = run(TruncationOutcome::ForceFalse);
            assert!(drop_report.truncated && force_report.truncated);
            // Drop only ever withholds more: everything it delivers,
            // ForceFalse delivers too.
            assert!(
                is_sub_multiset(&dropped, &forced),
                "{query} seed {seed}: Drop {dropped:?} not within ForceFalse {forced:?}"
            );
            // And whatever Drop delivers survived quarantine, so it is
            // oracle-sound.
            assert!(is_sub_multiset(&dropped, &dom_oracle(query, DOC)));
        }
    }
}

/// The zero-copy reader path (`next_into` an arena) and the owned path
/// (`next_event` allocating `XmlEvent`s) must agree byte-for-byte on
/// corrupted streams: same repaired event sequence, identical fault
/// reports, same truncation flag — for every mutator and recovery policy.
/// This pins the invariant that the arena representation changed *how*
/// events are stored, never *what* the recovery layer observes.
#[test]
fn zero_copy_reader_matches_owned_reader_on_mutants() {
    for mutator in Mutator::ALL {
        for seed in 0..8u64 {
            let m = mutate(DOC, mutator, seed);
            if !m.changed {
                continue;
            }
            for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
                let ctx = format!("{mutator} / seed {seed} / {policy}");
                let mut owned = spex_xml::Reader::from_str(&m.xml).with_recovery(policy);
                let mut owned_events = Vec::new();
                while let Some(ev) = owned
                    .next_event()
                    .unwrap_or_else(|e| panic!("{ctx}: owned reader surfaced {e}"))
                {
                    owned_events.push(ev);
                }
                let mut store = spex_xml::EventStore::new();
                let mut zc = spex_xml::Reader::from_str(&m.xml).with_recovery(policy);
                let mut zc_events = Vec::new();
                while let Some(id) = zc
                    .next_into(&mut store)
                    .unwrap_or_else(|e| panic!("{ctx}: zero-copy reader surfaced {e}"))
                {
                    zc_events.push(store.get(id).to_owned_event());
                }
                assert_eq!(owned_events, zc_events, "{ctx}: event sequences diverge");
                assert_eq!(
                    owned.take_faults(),
                    zc.take_faults(),
                    "{ctx}: fault reports diverge"
                );
                assert_eq!(
                    owned.truncated(),
                    zc.truncated(),
                    "{ctx}: truncation flags diverge"
                );
            }
        }
    }
}

/// The headline sweep: ~200 distinct mutants of a small Mondial document,
/// every §VI Mondial query class, both repair policies — no panics, no
/// surfaced errors, no fabricated results. Fixed seed base keeps it
/// reproducible; CI runs this in release mode (see the fault-sweep job).
#[test]
fn mondial_mutant_sweep_is_panic_free_and_sound() {
    let workloads = mondial_workloads(5);
    let outcome = fault_sweep(&workloads, 2026, 10);
    assert!(
        outcome.mutants >= 200,
        "sweep shrank: only {} mutants (+{} unchanged)",
        outcome.mutants,
        outcome.unchanged
    );
    assert!(
        outcome.violations.is_empty(),
        "soundness violations: {:#?}",
        outcome.violations
    );
    assert!(outcome.faulted_runs > 0);
    assert!(outcome.faults_reported >= outcome.faulted_runs);
}
