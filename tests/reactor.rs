//! Reactor-path integration: the incremental frame decoder against the
//! blocking decoder (shrinking property — every chunking of a byte stream
//! decodes identically, error classes included), slowloris reaping under
//! `--idle-timeout`, wire-level chunking through a live server, and an
//! in-process idle herd riding through a graceful drain.

use proptest::prelude::*;
use spex_serve::{
    read_frame, write_frame, Client, FrameDecoder, FrameKind, ProtocolError, ReadError, Server,
    ServerConfig, ServerHandle, ServerReport,
};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Boot a server on a free loopback port.
fn boot(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<ServerReport>>,
) {
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

// --- Decoder parity property ---------------------------------------------

/// How a decoded stream ends: clean EOF at a frame boundary, or a grammar
/// violation (the only error class a pure byte stream can produce).
#[derive(Debug, PartialEq, Eq)]
enum Terminal {
    Clean,
    Violation(ProtocolError),
}

/// The blocking oracle: `read_frame` over the whole stream.
fn blocking_decode(bytes: &[u8], max_frame: usize) -> (Vec<(FrameKind, Vec<u8>)>, Terminal) {
    let mut cursor = std::io::Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut cursor, max_frame) {
            Ok(Some(f)) => frames.push((f.kind, f.payload)),
            Ok(None) => return (frames, Terminal::Clean),
            Err(ReadError::Protocol(p)) => return (frames, Terminal::Violation(p)),
            Err(ReadError::Io(e)) => panic!("in-memory cursor cannot fail: {e}"),
        }
    }
}

/// The incremental decoder fed the same bytes under an arbitrary chunking
/// (chunk sizes applied cyclically), frames pulled after every chunk.
fn incremental_decode(
    bytes: &[u8],
    chunks: &[usize],
    max_frame: usize,
) -> (Vec<(FrameKind, Vec<u8>)>, Terminal) {
    let mut decoder = FrameDecoder::new(max_frame);
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut turn = 0;
    while offset < bytes.len() {
        let n = chunks[turn % chunks.len()].max(1).min(bytes.len() - offset);
        turn += 1;
        decoder.push(&bytes[offset..offset + n]);
        offset += n;
        loop {
            match decoder.next_frame() {
                Ok(Some(f)) => frames.push((f.kind, f.payload)),
                Ok(None) => break,
                Err(p) => return (frames, Terminal::Violation(p)),
            }
        }
    }
    if decoder.mid_frame() {
        // End of stream with a partial frame buffered: the exact condition
        // the blocking decoder reports as a truncation.
        return (frames, Terminal::Violation(ProtocolError::TruncatedFrame));
    }
    (frames, Terminal::Clean)
}

/// Every kind byte in the frame grammar.
const KIND_BYTES: &[u8] = b"RDESTQMkmrfstebn";

const PROP_MAX_FRAME: usize = 64;

/// A way the generated stream can be broken, to exercise error-class
/// parity alongside the happy path.
#[derive(Debug, Clone)]
enum Fault {
    None,
    /// Append a complete header whose kind byte is not in the grammar.
    UnknownKind(u8),
    /// Append a valid-kind header declaring a payload over the cap.
    Oversized(u32),
    /// Drop the last `n` bytes of the stream.
    Truncate(usize),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        2 => Just(Fault::None),
        1 => (0x00u8..0x20).prop_map(Fault::UnknownKind),
        1 => ((PROP_MAX_FRAME as u32 + 1)..u32::MAX).prop_map(Fault::Oversized),
        2 => (1usize..9).prop_map(Fault::Truncate),
    ]
}

/// Serialize the generated frames plus the fault into one wire stream.
fn build_stream(frames: &[(usize, Vec<u8>)], fault: &Fault) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (kind_idx, payload) in frames {
        let kind = FrameKind::from_byte(KIND_BYTES[kind_idx % KIND_BYTES.len()]).unwrap();
        write_frame(&mut bytes, kind, payload).unwrap();
    }
    match fault {
        Fault::None => {}
        Fault::UnknownKind(b) => {
            // `from_byte` must agree this is outside the grammar (control
            // bytes never are kind bytes).
            assert!(FrameKind::from_byte(*b).is_none());
            bytes.push(*b);
            bytes.extend_from_slice(&0u32.to_be_bytes());
        }
        Fault::Oversized(len) => {
            bytes.push(b'D');
            bytes.extend_from_slice(&len.to_be_bytes());
        }
        Fault::Truncate(n) => {
            let keep = bytes.len().saturating_sub(*n);
            bytes.truncate(keep);
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Satellite: any byte-wise chunking of any frame stream — valid,
    /// unknown-kind, oversized, or truncated — decodes to exactly the
    /// frames and terminal error class of the blocking decoder.
    #[test]
    fn any_chunking_decodes_like_the_blocking_decoder(
        frames in proptest::collection::vec(
            (0usize..KIND_BYTES.len(), proptest::collection::vec(any::<u8>(), 0..48)),
            0..6,
        ),
        fault in fault_strategy(),
        chunks in proptest::collection::vec(1usize..14, 1..8)
    ) {
        let bytes = build_stream(&frames, &fault);
        let expect = blocking_decode(&bytes, PROP_MAX_FRAME);
        let got = incremental_decode(&bytes, &chunks, PROP_MAX_FRAME);
        prop_assert_eq!(&got.0, &expect.0, "frame sequences diverge");
        prop_assert_eq!(&got.1, &expect.1, "terminal conditions diverge");
    }
}

/// The single-byte extreme of the property, pinned as a plain test so a
/// decoder regression fails loudly without proptest in the loop.
#[test]
fn byte_at_a_time_chunking_matches_blocking() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, FrameKind::Register, b"q=a.b").unwrap();
    write_frame(&mut bytes, FrameKind::Data, b"<a><b/></a>").unwrap();
    write_frame(&mut bytes, FrameKind::End, b"").unwrap();
    let expect = blocking_decode(&bytes, PROP_MAX_FRAME);
    let got = incremental_decode(&bytes, &[1], PROP_MAX_FRAME);
    assert_eq!(got.0, expect.0);
    assert_eq!(got.1, expect.1);
    assert_eq!(got.0.len(), 3);
}

// --- Live-server behavior -------------------------------------------------

/// Satellite: a slowloris peer — a half-sent frame trickling one byte at a
/// time, never completing — is reaped by `--idle-timeout` instead of
/// pinning server resources.
#[test]
fn slowloris_half_frame_is_reaped_by_idle_timeout() {
    let (addr, handle, join) = boot(ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // A REGISTER frame header promising 64 payload bytes, then a trickle
    // that refreshes the socket but never completes the frame — so the
    // idle clock (last *completed* frame) never resets.
    stream.write_all(&[b'R', 0, 0, 0, 64]).expect("header");
    let start = Instant::now();
    let mut reaped = false;
    while start.elapsed() < Duration::from_secs(5) {
        if stream.write_all(b"x").is_err() {
            reaped = true;
            break;
        }
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) => {
                reaped = true;
                break;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                reaped = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(reaped, "server never reaped the half-open slowloris peer");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "reap took {:?}, far beyond the 200ms idle timeout",
        start.elapsed()
    );
    drop(stream);
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(
        report.sessions_failed, 1,
        "the reaped session counts as failed"
    );
    assert_eq!(report.sessions_completed, 0);
}

/// Wire-level chunking end to end: a session whose bytes arrive in 3-byte
/// slices across every frame boundary produces byte-identical results to a
/// normally framed client session.
#[test]
fn chunked_wire_bytes_evaluate_identically() {
    let (addr, handle, join) = boot(ServerConfig::default());
    let mut xml = String::from("<doc>");
    for i in 0..200 {
        xml.push_str(&format!("<item><name>n{i}</name><v>{i}</v></item>"));
    }
    xml.push_str("</doc>");
    let query = "doc.item[v].name";

    // Reference: a normal client session.
    let mut client = Client::connect(addr).expect("connect");
    let t = client
        .run_session(&[("q", query)], xml.as_bytes())
        .expect("session");
    assert!(t.clean_end, "errors: {:?}", t.errors);
    let reference = t.output_of("q");

    // The same session, wire bytes dribbled 3 at a time (frame headers and
    // payloads split mid-field, DATA payload split mid-tag).
    let mut wire = Vec::new();
    write_frame(
        &mut wire,
        FrameKind::Register,
        format!("q={query}").as_bytes(),
    )
    .unwrap();
    for chunk in xml.as_bytes().chunks(97) {
        write_frame(&mut wire, FrameKind::Data, chunk).unwrap();
    }
    write_frame(&mut wire, FrameKind::End, b"").unwrap();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect raw");
    for piece in wire.chunks(3) {
        stream.write_all(piece).expect("write chunk");
    }
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let mut chunked = Vec::new();
    let mut clean = false;
    loop {
        match read_frame(&mut reader, spex_serve::DEFAULT_MAX_FRAME).expect("read frame") {
            Some(f) if f.kind == FrameKind::Result => {
                if let Some((name, fragment)) = spex_serve::split_result(&f.payload) {
                    assert_eq!(name, "q");
                    chunked.extend_from_slice(fragment);
                }
            }
            Some(f) if f.kind == FrameKind::SessionEnd => {
                clean = true;
                break;
            }
            Some(f) if f.kind == FrameKind::Error => {
                panic!("error frame: {}", String::from_utf8_lossy(&f.payload))
            }
            Some(_) => {}
            None => break,
        }
    }
    assert!(clean, "chunked session did not end cleanly");
    assert_eq!(
        chunked, reference,
        "3-byte wire chunking changed the result bytes"
    );
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_failed, 0);
}

/// An idle herd: hundreds of connected-but-silent peers cost the reactor
/// nothing, live traffic flows past them, and a graceful shutdown drains
/// without waiting on any of them.
#[test]
fn idle_herd_rides_through_live_traffic_and_drain() {
    const HERD: usize = 300;
    let (addr, handle, join) = boot(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut herd = Vec::with_capacity(HERD);
    for i in 0..HERD {
        herd.push(std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}")));
    }
    // Live sessions through the middle of the herd.
    for i in 0..4 {
        let mut client = Client::connect(addr).expect("connect live");
        let xml = format!("<doc><hit>{i}</hit><miss/></doc>");
        let t = client
            .run_session(&[("q", "doc.hit")], xml.as_bytes())
            .expect("live session");
        assert!(t.clean_end, "errors: {:?}", t.errors);
        assert_eq!(t.output_of("q"), format!("<hit>{i}</hit>\n").as_bytes());
    }
    // Shut down with the whole herd still connected: the drain must not
    // block on peers that never sent a byte.
    let t0 = Instant::now();
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain with {HERD} idle conns took {:?}",
        t0.elapsed()
    );
    drop(herd);
    assert_eq!(report.sessions_failed, 0);
    assert_eq!(report.sessions_rejected, 0);
    assert_eq!(report.sessions_started as usize, HERD + 4);
}
