//! Scanner-equivalence suite (DESIGN.md §18): the SWAR fast path of the
//! streaming reader must be *observationally invisible* — for any input
//! whatsoever, `ScannerKind::Fast` and `ScannerKind::Classic` must deliver
//! byte-identical events, identical faults (kind, position, action, detail,
//! damage interval), identical final positions and identical errors, under
//! every recovery policy, in single- and multi-document mode.
//!
//! Three layers:
//!
//! * a hand-curated fuzz corpus of pathological shapes (CDATA, comments,
//!   processing instructions, entity soup, quotes hiding `>`, UTF-8 names
//!   and text, malformed markup),
//! * every PR-2 fault mutator over representative documents at many seeds,
//! * property-based random documents (attribute-rich, entity-heavy,
//!   non-ASCII) serialized and re-read under both scanners, clean and
//!   mutated.

use proptest::prelude::*;
use spex::xml::{EventStore, Fault, Position, Reader, RecoveryPolicy, ScannerKind, XmlEvent};
use spex_bench::fault::{mutate, Mutator};

/// Drain a document through `Reader::next_into` (the only API the fast path
/// affects) and capture everything observable: the materialized events, the
/// fault list, the final position, and any terminal error.
fn drain(
    xml: &str,
    scanner: ScannerKind,
    policy: RecoveryPolicy,
    multi: bool,
) -> (Vec<XmlEvent>, Vec<Fault>, Position, Option<String>) {
    let mut reader = Reader::from_str(xml)
        .with_recovery(policy)
        .with_scanner(scanner);
    if multi {
        reader = reader.multi_document();
    }
    let mut store = EventStore::new();
    let mut events = Vec::new();
    let mut error = None;
    loop {
        match reader.next_into(&mut store) {
            Ok(Some(id)) => events.push(store.get(id).to_owned_event()),
            Ok(None) => break,
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    (events, reader.take_faults(), reader.position(), error)
}

/// The equivalence oracle: both scanners, three policies, both document
/// modes — twelve drains that must agree pairwise.
fn assert_scanners_agree(xml: &str) {
    for policy in [
        RecoveryPolicy::Strict,
        RecoveryPolicy::Repair,
        RecoveryPolicy::SkipSubtree,
    ] {
        for multi in [false, true] {
            let fast = drain(xml, ScannerKind::Fast, policy, multi);
            let classic = drain(xml, ScannerKind::Classic, policy, multi);
            assert_eq!(fast, classic, "{policy:?} multi={multi} on {xml:?}");
        }
    }
}

/// Hand-curated pathological corpus: every construct that forces the fast
/// path to fall back, plus shapes designed to trap a scanner that consumed
/// bytes before validating (the one bug class the design forbids).
const FUZZ_CORPUS: &[&str] = &[
    // Clean baseline shapes.
    "<a/>",
    "<a><b c=\"1\">text</b></a>",
    "<r><x/><x/><x/></r>",
    // Entities everywhere: text, attribute values, truncated, unknown.
    "<a>x&amp;y</a>",
    "<a k=\"v&lt;w\">t</a>",
    "<a>&amp;&lt;&gt;&quot;&apos;</a>",
    "<a>&unknown;</a>",
    "<a>&amp</a>",
    "<a>&#60;&#x3C;</a>",
    "<a>&;</a>",
    // CDATA, comments, processing instructions, doctype-ish noise.
    "<a><![CDATA[<not-a-tag> & not-an-entity]]></a>",
    "<a><!-- <b> & --></a>",
    "<a><?pi some data?></a>",
    "<?xml version=\"1.0\"?><a>x</a>",
    "<a><![CDATA[]]></a>",
    "<a><!-- -- --></a>",
    // Quote games: `>` and `/>` hiding inside attribute values.
    "<a k=\"1>2\">x</a>",
    "<a k='/>'>x</a>",
    "<a k=\"a'b\" l='c\"d'/>",
    "<a k=\">\" l=\">\">t</a>",
    // UTF-8 names, values and text (fast path is ASCII-only by design).
    "<a>gr\u{fc}\u{df}e</a>",
    "<\u{e9}l\u{e9}ment>x</\u{e9}l\u{e9}ment>",
    "<a k=\"\u{8cea}\">\u{8cea}\u{554f}</a>",
    "<a>mixed ascii \u{2603} snowman</a>",
    // Malformed: the classic fault machinery must fire identically.
    "<a><b></a>",
    "</stray>",
    "<a",
    "<a href=no-quotes>x</a>",
    "<a><b>x</b>",
    "<a>x</a><b>y</b>",
    "<>empty</>",
    "<a>< b/></a>",
    "<a/ >",
    "<a k=\"unterminated>x</a>",
    "<a>text</a>trailing",
    "< a></ a>",
    "<a//>",
    "<a k==\"v\"/>",
    // Whitespace and boundary shapes.
    "  <a>  </a>  ",
    "<a\t\nk=\"v\"\n>x</a\n>",
    "<a>x<b/>y<c/>z</a>",
    "",
    "   ",
];

#[test]
fn fuzz_corpus_is_scanner_equivalent() {
    for xml in FUZZ_CORPUS {
        assert_scanners_agree(xml);
    }
}

/// Every PR-2 fault mutator × many seeds over documents with attributes,
/// entities, self-closing tags and nesting: the mutated (usually broken)
/// streams must be read identically by both scanners.
#[test]
fn fault_mutators_are_scanner_equivalent() {
    let seeds: Vec<u64> = (0..24).map(|i| 0x5caf + i * 101).collect();
    let docs = [
        "<r><a k=\"v\"><b>text &amp; more</b></a><c/><d>tail</d></r>",
        "<doc><item id=\"1\">x</item><item id=\"2\">y&lt;z</item></doc>",
        "<a><b><c><d>deep</d></c></b></a>",
    ];
    for doc in docs {
        for mutator in Mutator::ALL {
            for &seed in &seeds {
                let mutation = mutate(doc, mutator, seed);
                if mutation.changed {
                    assert_scanners_agree(&mutation.xml);
                }
            }
        }
    }
}

// ----- property-based layer -----

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_:-]{0,5}"
}

/// Text mixing plain ASCII runs (the fast path), XML-special characters
/// (entity escapes on the wire) and non-ASCII (UTF-8 fallback).
fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            4 => Just('x'),
            2 => Just(' '),
            1 => Just('&'),
            1 => Just('<'),
            1 => Just('>'),
            1 => Just('"'),
            1 => Just('\''),
            1 => Just('\u{e9}'),
            1 => Just('\u{8cea}'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn attrs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((name(), text()), 0..3).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .filter(|(n, _)| seen.insert(n.clone()))
            .collect()
    })
}

/// Balanced random subtree as an event list, mixing elements with
/// attributes, text runs and self-closing leaves.
fn subtree(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = prop_oneof![
        text().prop_map(|t| if t.is_empty() {
            vec![]
        } else {
            vec![XmlEvent::text(t)]
        }),
        (name(), attrs()).prop_map(|(n, attrs)| {
            vec![
                XmlEvent::StartElement {
                    name: n.clone(),
                    attributes: attrs
                        .into_iter()
                        .map(|(k, v)| spex::xml::Attribute::new(k, v))
                        .collect(),
                },
                XmlEvent::close(n),
            ]
        }),
    ];
    leaf.prop_recursive(depth, 40, 4, |inner| {
        (name(), proptest::collection::vec(inner, 0..4)).prop_map(|(n, kids)| {
            let mut v = vec![XmlEvent::open(n.clone())];
            for k in kids {
                v.extend(k);
            }
            v.push(XmlEvent::close(n));
            v
        })
    })
}

fn document_xml() -> impl Strategy<Value = String> {
    (name(), proptest::collection::vec(subtree(3), 0..4)).prop_map(|(root, kids)| {
        let mut events = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
        for k in kids {
            events.extend(k);
        }
        events.push(XmlEvent::close(root));
        events.push(XmlEvent::EndDocument);
        spex::xml::writer::events_to_string(&events)
    })
}

proptest! {
    /// Clean random documents: both scanners agree on every observable.
    #[test]
    fn random_documents_are_scanner_equivalent(xml in document_xml()) {
        assert_scanners_agree(&xml);
    }

    /// Mutated random documents: inject every fault mutator at a random
    /// seed; the (usually malformed) result must still be read identically.
    #[test]
    fn mutated_documents_are_scanner_equivalent(
        xml in document_xml(),
        seed in 0u64..1_000_000
    ) {
        for mutator in Mutator::ALL {
            let mutation = mutate(&xml, mutator, seed);
            if mutation.changed {
                assert_scanners_agree(&mutation.xml);
            }
        }
    }
}
