//! Differential testing: the streamed SPEX engine, the DOM set-semantics
//! oracle, and the tree-NFA evaluator must select exactly the same nodes —
//! on the paper's examples, on targeted corner cases, and on thousands of
//! random (document, query) pairs.

mod common;

use common::{dom_spans, spex_spans, tree_nfa_spans};
use spex::query::Rpeq;
use spex::workloads::random::{random_document, random_query, rng, DocConfig, QueryConfig};
use spex::xml::reader::parse_events;
use spex::xml::XmlEvent;

fn check(query: &Rpeq, events: &[XmlEvent], context: &str) {
    let spex = spex_spans(query, events);
    let dom = dom_spans(query, events);
    assert_eq!(
        spex, dom,
        "SPEX vs DOM disagree on `{query}` over {context}"
    );
    let nfa = tree_nfa_spans(query, events);
    assert_eq!(
        dom, nfa,
        "DOM vs tree-NFA disagree on `{query}` over {context}"
    );
}

fn check_str(query: &str, xml: &str) {
    let q: Rpeq = query.parse().unwrap();
    let events = parse_events(xml).unwrap();
    check(&q, &events, xml);
}

#[test]
fn fixed_corner_cases() {
    let docs = [
        "<a/>",
        "<a><a><a/></a></a>",
        "<a><b/><b/><b/></a>",
        "<a><a><c/></a><b/><c/></a>",
        "<a><b><a><b><a/></b></a></b></a>",
        "<r>t1<a>t2</a>t3<b><a/></b></r>",
        "<a><a><a><b/></a><b/></a><b/></a>",
    ];
    let queries = [
        "%",
        "_",
        "a",
        "b",
        "_*",
        "a+",
        "a*",
        "_+",
        "_*._",
        "a.a",
        "a.b",
        "_._",
        "a+.b",
        "a*.b",
        "a.a.a",
        "(a|b)",
        "a.(a|b)",
        "(a|b).(a|b)",
        "a?",
        "a?.b",
        "a[b]",
        "a[a]",
        "_*.a[b]",
        "a[b].b",
        "a[b[a]]",
        "a[a.b]",
        "_*[b]",
        "a[b]?",
        "(a[b]|b)",
        "a+[b]",
        "_*._[b]",
        "a[_*.b]",
        "%[a]",
        "a[%]",
        "a.%.b",
        "(%|a)",
        "_*.a[b]._*.b",
    ];
    for d in docs {
        for q in queries {
            check_str(q, d);
        }
    }
}

#[test]
fn qualifier_timing_cases() {
    // Past vs future conditions, multiple instances, nested scopes.
    check_str("_*.a[b].c", "<r><a><c/><b/><c/></a></r>");
    check_str("_*.a[b].c", "<r><a><b/><c/></a><a><c/></a></r>");
    check_str("_*.a[b].c", "<a><a><b/><c/></a><c/></a>");
    check_str("_*.a[b].c", "<a><a><c/><b/></a><c/><b/></a>");
    check_str("_*.a[_*.b]", "<a><a><x><b/></x></a></a>");
    check_str("a+[b]", "<a><a><b/></a></a>");
    check_str("a+[b].c", "<a><a><b/><c/></a><c/></a>");
}

#[test]
fn closure_scope_cases() {
    // Nested closure scopes (the ns/s/e depth symbols of Fig. 3).
    check_str("_*.a+", "<a><a><a/></a></a>");
    check_str("_*.a+.b", "<x><a><a><b/></a><b/></a><b/></x>");
    check_str("a+.a+", "<a><a><a><a/></a></a></a>");
    check_str("_+._+", "<a><b><c><d/></c></b></a>");
    check_str("a*.a*", "<a><a/></a>");
}

#[test]
fn random_differential_small() {
    let doc_cfg = DocConfig {
        max_depth: 4,
        max_fanout: 3,
        ..DocConfig::default()
    };
    let q_cfg = QueryConfig {
        max_depth: 3,
        ..QueryConfig::default()
    };
    let mut r = rng(0xD1FF);
    for case in 0..400 {
        let events = random_document(&mut r, &doc_cfg);
        let query = random_query(&mut r, &q_cfg);
        let xml = spex::workloads::events_to_xml(&events);
        check(&query, &events, &format!("case {case}: {xml}"));
    }
}

#[test]
fn random_differential_deep_documents() {
    let doc_cfg = DocConfig {
        max_depth: 9,
        max_fanout: 2,
        labels: vec!["a".into(), "b".into()],
        ..DocConfig::default()
    };
    let q_cfg = QueryConfig {
        max_depth: 4,
        labels: vec!["a".into(), "b".into()],
        ..QueryConfig::default()
    };
    let mut r = rng(0xDEEF);
    for case in 0..200 {
        let events = random_document(&mut r, &doc_cfg);
        let query = random_query(&mut r, &q_cfg);
        let xml = spex::workloads::events_to_xml(&events);
        check(&query, &events, &format!("deep case {case}: {xml}"));
    }
}

#[test]
fn random_differential_qualifier_heavy() {
    // Bias towards qualifiers by nesting two random qualifier layers.
    let doc_cfg = DocConfig {
        max_depth: 6,
        max_fanout: 3,
        ..DocConfig::default()
    };
    let q_cfg = QueryConfig {
        max_depth: 2,
        ..QueryConfig::default()
    };
    let mut r = rng(0x9A4C);
    for case in 0..200 {
        let events = random_document(&mut r, &doc_cfg);
        let base = random_query(&mut r, &q_cfg);
        let qual = random_query(&mut r, &q_cfg);
        let query = Rpeq::descend().then(base.with_qualifier(qual));
        let xml = spex::workloads::events_to_xml(&events);
        check(&query, &events, &format!("qualifier case {case}: {xml}"));
    }
}

#[test]
fn fragments_agree_not_only_spans() {
    // Full serialized fragments, not just node identities.
    let xml = "<lib><book id=\"1\"><isbn/>text</book><book id=\"2\"/></lib>";
    let q = "lib.book[isbn]";
    let spex = spex::core::evaluate_str(q, xml).unwrap();
    let doc = spex::xml::Document::parse_str(xml).unwrap();
    let dom = spex::baseline::DomEvaluator::new(&doc).evaluate_fragments(&q.parse().unwrap());
    assert_eq!(spex, dom);
    assert_eq!(spex, vec!["<book id=\"1\"><isbn></isbn>text</book>"]);
}

#[test]
fn following_axis_spex_vs_dom() {
    // `~l` (following::l) — the SPEX-engine extension; compared against the
    // DOM oracle only (the automaton baselines cover core rpeq).
    let docs = [
        "<r><a><b/></a><b/><c><b/></c></r>",
        "<r><b/><a/><b/></r>",
        "<a><a><c/></a><b/><c/></a>",
        "<r><x><a/><b/></x><x><b/></x></r>",
    ];
    let queries = [
        "r.a.~b",     // b's after each a closes
        "_*.a.~_",    // everything after any a
        "~b",         // following of the virtual root: nothing
        "_*.b.~b",    // b's after b's
        "r._.~b[%]",  // qualifier on a following step
        "r.(a|x).~b", // following after a union
        "_*.a.~b.c",  // continue navigating below a following match
    ];
    for d in docs {
        let events = parse_events(d).unwrap();
        for q in queries {
            let query: Rpeq = q.parse().unwrap();
            let spex = spex_spans(&query, &events);
            let dom = dom_spans(&query, &events);
            assert_eq!(spex, dom, "query `{q}` over {d}");
        }
    }
}

#[test]
fn following_axis_random_differential() {
    let doc_cfg = DocConfig {
        max_depth: 5,
        max_fanout: 3,
        ..DocConfig::default()
    };
    let q_cfg = QueryConfig {
        max_depth: 2,
        ..QueryConfig::default()
    };
    let mut r = rng(0xF0110);
    for case in 0..200 {
        let events = random_document(&mut r, &doc_cfg);
        // Random prefix, then a following step, then a random suffix.
        let prefix = random_query(&mut r, &q_cfg);
        let suffix = random_query(&mut r, &q_cfg);
        let labels = ["a", "b", "c"];
        let q = prefix.then(Rpeq::following(labels[case % 3])).then(suffix);
        let spex = spex_spans(&q, &events);
        let dom = dom_spans(&q, &events);
        assert_eq!(
            spex,
            dom,
            "case {case}: `{q}` over {}",
            spex::workloads::events_to_xml(&events)
        );
    }
}

#[test]
fn preceding_axis_spex_vs_dom() {
    let docs = [
        "<r><b/><a/><b/></r>",
        "<r><a><b/></a><b/><c><a/></c></r>",
        "<b><a/></b>",
        "<r><x><b/></x><x><a/></x><b/></r>",
        "<a><a><c/></a><b/><c/></a>",
    ];
    let queries = [
        "r.a.^b",   // b's before each a
        "_*.a.^_",  // everything before any a
        "^b",       // preceding of the virtual root: nothing
        "_*.b.^b",  // b's before b's
        "r._.^b.%", // preceding then identity
        "r.a.^x.b", // continue navigating below a preceding match
    ];
    for d in docs {
        let events = parse_events(d).unwrap();
        for q in queries {
            let query: Rpeq = q.parse().unwrap();
            let spex = spex_spans(&query, &events);
            let dom = dom_spans(&query, &events);
            assert_eq!(spex, dom, "query `{q}` over {d}");
        }
    }
}

#[test]
fn preceding_inside_qualifiers_is_rejected_with_rewrite_hint() {
    // `_*.a[^b]` would make the qualifier instance and the speculative
    // preceding variables mutually dependent; the compiler rejects it and
    // points at the `following::` rewriting, which selects the same nodes:
    let err = spex::core::evaluate_str("_*.a[^b]", "<r><b/><a/></r>").unwrap_err();
    assert!(matches!(err, spex::core::EvalError::Compile(_)), "{err}");
    assert!(err.to_string().contains('~'));
    // The rewriting: `_*.a[^b]` ≡ `_*.b.~a` (a's preceded by some b).
    let xml = "<r><b/><a/><a/><x><a/></x></r>";
    let rewritten = spex::core::evaluate_str("_*.b.~a", xml).unwrap();
    let doc = spex::xml::Document::parse_str(xml).unwrap();
    let oracle =
        spex::baseline::DomEvaluator::new(&doc).evaluate_fragments(&"_*.a[^b]".parse().unwrap());
    assert_eq!(rewritten, oracle);
}

#[test]
fn preceding_axis_random_differential() {
    let doc_cfg = DocConfig {
        max_depth: 5,
        max_fanout: 3,
        ..DocConfig::default()
    };
    let q_cfg = QueryConfig {
        max_depth: 2,
        ..QueryConfig::default()
    };
    let mut r = rng(0x9_4E4);
    for case in 0..200 {
        let events = random_document(&mut r, &doc_cfg);
        let prefix = random_query(&mut r, &q_cfg);
        let suffix = random_query(&mut r, &q_cfg);
        let labels = ["a", "b", "c"];
        let q = prefix.then(Rpeq::preceding(labels[case % 3])).then(suffix);
        let spex = spex_spans(&q, &events);
        let dom = dom_spans(&q, &events);
        assert_eq!(
            spex,
            dom,
            "case {case}: `{q}` over {}",
            spex::workloads::events_to_xml(&events)
        );
    }
}

#[test]
fn backward_axis_rewriting_end_to_end() {
    // //x/parent::b — parents of x nodes that are labelled b.
    let xml = "<a><x/><b><x/></b><c><b><y/></b></c></a>";
    let q = spex::query::xpath::parse_xpath("//x/parent::b").unwrap();
    let frags = {
        let events = parse_events(xml).unwrap();
        let spans = spex_spans(&q, &events);
        assert_eq!(dom_spans(&q, &events), spans);
        spans
    };
    // Only the first <b> (it has an x child); it opens at tick 4
    // (<$>=0, <a>=1, <x>=2, </x>=3).
    assert_eq!(frags, vec![4]);

    // //y/ancestor::b and ancestor-or-self.
    let q2 = spex::query::xpath::parse_xpath("//y/ancestor::b").unwrap();
    let events = parse_events(xml).unwrap();
    let spans2 = spex_spans(&q2, &events);
    assert_eq!(dom_spans(&q2, &events), spans2);
    assert_eq!(spans2.len(), 1); // the b inside c

    let q3 = spex::query::xpath::parse_xpath("//b/ancestor-or-self::b").unwrap();
    let events3 = parse_events(xml).unwrap();
    let spans3 = spex_spans(&q3, &events3);
    assert_eq!(dom_spans(&q3, &events3), spans3);
    assert_eq!(spans3.len(), 2); // both b elements (each is its own or-self)
}

#[test]
fn stream_nfa_agrees_on_qualifier_free_fragment() {
    let doc_cfg = DocConfig::default();
    let q_cfg = QueryConfig {
        qualifiers: false,
        ..QueryConfig::default()
    };
    let mut r = rng(0x5E1);
    for _ in 0..200 {
        let events = random_document(&mut r, &doc_cfg);
        let query = random_query(&mut r, &q_cfg);
        let spex = spex_spans(&query, &events);
        let nfa = spex::baseline::StreamNfa::compile(&query).unwrap();
        let mut picked = nfa.select(&events);
        // The stream NFA reports only element nodes; SPEX's ε-ish queries
        // may additionally select the virtual root (tick 0).
        let spex_without_root: Vec<u64> = spex.into_iter().filter(|t| *t != 0).collect();
        picked.retain(|t| *t != 0);
        assert_eq!(spex_without_root, picked, "on `{query}`");
    }
}
