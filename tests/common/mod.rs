//! Shared helpers for the cross-crate integration tests.
#![allow(dead_code)] // each test binary uses a subset

use spex::core::{CompiledNetwork, Evaluator, SpanCollector};
use spex::query::Rpeq;
use spex::xml::{Document, NodeId, XmlEvent};

/// Evaluate `query` with the SPEX engine, returning the *node identities*
/// of the results: the tick (event index) at which each result fragment's
/// opening message appeared.
pub fn spex_spans(query: &Rpeq, events: &[XmlEvent]) -> Vec<u64> {
    let net = CompiledNetwork::compile(query);
    let mut sink = SpanCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    for ev in events {
        eval.push(ev.clone());
    }
    eval.finish();
    sink.starts
}

/// Map every node of the materialized document to the tick of its opening
/// event: the k-th element corresponds to the k-th `StartElement` event, and
/// the virtual root to `StartDocument` (tick 0).
pub fn node_open_ticks(doc: &Document, events: &[XmlEvent]) -> impl Fn(NodeId) -> u64 {
    let mut open_ticks: Vec<u64> = Vec::with_capacity(doc.element_count());
    for (i, ev) in events.iter().enumerate() {
        if matches!(ev, XmlEvent::StartElement { .. }) {
            open_ticks.push(i as u64);
        }
    }
    let element_ids: Vec<NodeId> = doc.elements().collect();
    move |id: NodeId| {
        if id == NodeId::ROOT {
            return 0;
        }
        let k = element_ids
            .binary_search(&id)
            .expect("node is an element of this document");
        open_ticks[k]
    }
}

/// Evaluate `query` with the DOM set-semantics oracle, returning the same
/// node identities as [`spex_spans`].
pub fn dom_spans(query: &Rpeq, events: &[XmlEvent]) -> Vec<u64> {
    let doc = Document::from_events(events.to_vec()).expect("well-formed");
    let tick_of = node_open_ticks(&doc, events);
    spex::baseline::DomEvaluator::new(&doc)
        .evaluate(query)
        .into_iter()
        .map(tick_of)
        .collect()
}

/// Evaluate `query` with the tree-NFA evaluator, same identities.
pub fn tree_nfa_spans(query: &Rpeq, events: &[XmlEvent]) -> Vec<u64> {
    let doc = Document::from_events(events.to_vec()).expect("well-formed");
    let tick_of = node_open_ticks(&doc, events);
    spex::baseline::TreeNfaEvaluator::new(&doc)
        .evaluate(query)
        .into_iter()
        .map(tick_of)
        .collect()
}
