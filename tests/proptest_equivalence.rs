//! Property-based differential testing with shrinking: for arbitrary
//! documents and arbitrary rpeq queries, the streamed SPEX engine and the
//! DOM set-semantics oracle select exactly the same nodes. On failure,
//! proptest shrinks to a minimal counterexample — this is the suite that
//! found the nested-qualifier and union-ordering bugs during development.

mod common;

use common::{dom_spans, spex_spans};
use proptest::prelude::*;
use spex::query::{Label, Rpeq};
use spex::xml::{Attribute, XmlEvent};

fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string())
    ]
}

fn qlabel() -> impl Strategy<Value = Label> {
    prop_oneof![
        3 => label().prop_map(Label::Name),
        1 => Just(Label::Wildcard),
    ]
}

/// Balanced subtree events.
fn subtree(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = label().prop_map(|l| vec![XmlEvent::open(l.clone()), XmlEvent::close(l)]);
    leaf.prop_recursive(depth, 48, 3, |inner| {
        (label(), proptest::collection::vec(inner, 0..3)).prop_map(|(l, kids)| {
            let mut v = vec![XmlEvent::open(l.clone())];
            for k in kids {
                v.extend(k);
            }
            v.push(XmlEvent::close(l));
            v
        })
    })
}

fn document() -> impl Strategy<Value = Vec<XmlEvent>> {
    (label(), proptest::collection::vec(subtree(4), 0..3)).prop_map(|(root, kids)| {
        let mut v = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
        for k in kids {
            v.extend(k);
        }
        v.push(XmlEvent::close(root));
        v.push(XmlEvent::EndDocument);
        v
    })
}

/// Text that stresses the lazy-escaping path: every XML-special character,
/// so the writer must re-escape on serialization and the reader must decode
/// entity references on the way back in.
fn spicy_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('x'),
            Just('y'),
            Just(' '),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
        ],
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Subtrees with escape-heavy text nodes and attributes — the inputs where
/// the borrowed `RawEvent` representation and owned `XmlEvent`s could
/// plausibly diverge.
fn rich_subtree(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = (label(), spicy_text()).prop_map(|(l, t)| {
        let mut v = vec![XmlEvent::open(l.clone())];
        if !t.is_empty() {
            v.push(XmlEvent::text(t));
        }
        v.push(XmlEvent::close(l));
        v
    });
    leaf.prop_recursive(depth, 32, 3, |inner| {
        (
            label(),
            spicy_text(),
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(l, attr, kids)| {
                let mut v = vec![XmlEvent::StartElement {
                    name: l.clone(),
                    attributes: vec![Attribute::new("k", attr)],
                }];
                for k in kids {
                    v.extend(k);
                }
                v.push(XmlEvent::close(l));
                v
            })
    })
}

fn rich_document() -> impl Strategy<Value = Vec<XmlEvent>> {
    (label(), proptest::collection::vec(rich_subtree(3), 0..3)).prop_map(|(root, kids)| {
        let mut v = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
        for k in kids {
            v.extend(k);
        }
        v.push(XmlEvent::close(root));
        v.push(XmlEvent::EndDocument);
        v
    })
}

fn query() -> impl Strategy<Value = Rpeq> {
    let leaf = prop_oneof![
        4 => qlabel().prop_map(Rpeq::Step),
        2 => qlabel().prop_map(Rpeq::Plus),
        2 => qlabel().prop_map(Rpeq::Star),
        1 => Just(Rpeq::Empty),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Concat(Box::new(a), Box::new(b))),
            1 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Union(Box::new(a), Box::new(b))),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Qualified(Box::new(a), Box::new(b))),
            1 => inner.prop_map(|a| Rpeq::Optional(Box::new(a))),
        ]
    })
}

/// Queries with guaranteed structural depth where the random recursion of
/// [`query`] only occasionally lands: a closure step followed by an
/// alternation, filtered by a qualifier whose body is *itself* qualified —
/// `l*.(a|b)[c[…]].tail`-shaped. These are the shapes that exercise the
/// nested Split/Join sub-networks and the Union merge wiring (and, under
/// the VM, their lowered instruction sequences) on every single case.
fn nested_query() -> impl Strategy<Value = Rpeq> {
    let closure =
        (any::<bool>(), qlabel())
            .prop_map(|(plus, l)| if plus { Rpeq::Plus(l) } else { Rpeq::Star(l) });
    (closure, (qlabel(), qlabel()), qlabel(), query()).prop_map(|(cl, (a, b), inner, body)| {
        let nested = Rpeq::Step(inner).with_qualifier(body);
        cl.then(Rpeq::Step(a).or(Rpeq::Step(b)).with_qualifier(nested))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn spex_equals_dom_oracle(events in document(), q in query()) {
        let spex = spex_spans(&q, &events);
        let dom = dom_spans(&q, &events);
        prop_assert_eq!(
            spex, dom,
            "query `{}` over {}",
            q,
            spex::workloads::events_to_xml(&events)
        );
    }

    #[test]
    fn shared_multi_query_equals_individual(events in document(), q1 in query(), q2 in query()) {
        let set = spex::core::multi::SharedQuerySet::compile(&[
            ("q1".to_string(), q1.clone()),
            ("q2".to_string(), q2.clone()),
        ]);
        let (counts, _) = set.count_events(events.iter().cloned());
        prop_assert_eq!(counts[0], spex_spans(&q1, &events).len(), "q1 `{}`", q1);
        prop_assert_eq!(counts[1], spex_spans(&q2, &events).len(), "q2 `{}`", q2);
    }

    #[test]
    fn engine_statistics_invariants(events in document(), q in query()) {
        let net = spex::core::CompiledNetwork::compile(&q);
        let mut sink = spex::core::CountingSink::new();
        let mut eval = spex::core::Evaluator::new(&net, &mut sink);
        for ev in &events {
            eval.push(ev.clone());
        }
        let stats = eval.finish();
        // §V invariants, on every run.
        prop_assert!(stats.max_depth_stack <= stats.max_stream_depth);
        prop_assert!(stats.max_cond_stack <= stats.max_stream_depth + 1);
        prop_assert_eq!(stats.results + stats.dropped, stats.candidates_created);
        prop_assert_eq!(stats.ticks as usize, events.len());
        prop_assert!(stats.results + stats.dropped <= stats.candidates_created);
    }

    #[test]
    fn per_transducer_stats_refine_the_global_ones(events in document(), q in query()) {
        let net = spex::core::CompiledNetwork::compile(&q);
        let mut sink = spex::core::CountingSink::new();
        let mut eval = spex::core::Evaluator::new(&net, &mut sink);
        for ev in &events {
            eval.push(ev.clone());
        }
        let (stats, transducers) = eval.finish_full();
        // The per-node breakdown partitions the global message count, and
        // every node individually satisfies the §V per-transducer bounds.
        let sum: u64 = transducers.iter().map(|t| t.messages).sum();
        prop_assert_eq!(sum, stats.messages, "query `{}`", q);
        for t in &transducers {
            prop_assert!(t.max_depth_stack <= stats.max_stream_depth,
                "node {} ({}) of `{}`", t.node, t.kind, q);
            prop_assert!(t.max_formula_size <= stats.max_formula_size);
        }
    }

    #[test]
    fn zero_copy_pipeline_matches_owned_pipeline(events in rich_document(), q in query()) {
        // The same serialized bytes through both frontends: the owned path
        // (`parse_events` allocating an XmlEvent per message, pushed by
        // value) and the zero-copy path (`Reader::next_into` feeding arena
        // handles via `push_from`). Fragments must be byte-identical and
        // the engine statistics — including the arena high-water marks —
        // must agree exactly.
        let xml = spex::workloads::events_to_xml(&events);
        let net = spex::core::CompiledNetwork::compile(&q);
        let (owned_frags, owned_stats, owned_timing) = {
            let mut sink = spex::core::FragmentCollector::new();
            let mut eval = spex::core::Evaluator::new(&net, &mut sink);
            for ev in spex::xml::reader::parse_events(&xml).expect("round-trip") {
                eval.push(ev);
            }
            let stats = eval.finish();
            let timing = sink.timing.clone();
            (sink.into_fragments(), stats, timing)
        };
        let (zc_frags, zc_stats, zc_timing) = {
            let mut reader = spex::xml::Reader::from_str(&xml);
            let mut sink = spex::core::FragmentCollector::new();
            let mut eval = spex::core::Evaluator::new(&net, &mut sink);
            eval.push_from(&mut reader).expect("no limits configured");
            let stats = eval.finish();
            let timing = sink.timing.clone();
            (sink.into_fragments(), stats, timing)
        };
        prop_assert_eq!(&zc_frags, &owned_frags, "query `{}` over {}", q, xml);
        prop_assert_eq!(&zc_stats, &owned_stats, "query `{}` over {}", q, xml);
        prop_assert_eq!(&zc_timing, &owned_timing);
    }

    #[test]
    fn limits_above_the_peaks_are_invisible(events in document(), q in query()) {
        // Measure an unlimited run, then re-run with every cap set exactly
        // at the measured peak: same results, same statistics, same timing.
        let net = spex::core::CompiledNetwork::compile(&q);
        let (free_stats, free_frags, free_timing) = {
            let mut sink = spex::core::FragmentCollector::new();
            let mut eval = spex::core::Evaluator::new(&net, &mut sink);
            for ev in &events {
                eval.push(ev.clone());
            }
            let stats = eval.finish();
            let timing = sink.timing.clone();
            (stats, sink.into_fragments(), timing)
        };
        let limits = spex::core::ResourceLimits::default()
            .with_max_stream_depth(free_stats.max_stream_depth)
            .with_max_buffered_events(free_stats.peak_buffered_events)
            .with_max_live_candidates(free_stats.peak_live_candidates)
            .with_max_formula_size(free_stats.max_formula_size)
            .with_max_total_messages(free_stats.messages);
        let mut sink = spex::core::FragmentCollector::new();
        let mut eval = spex::core::Evaluator::with_limits(&net, &mut sink, limits);
        for ev in &events {
            prop_assert!(eval.try_push(ev.clone()).is_ok(),
                "caps at the measured peaks must never trip (query `{}`)", q);
        }
        let capped_stats = eval.finish();
        prop_assert_eq!(&capped_stats, &free_stats, "query `{}`", q);
        prop_assert_eq!(&sink.timing, &free_timing);
        prop_assert_eq!(sink.into_fragments(), free_frags);
    }

    #[test]
    fn vm_matches_the_interpreter_network(events in document(), q in query()) {
        // The tentpole identity under shrinking: the compiled-plan VM and
        // the interpreter network it lowers deliver byte-identical
        // fragments at the same ticks, with equal engine *and*
        // per-transducer statistics. The seeded `harness vm-diff` rig
        // covers volume; this property covers minimization — a divergence
        // here shrinks to the smallest (document, query) pair exhibiting
        // it.
        let net = spex::core::CompiledNetwork::compile(&q);
        let run = |engine| {
            let mut sink = spex::core::FragmentCollector::new();
            let mut eval = spex::core::Evaluator::with_engine(&net, &mut sink, engine);
            for ev in &events {
                eval.push(ev.clone());
            }
            let (stats, transducers) = eval.finish_full();
            let timing = sink.timing.clone();
            (sink.into_fragments(), stats, transducers, timing)
        };
        let vm = run(spex::core::Engine::Vm);
        let net_run = run(spex::core::Engine::Network);
        prop_assert_eq!(&vm.0, &net_run.0, "fragments diverge for `{}`", &q);
        prop_assert_eq!(&vm.1, &net_run.1, "engine stats diverge for `{}`", &q);
        prop_assert_eq!(&vm.2, &net_run.2, "transducer stats diverge for `{}`", &q);
        prop_assert_eq!(&vm.3, &net_run.3, "delivery timing diverges for `{}`", &q);
    }

    #[test]
    fn nested_qualifier_queries_match_the_dom_oracle(events in document(), q in nested_query()) {
        // Same oracle identity as `spex_equals_dom_oracle`, but every case
        // carries nested qualifiers and alternation under a closure step.
        let spex = spex_spans(&q, &events);
        let dom = dom_spans(&q, &events);
        prop_assert_eq!(
            spex, dom,
            "query `{}` over {}",
            q,
            spex::workloads::events_to_xml(&events)
        );
    }

    #[test]
    fn shared_query_set_agrees_across_engines(
        events in document(),
        q1 in query(),
        q2 in nested_query(),
        q3 in query()
    ) {
        // A three-query shared set on the VM: per-query result counts and
        // the engine statistics must match the interpreter run of the same
        // shared network (`count_events`), and each count must match the
        // query evaluated alone.
        use spex::core::sink::ResultSink;
        let set = spex::core::multi::SharedQuerySet::compile(&[
            ("q1".to_string(), q1.clone()),
            ("q2".to_string(), q2.clone()),
            ("q3".to_string(), q3.clone()),
        ]);
        let (net_counts, net_stats) = set.count_events(events.iter().cloned());
        let mut counters = [
            spex::core::CountingSink::new(),
            spex::core::CountingSink::new(),
            spex::core::CountingSink::new(),
        ];
        let vm_stats = {
            let sinks: Vec<&mut dyn ResultSink> = counters
                .iter_mut()
                .map(|c| c as &mut dyn ResultSink)
                .collect();
            let mut run = set.run_engine(spex::core::Engine::Vm, sinks);
            for ev in &events {
                run.push(ev.clone());
            }
            run.finish()
        };
        let vm_counts: Vec<usize> = counters.iter().map(|c| c.results).collect();
        prop_assert_eq!(&vm_counts, &net_counts, "q1 `{}`, q2 `{}`, q3 `{}`", &q1, &q2, &q3);
        prop_assert_eq!(&vm_stats, &net_stats, "q1 `{}`, q2 `{}`, q3 `{}`", &q1, &q2, &q3);
        prop_assert_eq!(vm_counts[0], spex_spans(&q1, &events).len(), "q1 `{}`", &q1);
        prop_assert_eq!(vm_counts[1], spex_spans(&q2, &events).len(), "q2 `{}`", &q2);
        prop_assert_eq!(vm_counts[2], spex_spans(&q3, &events).len(), "q3 `{}`", &q3);
    }
}
