//! Streaming behaviour: progressiveness (past vs future conditions),
//! bounded memory on unbounded streams (experiment E11), and multi-document
//! evaluation.

mod common;

use spex::core::{CompiledNetwork, CountingSink, Evaluator, FragmentCollector};
use spex::query::Rpeq;
use spex::workloads::QuoteStream;

/// Class-4 "past conditions": the qualifier is satisfied before the
/// candidates arrive, so results are delivered the moment they open.
#[test]
fn past_conditions_deliver_immediately() {
    let xml = "<db><rec><flag/><v>1</v><v>2</v></rec></db>";
    let q: Rpeq = "_*.rec[flag].v".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    let stats = eval.finish();
    assert_eq!(sink.fragments().len(), 2);
    for (start, delivered) in &sink.timing {
        assert_eq!(start, delivered, "past-condition results must stream");
    }
    assert_eq!(stats.peak_buffered_events, 0, "nothing should be buffered");
}

/// Class-2 "future conditions": candidates precede the qualifier match and
/// must be buffered exactly until the condition is determined.
#[test]
fn future_conditions_buffer_until_determined() {
    let xml = "<db><rec><v>1</v><v>2</v><flag/></rec></db>";
    let q: Rpeq = "_*.rec[flag].v".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    let stats = eval.finish();
    assert_eq!(sink.fragments().len(), 2);
    for (start, delivered) in &sink.timing {
        assert!(delivered > start, "future-condition results must wait");
    }
    assert!(stats.peak_buffered_events > 0);
}

/// An unsatisfied future condition releases the buffer at scope close —
/// never at end of stream.
#[test]
fn unsatisfied_candidates_release_buffers_at_scope_close() {
    // Two large unqualified records, only the flagged one is kept.
    let mut xml = String::from("<db><rec>");
    for i in 0..100 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</rec><rec><flag/><v>x</v></rec></db>");
    let q: Rpeq = "_*.rec[flag]".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(&xml).unwrap();
    let stats = eval.finish();
    assert_eq!(stats.results, 1);
    assert_eq!(stats.dropped, 1);
}

/// The stability experiment of §I: an effectively infinite bounded-depth
/// stream keeps every stack and the candidate store bounded.
#[test]
fn bounded_memory_on_unbounded_streams() {
    let q: Rpeq = "quotes.quote[alert].symbol".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    let mut checkpoints = Vec::new();
    let mut stream = QuoteStream::new(7, 20);
    for i in 0..200_000u64 {
        eval.push(stream.next().expect("infinite"));
        if i % 50_000 == 0 {
            let s = eval.stats();
            checkpoints.push((s.max_cond_stack, s.max_depth_stack));
        }
    }
    let stats = eval.stats().clone();
    // Memory proxies bounded by the (constant) stream depth, not the stream
    // length.
    assert!(
        stats.max_cond_stack <= 8,
        "cond stack grew: {}",
        stats.max_cond_stack
    );
    assert!(
        stats.max_depth_stack <= 8,
        "depth stack grew: {}",
        stats.max_depth_stack
    );
    assert!(
        stats.peak_buffered_events <= 1000,
        "buffered events grew: {}",
        stats.peak_buffered_events
    );
    // And they stabilized early: the last checkpoint equals the first
    // post-warmup checkpoint.
    assert_eq!(checkpoints[1], checkpoints[checkpoints.len() - 1]);
    assert!(sink.results > 0);
}

/// Results from one document are complete before the next document begins
/// (SDI over consecutive documents).
#[test]
fn multi_document_results_are_per_document() {
    use spex::core::{ResultMeta, ResultSink};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A sink with a shared handle so delivery can be observed while the
    /// evaluator still borrows the sink.
    #[derive(Default)]
    struct SharedCount(Rc<RefCell<usize>>);
    impl ResultSink for SharedCount {
        fn begin(&mut self, _m: ResultMeta, _now: u64) {}
        fn event(&mut self, _e: &spex::xml::RawEvent<'_>, _now: u64) {}
        fn end(&mut self, _now: u64) {
            *self.0.borrow_mut() += 1;
        }
    }

    let q: Rpeq = "r.x".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let count = Rc::new(RefCell::new(0));
    let mut sink = SharedCount(count.clone());
    let mut eval = Evaluator::new(&net, &mut sink);
    for i in 0..5 {
        eval.push_str(&format!("<r><x>{i}</x></r>")).unwrap();
        // After each complete document, its result must already be out.
        assert_eq!(*count.borrow(), i + 1);
    }
    eval.finish();
    assert_eq!(*count.borrow(), 5);
}

/// The evaluator handles text, comments and processing instructions inside
/// result fragments.
#[test]
fn mixed_content_fragments() {
    let xml = "<r><k>a<!--note-->b<?pi data?><m>c</m>d</k></r>";
    let frags = spex::core::evaluate_str("r.k", xml).unwrap();
    assert_eq!(frags, vec!["<k>a<!--note-->b<?pi data?><m>c</m>d</k>"]);
}

/// Deep documents: stacks track depth exactly and unwind completely.
#[test]
fn deep_document_stacks() {
    let depth = 200;
    let mut xml = String::new();
    for i in 0..depth {
        xml.push_str(&format!("<n{i}>"));
    }
    xml.push_str("<leaf/>");
    for i in (0..depth).rev() {
        xml.push_str(&format!("</n{i}>"));
    }
    let q: Rpeq = "_*.leaf".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(&xml).unwrap();
    let stats = eval.finish();
    assert_eq!(sink.results, 1);
    assert_eq!(stats.max_stream_depth, depth + 2); // $, n0..n199, leaf
    assert!(stats.max_depth_stack <= depth + 2);
}
