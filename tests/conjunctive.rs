//! Conjunctive queries with regular path expressions (§VII, experiment E13):
//! tree-shaped conjunctive queries evaluate like their rpeq equivalents, and
//! multi-sink networks fill every head variable in one pass.

mod common;

use spex::core::cq::ConjunctiveQuery;
use spex::workloads::random::{random_document, rng, DocConfig};

const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

#[test]
fn paper_example_matches_rpeq() {
    let cq = ConjunctiveQuery::parse("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3").unwrap();
    let results = cq.evaluate_str(FIG1).unwrap();
    assert_eq!(
        results["X3"],
        spex::core::evaluate_str("_*.a[b].c", FIG1).unwrap()
    );
}

/// Chains translate to concatenation; side branches translate to
/// qualifiers. Check equivalence against the corresponding rpeq on random
/// documents.
#[test]
fn random_documents_cq_equals_rpeq() {
    let cases = [
        ("q(X2) :- Root(a) X1, X1(b) X2", "a.b"),
        ("q(X2) :- Root(_*.a) X1, X1(_*.b) X2", "_*.a._*.b"),
        ("q(X3) :- Root(a) X1, X1(b) X2, X1(c) X3", "a[b].c"),
        ("q(X3) :- Root(_*._) X1, X1(a) X2, X1(b+) X3", "_*._[a].b+"),
        (
            "q(X4) :- Root(a) X1, X1(b) X2, X2(c) X3, X1(d) X4",
            "a[b.c].d",
        ),
    ];
    let mut r = rng(0xC0);
    let cfg = DocConfig {
        max_depth: 5,
        max_fanout: 3,
        ..DocConfig::default()
    };
    for i in 0..60 {
        let events = random_document(&mut r, &cfg);
        let xml = spex::workloads::events_to_xml(&events);
        for (cq_text, rpeq_text) in &cases {
            let cq = ConjunctiveQuery::parse(cq_text).unwrap();
            let cq_results = cq.evaluate_str(&xml).unwrap();
            let head = cq.head.last().unwrap().clone();
            let rpeq_results = spex::core::evaluate_str(rpeq_text, &xml).unwrap();
            assert_eq!(
                cq_results[&head], rpeq_results,
                "case {i}: {cq_text} vs {rpeq_text} on {xml}"
            );
        }
    }
}

/// Multi-head queries share one pass: every head variable collects exactly
/// what its path prefix selects.
#[test]
fn multi_head_consistency() {
    let cq = ConjunctiveQuery::parse("q(X1, X2) :- Root(_*.a) X1, X1(c) X2").unwrap();
    let results = cq.evaluate_str(FIG1).unwrap();
    assert_eq!(
        results["X1"],
        spex::core::evaluate_str("_*.a", FIG1).unwrap()
    );
    assert_eq!(
        results["X2"],
        spex::core::evaluate_str("_*.a.c", FIG1).unwrap()
    );
}

#[test]
fn deeper_pipeline_with_two_side_branches() {
    let xml = "<cat><item><sku/><price/><name>A</name></item>\
               <item><sku/><name>B</name></item>\
               <item><price/><name>C</name></item></cat>";
    // Items with both sku and price.
    let cq =
        ConjunctiveQuery::parse("q(N) :- Root(cat) C, C(item) I, I(sku) S, I(price) P, I(name) N")
            .unwrap();
    let results = cq.evaluate_str(xml).unwrap();
    assert_eq!(results["N"], vec!["<name>A</name>".to_string()]);
    // Same as the rpeq with two qualifiers.
    assert_eq!(
        results["N"],
        spex::core::evaluate_str("cat.item[sku][price].name", xml).unwrap()
    );
}

#[test]
fn head_order_is_declaration_order() {
    let cq = ConjunctiveQuery::parse("q(X2, X1) :- Root(_*.a) X1, X1(c) X2").unwrap();
    // Sinks are attached in atom order; the mapping is by name, so the
    // returned map must still be keyed correctly.
    let results = cq.evaluate_str(FIG1).unwrap();
    assert_eq!(results["X1"].len(), 2);
    assert_eq!(results["X2"].len(), 2);
}
