//! Golden tests reproducing the worked examples of the paper
//! (experiments E8, E9, E10 of DESIGN.md):
//!
//! * Example III.1 / Fig. 4 — child transducer traces for `a.c`,
//! * Example III.2 / Fig. 5 — closure transducer traces for `a+.c+`,
//! * §III.10 / Figs. 12–13 — the full network for `_*.a[b].c`, including
//!   per-transducer transition traces and the candidate narrative
//!   (candidate₁ dropped via `{co2,false}`, candidate₂ emitted directly).

mod common;

use spex::core::{CompiledNetwork, Evaluator, FragmentCollector};
use spex::query::Rpeq;
use spex::xml::reader::parse_events;

const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

/// Run `query` over the Fig. 1 stream with tracing and return, per network
/// node, the per-tick transition strings.
fn traces(query: &str) -> (Vec<String>, Vec<Vec<String>>, Vec<String>) {
    let q: Rpeq = query.parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let desc = net.spec().describe();
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.set_tracing(true);
    let mut per_tick: Vec<Vec<String>> = Vec::new();
    for ev in parse_events(FIG1).unwrap() {
        eval.push(ev);
        per_tick.push(eval.take_traces());
    }
    eval.finish();
    (desc, per_tick, sink.into_fragments())
}

/// Extract the trace row of node `idx`: one entry per tick.
fn row(per_tick: &[Vec<String>], idx: usize) -> Vec<String> {
    per_tick.iter().map(|t| t[idx].clone()).collect()
}

#[test]
fn figure_4_child_transducer_rows() {
    let (desc, ticks, results) = traces("a.c");
    assert_eq!(desc, vec!["IN", "CH(a)", "CH(c)", "OU"]);
    // Fig. 4 row T1 (CH(a)) and row T2 (CH(c)).
    assert_eq!(
        row(&ticks, 1),
        vec!["1,5", "7", "2", "2", "3", "3", "2", "3", "2", "3", "4", "9"]
    );
    assert_eq!(
        row(&ticks, 2),
        vec!["2", "1,5", "8", "2", "3", "4", "8", "4", "7", "4", "9", "3"]
    );
    assert_eq!(results, vec!["<c></c>"]);
}

#[test]
fn figure_5_closure_transducer_rows() {
    let (desc, ticks, results) = traces("a+.c+");
    assert_eq!(desc, vec!["IN", "CL(a)", "CL(c)", "OU"]);
    // Fig. 5 row T1 (CL(a)) and row T2 (CL(c)).
    assert_eq!(
        row(&ticks, 1),
        vec!["1,5", "7", "7", "8", "4", "9", "8", "4", "8", "4", "9", "11"]
    );
    assert_eq!(
        row(&ticks, 2),
        vec!["2", "1,5", "6,13", "7", "9", "10", "8", "4", "7", "9", "11", "3"]
    );
    assert_eq!(results, vec!["<c></c>", "<c></c>"]);
}

/// §III.10 / Fig. 13: the five labelled transducers of Fig. 12.
///
/// Two deliberate deltas from the printed figure, both explained by the
/// paper's own rows:
///
/// * Fig. 13 omits the update transition at tick 12 (`</a>` closing the
///   outer `a`) in rows T4/T5, although its own T3 row fires VC's
///   transition 4 there — which *emits* `{co1,false}`, and every downstream
///   transducer passes determinations through its update transition. We
///   assert the consistent traces (`13,9` where the figure prints `9`).
/// * Our closure table numbers the determination-update transition 14
///   (Fig. 3 lists 14 transitions); the closure row T1 is unaffected
///   because no determination reaches CL(_) before the document ends…
///   it does at tick 6 and 11 — see the row below.
#[test]
fn figure_13_full_network_rows() {
    let (desc, ticks, results) = traces("_*.a[b].c");
    assert_eq!(
        desc,
        vec![
            "IN", "SP", "CL(_)", "JO", "UN", "CH(a)", "VC(q0)", "SP", "CH(b)", "VF(q0+)", "VD",
            "JO", "CH(c)", "OU"
        ]
    );
    let t1 = row(&ticks, 2); // CL(_)
    let t2 = row(&ticks, 5); // CH(a)
    let t3 = row(&ticks, 6); // VC(q)
    let t4 = row(&ticks, 8); // CH(b)
    let t5 = row(&ticks, 12); // CH(c)

    // Fig. 13 row T1 — CL(_) additionally passes the determinations
    // {co2,false} (tick 6) and {co1,false} (tick 12)… no: determinations
    // flow *downstream* from VC and never reach CL(_), which sits upstream.
    // The row matches the figure exactly.
    assert_eq!(
        t1,
        vec!["1,5", "7", "7", "7", "9", "9", "7", "9", "7", "9", "9", "11"]
    );
    // Fig. 13 row T2 (CH(a)) — exactly as printed.
    assert_eq!(
        t2,
        vec!["1,5", "6,11", "6,11", "6,12", "10", "10", "6,12", "10", "6,12", "10", "10", "9"]
    );
    // Fig. 13 row T3 (VC(q)) — exactly as printed.
    assert_eq!(
        t3,
        vec!["2", "1,5", "1,5", "2", "3", "4", "2", "3", "2", "3", "4", "3"]
    );
    // Fig. 13 row T4 (CH(b)): as printed for ticks 1–10; at tick 11 the
    // figure prints "9" but {co1,false} (emitted by VC's transition 4 in
    // the same tick, see row T3) passes through first: "13,9".
    assert_eq!(
        t4,
        vec!["2", "1,5", "6,12", "8", "4", "13,10", "7", "4", "8", "4", "13,9", "3"]
    );
    // Fig. 13 row T5 (CH(c)): same tick-11 delta ("13,9" for "9").
    assert_eq!(
        t5,
        vec!["2", "1,5", "6,12", "7", "4", "13,10", "13,8", "4", "7", "4", "13,9", "3"]
    );

    // The candidate narrative of §III.10: candidate₁ (the inner c) is
    // discarded when {co2,false} arrives; candidate₂ (the outer c) is sent
    // directly to the output since co1 is already true.
    assert_eq!(results, vec!["<c></c>"]);
}

#[test]
fn section_iii_10_candidate_statistics() {
    let q: Rpeq = "_*.a[b].c".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(FIG1).unwrap();
    let stats = eval.finish();
    assert_eq!(stats.vars_created, 2, "co1 and co2");
    assert_eq!(stats.candidates_created, 2, "candidate1 and candidate2");
    assert_eq!(stats.dropped, 1, "candidate1 discarded");
    assert_eq!(stats.results, 1, "candidate2 output");
    // "This candidate is directly sent to output, since the formula it
    // depends on is determined and has a true value" — past condition, so
    // delivery happens at the opening tick.
    let (start, delivered) = sink.timing[0];
    assert_eq!(start, delivered);
    assert_eq!(start, 8, "the second <c> opens at tick 8");
}

/// The input transducer's `[true]` activation and the one-message-at-a-time
/// discipline are observable through the ε query: the whole document is one
/// candidate.
#[test]
fn epsilon_query_selects_the_document_node() {
    let frags = spex::core::evaluate_str("%", FIG1).unwrap();
    assert_eq!(
        frags,
        vec![FIG1.replace("<c/>", "<c></c>").replace("<b/>", "<b></b>")]
    );
}
