//! Engine-level behaviour of the following/preceding axis extensions:
//! progressiveness, buffering profiles, and interaction with qualifiers and
//! multi-query sharing.

mod common;

use spex::core::multi::SharedQuerySet;
use spex::core::{CompiledNetwork, Evaluator, FragmentCollector};
use spex::query::Rpeq;

/// Following matches stream immediately: by the time a following-match
/// opens, its condition (context closed earlier) is already true.
#[test]
fn following_results_stream_immediately() {
    let xml = "<r><a/><b>1</b><b>2</b></r>";
    let q: Rpeq = "r.a.~b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    let stats = eval.finish();
    assert_eq!(
        sink.fragments(),
        ["<b>1</b>".to_string(), "<b>2</b>".to_string()]
    );
    for (start, delivered) in &sink.timing {
        assert_eq!(start, delivered, "following matches are past conditions");
    }
    assert_eq!(stats.peak_buffered_events, 0);
}

/// Preceding matches are the ultimate future condition: every candidate
/// buffers until its context arrives (or the document ends).
#[test]
fn preceding_results_buffer_until_context() {
    let xml = "<r><b>1</b><b>2</b><a/></r>";
    let q: Rpeq = "r.a.^b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    let stats = eval.finish();
    assert_eq!(
        sink.fragments(),
        ["<b>1</b>".to_string(), "<b>2</b>".to_string()]
    );
    for (start, delivered) in &sink.timing {
        assert!(
            delivered > start,
            "preceding matches must wait for the context"
        );
    }
    assert!(stats.peak_buffered_events > 0);
    // Unmatched speculative candidates are dropped, not leaked.
    assert_eq!(stats.results, 2);
}

/// No context at all: every speculative preceding candidate resolves false
/// within the document (not only at `finish`).
#[test]
fn preceding_without_context_drops_all_candidates() {
    let xml = "<r><b/><b/></r>";
    let q: Rpeq = "r.a.^b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    let stats = eval.finish();
    assert!(sink.fragments().is_empty());
    assert_eq!(stats.dropped, 2);
}

/// A qualifier on the context conditions the preceding matches through the
/// conditional-determination chain: `r.a[x].^b` keeps b's only when the a
/// actually has an x child.
#[test]
fn preceding_with_qualified_context() {
    let with = "<r><b/><a><x/></a></r>";
    let without = "<r><b/><a/></r>";
    assert_eq!(
        spex::core::evaluate_str("r.a[x].^b", with).unwrap(),
        vec!["<b></b>"]
    );
    assert!(spex::core::evaluate_str("r.a[x].^b", without)
        .unwrap()
        .is_empty());
}

/// Qualifiers can sit on following/preceding matches themselves.
#[test]
fn qualifiers_on_axis_matches() {
    let xml = "<r><a/><b><k/></b><b/></r>";
    assert_eq!(
        spex::core::evaluate_str("r.a.~b[k]", xml).unwrap(),
        vec!["<b><k></k></b>"]
    );
    let xml2 = "<r><b><k/></b><b/><a/></r>";
    assert_eq!(
        spex::core::evaluate_str("r.a.^b[k]", xml2).unwrap(),
        vec!["<b><k></k></b>"]
    );
}

/// Axis steps participate in multi-query prefix sharing.
#[test]
fn axes_in_shared_query_sets() {
    let queries: Vec<(String, Rpeq)> = vec![
        ("f".into(), "r.a.~b".parse().unwrap()),
        ("p".into(), "r.a.^b".parse().unwrap()),
        ("plain".into(), "r.a".parse().unwrap()),
    ];
    let set = SharedQuerySet::compile(&queries);
    // The `r.a` prefix is shared.
    let desc = set.spec().describe();
    assert_eq!(desc.iter().filter(|d| *d == "CH(a)").count(), 1);
    let xml = "<r><b>x</b><a/><b>y</b></r>";
    let events = spex::xml::reader::parse_events(xml).unwrap();
    let (counts, _) = set.count_events(events);
    assert_eq!(counts, vec![1, 1, 1]); // ~b → y; ^b → x; a itself
}

/// Consecutive documents reset axis state: matches never leak across `</$>`.
#[test]
fn axis_state_resets_between_documents() {
    let q: Rpeq = "r.a.~b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str("<r><a/><b>in-doc-1</b></r>").unwrap();
    // Document 2 has a b but no a before it: must not match via doc 1's a.
    eval.push_str("<r><b>in-doc-2</b></r>").unwrap();
    eval.finish();
    assert_eq!(sink.fragments(), ["<b>in-doc-1</b>".to_string()]);

    let q: Rpeq = "r.a.^b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str("<r><b>doc-1</b></r>").unwrap();
    // Document 2's a must not resurrect document 1's b.
    eval.push_str("<r><a/></r>").unwrap();
    eval.finish();
    assert!(sink.fragments().is_empty());
}

/// Chained axes compose: "b's after a's that come after an x".
#[test]
fn chained_axes() {
    let xml = "<r><x/><a/><b>1</b></r>";
    assert_eq!(
        spex::core::evaluate_str("r.x.~a.~b", xml).unwrap(),
        vec!["<b>1</b>"]
    );
    // Without the x in front, nothing.
    let xml2 = "<r><a/><b>1</b></r>";
    assert!(spex::core::evaluate_str("r.x.~a.~b", xml2)
        .unwrap()
        .is_empty());
    // Differentially against the oracle.
    for d in [xml, xml2, "<r><a/><x/><a/><b/><b/></r>"] {
        let events = spex::xml::reader::parse_events(d).unwrap();
        let q: Rpeq = "r.x.~a.~b".parse().unwrap();
        assert_eq!(
            common::spex_spans(&q, &events),
            common::dom_spans(&q, &events)
        );
    }
}

/// The unsupported preceding-in-qualifier shape is rejected by every
/// compilation entry point, not just `evaluate_str`.
#[test]
fn preceding_in_qualifier_rejected_everywhere() {
    let bad: Rpeq = "_*.a[^b]".parse().unwrap();
    assert!(spex::core::CompiledNetwork::try_compile(&bad).is_err());
    assert!(SharedQuerySet::try_compile(&[("q".into(), bad)]).is_err());
    // Conjunctive queries: a side branch containing ^ becomes a qualifier.
    let cq = spex::core::cq::ConjunctiveQuery::parse("q(X1) :- Root(a) X1, X1(^b) X2").unwrap();
    assert!(cq.compile().is_err());
    // But preceding on the main (head) path is fine.
    let ok = spex::core::cq::ConjunctiveQuery::parse("q(X2) :- Root(a) X1, X1(^b) X2").unwrap();
    assert!(ok.compile().is_ok());
}
