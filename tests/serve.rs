//! spex-serve integration: protocol robustness, session isolation, and
//! byte-identity of server results against the one-shot CLI on every
//! bundled workload query (satellites 3 and 6 of the server milestone).

use spex_serve::{Client, FrameKind, Server, ServerConfig, ServerHandle, ServerReport};
use spex_workloads::{
    dmoz_content, dmoz_structure, events_to_xml, mondial::mondial_with, mondial::MondialConfig,
    queries_for, wordnet::wordnet_with, wordnet::WordnetConfig, Dataset,
};
use std::io::Write;
use std::net::SocketAddr;

/// Boot a server on a free loopback port.
fn boot(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<ServerReport>>,
) {
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One-shot CLI run over the same bytes: the byte-identity oracle.
fn one_shot(query: &str, xml: &str) -> Vec<u8> {
    let options = spex_cli::Options {
        query: Some(query.to_string()),
        ..spex_cli::Options::default()
    };
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let code = spex_cli::run(&options, &mut xml.as_bytes(), &mut stdout, &mut stderr);
    assert_eq!(
        code,
        0,
        "one-shot failed for {query}: {}",
        String::from_utf8_lossy(&stderr)
    );
    stdout
}

/// Satellite 3: concurrent clients with different queries over different
/// documents never see each other's results.
#[test]
fn concurrent_sessions_are_isolated() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let name = format!("q{i}");
                let xml = format!("<doc><t{i}>only {i}</t{i}><other/></doc>");
                let mut client = Client::connect(addr).expect("connect");
                let t = client
                    .run_session(&[(name.as_str(), &format!("doc.t{i}"))], xml.as_bytes())
                    .expect("session");
                assert!(t.clean_end, "errors: {:?}", t.errors);
                assert!(t.errors.is_empty());
                // Exactly this session's result, under this session's name.
                assert_eq!(t.results.len(), 1);
                assert_eq!(t.results[0].0, name);
                assert_eq!(
                    t.output_of(&name),
                    format!("<t{i}>only {i}</t{i}>\n").as_bytes()
                );
                for (n, _) in &t.results {
                    assert_eq!(n, &name, "foreign result leaked into session {i}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_completed, 4);
    assert_eq!(report.sessions_failed, 0);
}

/// Satellite 3: a frame with an unknown kind byte gets a structured
/// `protocol` error frame back — the session is closed, the server lives.
/// A session that registers nothing adopts the server's preloaded standing
/// query set (`spex serve --queries FILE`), and two sessions registering
/// the same set in different orders share one cached plan.
#[test]
fn preloaded_standing_queries_serve_registrationless_sessions() {
    let (addr, handle, join) = boot(ServerConfig {
        preload_queries: vec![
            ("title".to_string(), "doc.title".parse().unwrap()),
            ("tags".to_string(), "doc.(tag|keyword)".parse().unwrap()),
        ],
        ..ServerConfig::default()
    });
    let xml = "<doc><title>t</title><tag>a</tag><keyword>b</keyword></doc>";
    // No R frames at all: the standing set answers.
    let mut client = Client::connect(addr).expect("connect");
    let t = client.run_session(&[], xml.as_bytes()).expect("session");
    assert!(t.clean_end, "errors: {:?}", t.errors);
    assert_eq!(t.output_of("title"), b"<title>t</title>\n");
    assert_eq!(
        t.output_of("tags"),
        b"<tag>a</tag>\n<keyword>b</keyword>\n".as_slice()
    );
    // A session registering the same queries (different order + spelling)
    // hits the preloaded cached plan rather than compiling anew.
    let mut client = Client::connect(addr).expect("connect");
    let t = client
        .run_session(
            &[("tags", "doc.(keyword|tag)"), ("title", "(doc).title")],
            xml.as_bytes(),
        )
        .expect("session");
    assert!(t.clean_end);
    assert_eq!(t.output_of("title"), b"<title>t</title>\n");
    handle.shutdown();
    let report = join.join().expect("server thread").expect("server run");
    // One plan compiled at startup, both sessions were cache hits.
    assert!(
        report.stats_json.contains("\"plan_cache_hits\":2"),
        "{}",
        report.stats_json
    );
    assert!(
        report.stats_json.contains("\"plan_cache_misses\":0"),
        "{}",
        report.stats_json
    );
}

#[test]
fn malformed_frame_yields_protocol_error() {
    let (addr, handle, join) = boot(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // Kind 'Z' is not in the grammar; length 0.
    stream.write_all(&[b'Z', 0, 0, 0, 0]).expect("write");
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let frame = spex_serve::read_frame(&mut reader, spex_serve::DEFAULT_MAX_FRAME)
        .expect("read")
        .expect("a frame, not a hangup");
    assert_eq!(frame.kind, FrameKind::Error);
    let body = String::from_utf8(frame.payload).unwrap();
    assert!(body.contains("\"class\":\"protocol\""), "{body}");
    // The server is unharmed: a well-formed session still works.
    let mut client = Client::connect(addr).expect("connect");
    let t = client
        .run_session(&[("q", "a.b")], b"<a><b/></a>")
        .expect("session");
    assert!(t.clean_end && t.errors.is_empty());
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_failed, 1);
    assert_eq!(report.sessions_completed, 1);
}

/// Satellite 3: a frame whose declared length exceeds the server's cap is
/// rejected before the payload is read, with a structured error frame.
#[test]
fn oversized_frame_yields_protocol_error() {
    let (addr, handle, join) = boot(ServerConfig {
        max_frame: 1024,
        ..ServerConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // Register first so the oversized frame arrives mid-session.
    spex_serve::write_frame(&mut stream, FrameKind::Register, b"q=a.b").expect("register");
    // DATA declaring 1 MiB against a 1 KiB cap; no payload follows.
    stream
        .write_all(&[b'D', 0x00, 0x10, 0x00, 0x00])
        .expect("write");
    stream.flush().unwrap();
    let read_half = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(read_half);
    let mut saw_protocol_error = false;
    while let Some(frame) =
        spex_serve::read_frame(&mut reader, spex_serve::DEFAULT_MAX_FRAME).expect("read")
    {
        match frame.kind {
            FrameKind::Error => {
                let body = String::from_utf8(frame.payload).unwrap();
                assert!(body.contains("\"class\":\"protocol\""), "{body}");
                saw_protocol_error = true;
            }
            FrameKind::SessionEnd => break,
            _ => {}
        }
    }
    assert!(saw_protocol_error, "no protocol error frame arrived");
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_failed, 1);
}

/// Satellite 3: a session breaching its resource limits mid-stream is
/// closed with a `resource` error while a concurrent session streams on.
#[test]
fn resource_exhaustion_closes_only_the_offending_session() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 2,
        limits: spex_core::ResourceLimits::default().with_max_stream_depth(4),
        ..ServerConfig::default()
    });
    let deep = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .run_session(
                &[("deep", "_*.f")],
                b"<a><b><c><d><e><f/></e></d></c></b></a>",
            )
            .expect("session")
    });
    let shallow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .run_session(&[("ok", "a.b")], b"<a><b>fine</b></a>")
            .expect("session")
    });
    let t_deep = deep.join().unwrap();
    let t_shallow = shallow.join().unwrap();
    assert_eq!(t_deep.error_classes(), ["resource"]);
    assert!(t_deep.clean_end);
    assert!(t_shallow.errors.is_empty(), "{:?}", t_shallow.errors);
    assert_eq!(t_shallow.output_of("ok"), b"<b>fine</b>\n");
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_failed, 1);
    assert_eq!(report.sessions_completed, 1);
}

/// The acceptance bar: for every bundled workload query, the bytes a
/// server session delivers equal the one-shot CLI's stdout on the same
/// document. Workloads are scaled down so the debug-mode run stays quick;
/// the queries are the paper's, verbatim.
#[test]
fn server_results_match_one_shot_cli_on_workload_queries() {
    let corpora: Vec<(Dataset, String)> = vec![
        (
            Dataset::Mondial,
            events_to_xml(&mondial_with(&MondialConfig {
                countries: 40,
                ..MondialConfig::default()
            })),
        ),
        (
            Dataset::Wordnet,
            events_to_xml(&wordnet_with(&WordnetConfig {
                nouns: 1200,
                ..WordnetConfig::default()
            })),
        ),
        (
            Dataset::DmozStructure,
            events_to_xml(&dmoz_structure(0.001).collect::<Vec<_>>()),
        ),
        (
            Dataset::DmozContent,
            events_to_xml(&dmoz_content(0.0005).collect::<Vec<_>>()),
        ),
    ];
    let (addr, handle, join) = boot(ServerConfig::default());
    for (dataset, xml) in &corpora {
        // All of the dataset's query classes in one session, through one
        // shared network — the server's natural mode.
        let classes = queries_for(*dataset);
        let named: Vec<(String, String)> = classes
            .iter()
            .map(|qc| (format!("c{}", qc.class), qc.text.to_string()))
            .collect();
        let queries: Vec<(&str, &str)> = named
            .iter()
            .map(|(n, q)| (n.as_str(), q.as_str()))
            .collect();
        let mut client = Client::connect(addr).expect("connect");
        client.set_max_frame(64 * 1024 * 1024);
        let t = client
            .run_session(&queries, xml.as_bytes())
            .expect("session");
        assert!(t.clean_end, "{:?} errors: {:?}", dataset, t.errors);
        assert!(t.errors.is_empty());
        for qc in &classes {
            let expected = one_shot(qc.text, xml);
            let got = t.output_of(&format!("c{}", qc.class));
            assert_eq!(
                got, expected,
                "{:?} class {} `{}`: server bytes differ from one-shot CLI",
                dataset, qc.class, qc.text
            );
        }
    }
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_failed, 0);
}

/// Graceful shutdown drains: a session already admitted keeps streaming to
/// completion after the shutdown flag is raised, and the server exits
/// cleanly with the session counted.
#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let (addr, handle, join) = boot(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.register("q", "r.x").unwrap();
    // Wait for the ack: the session is now owned by a worker, so the
    // shutdown below must drain it rather than cut it off.
    let ack = client.next_frame().expect("ack").expect("ack frame");
    assert_eq!(ack.kind, FrameKind::Ok);
    client.send_xml(b"<r><x>first half").unwrap();
    // Session is mid-document; ask the server to stop.
    handle.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(50));
    client.send_xml(b", second half</x></r>").unwrap();
    client.end().unwrap();
    let t = client.drain().expect("drain");
    assert!(t.clean_end);
    assert!(t.errors.is_empty());
    assert_eq!(t.output_of("q"), b"<x>first half, second half</x>\n");
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.sessions_completed, 1);
}

/// Collect the distinct `"key":` names appearing in a JSON blob (the
/// repo-wide line-scan idiom — no JSON parser dependency).
fn json_keys(json: &str) -> std::collections::BTreeSet<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(close) = json[i + 1..].find('"') {
                let end = i + 1 + close;
                if bytes.get(end + 1) == Some(&b':') {
                    keys.insert(json[i + 1..end].to_string());
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    keys
}

/// Satellite 6: the statistics JSON a session receives is schema-compatible
/// with the one-shot `--stats-json` output — every one-shot key appears,
/// including `peak_arena_bytes` and `interned_symbols`, and a recovery
/// session adds the same `faults` section the one-shot tool emits.
#[test]
fn serve_stats_json_matches_one_shot_schema() {
    // One-shot reference run.
    let options = spex_cli::Options {
        query: Some("a.b".to_string()),
        stats_json: true,
        ..spex_cli::Options::default()
    };
    let (mut stdout, mut stderr) = (Vec::new(), Vec::new());
    let code = spex_cli::run(&options, &mut &b"<a><b/></a>"[..], &mut stdout, &mut stderr);
    assert_eq!(code, 0);
    let stderr = String::from_utf8(stderr).unwrap();
    let one_shot_json = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("one-shot --stats-json line");

    // Server session over the same document.
    let (addr, handle, join) = boot(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let t = client
        .run_session(&[("q", "a.b")], b"<a><b/></a>")
        .expect("session");
    assert!(t.clean_end);
    let serve_json = t.stats.expect("session stats frame");

    let expected = json_keys(one_shot_json);
    let got = json_keys(&serve_json);
    let missing: Vec<&String> = expected.difference(&got).collect();
    assert!(
        missing.is_empty(),
        "serve stats JSON is missing one-shot keys {missing:?}\none-shot: {one_shot_json}\nserve: {serve_json}"
    );
    for key in ["peak_arena_bytes", "interned_symbols"] {
        assert!(got.contains(key), "missing `{key}` in {serve_json}");
    }

    // A recovery session reports the `faults` section of the shared schema.
    handle.shutdown();
    join.join().unwrap().unwrap();
    let (addr, handle, join) = boot(ServerConfig {
        recovery: spex_xml::RecoveryPolicy::Repair,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let t = client
        .run_session(&[("q", "r.a")], b"<r><a/><x></nope></x></r>")
        .expect("session");
    assert!(t.clean_end);
    let recovery_json = t.stats.expect("recovery session stats");
    let keys = json_keys(&recovery_json);
    assert!(
        keys.contains("faults"),
        "no faults section in {recovery_json}"
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}
