//! Failure injection and pathological inputs: the engine must degrade with
//! errors, never panics or corrupted state.

mod common;

use spex::core::{CompiledNetwork, CountingSink, EvalError, Evaluator, FragmentCollector};
use spex::query::Rpeq;
use spex::xml::{XmlError, XmlEvent};
use std::io::Read;

/// A reader that yields some bytes and then fails.
struct FailingReader {
    data: Vec<u8>,
    pos: usize,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Err(std::io::Error::other("injected I/O failure"));
        }
        let n = buf.len().min(self.data.len() - self.pos).min(7);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn io_failure_mid_stream_surfaces_as_error() {
    let q: Rpeq = "_*.b".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    let reader = FailingReader {
        data: b"<a><b/><b/>".to_vec(),
        pos: 0,
    };
    let err = eval.push_reader(reader).unwrap_err();
    assert!(
        matches!(err, EvalError::Xml(XmlError::Io(_))),
        "got {err:?}"
    );
    // The evaluator is still usable for what it saw; finishing flushes
    // whatever was determined.
    let stats = eval.finish();
    assert!(stats.ticks >= 3);
}

#[test]
fn malformed_xml_mid_stream_surfaces_as_error() {
    let q: Rpeq = "a".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    let err = eval.push_str("<a><b></a></b>").unwrap_err();
    assert!(matches!(
        err,
        EvalError::Xml(XmlError::MismatchedTag { .. })
    ));
}

/// Events pushed by hand (not through the parser) can violate the stream
/// grammar; the engine must not panic on release builds. These sequences
/// are *unsupported*, the contract is merely "no crash".
#[test]
fn hand_fed_unbalanced_events_do_not_panic() {
    for seq in [
        vec![XmlEvent::close("a")],
        vec![XmlEvent::open("a")],
        vec![XmlEvent::EndDocument],
        vec![XmlEvent::open("a"), XmlEvent::close("b")],
        vec![
            XmlEvent::text("loose"),
            XmlEvent::close("x"),
            XmlEvent::close("x"),
        ],
    ] {
        let q: Rpeq = "_*.a[b]".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        let mut sink = CountingSink::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        for ev in seq {
            eval.push(ev);
        }
        // finish() runs the output flush; must not panic either.
        let _ = eval.stats();
    }
}

#[test]
fn very_deep_documents_stream_fine() {
    // The engine and parser are iterative; depth is bounded only by memory.
    let depth = 20_000;
    let mut xml = String::with_capacity(depth * 7 + 16);
    for _ in 0..depth {
        xml.push_str("<d>");
    }
    xml.push_str("<leaf/>");
    for _ in 0..depth {
        xml.push_str("</d>");
    }
    let q: Rpeq = "_*.leaf".parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(&xml).unwrap();
    let stats = eval.finish();
    assert_eq!(sink.results, 1);
    assert_eq!(stats.max_stream_depth, depth + 2);
}

#[test]
fn huge_fanout_documents_stream_fine() {
    let n = 50_000;
    let mut xml = String::with_capacity(n * 8 + 8);
    xml.push_str("<r>");
    for _ in 0..n {
        xml.push_str("<x/>");
    }
    xml.push_str("</r>");
    let frag_count = spex::core::evaluate_str("r.x", &xml).unwrap().len();
    assert_eq!(frag_count, n);
}

#[test]
fn pathological_label_reuse() {
    // The same label at every level, as query step, closure and qualifier:
    // maximal ambiguity for the scope tracking.
    let xml = "<a><a><a><a/></a></a></a>";
    for q in [
        "a.a.a.a",
        "a+.a",
        "a.a+",
        "a+[a].a",
        "a[a[a[a]]]",
        "_*.a[a+]",
    ] {
        let spex = common::spex_spans(
            &q.parse().unwrap(),
            &spex::xml::reader::parse_events(xml).unwrap(),
        );
        let dom = common::dom_spans(
            &q.parse().unwrap(),
            &spex::xml::reader::parse_events(xml).unwrap(),
        );
        assert_eq!(spex, dom, "on {q}");
    }
}

#[test]
fn unicode_labels_and_content_end_to_end() {
    let xml = "<世界><grüße id=\"ü\">héllo 🌍</grüße></世界>";
    let frags = spex::core::evaluate_str("世界.grüße", xml).unwrap();
    assert_eq!(frags, vec!["<grüße id=\"ü\">héllo 🌍</grüße>"]);
}

#[test]
fn entity_heavy_content() {
    let xml = "<r><v>&lt;&gt;&amp;&quot;&apos;&#65;</v></r>";
    let frags = spex::core::evaluate_str("r.v", xml).unwrap();
    // Re-escaped on output (quotes need no escaping in text).
    assert_eq!(frags, vec!["<v>&lt;&gt;&amp;\"'A</v>"]);
}

#[test]
fn query_size_stress() {
    // A 400-step query compiles and runs without blowing up.
    let q_text = (0..400)
        .map(|i| format!("s{i}"))
        .collect::<Vec<_>>()
        .join(".");
    let q: Rpeq = q_text.parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    assert_eq!(net.degree(), 402);
    let frags = {
        let mut sink = CountingSink::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        eval.push_str("<s0><s1/></s0>").unwrap();
        eval.finish();
        sink.results
    };
    assert_eq!(frags, 0);
}

#[test]
fn empty_elements_and_whitespace_only_content() {
    let xml = "<r>  <a>   </a>  <a/>  </r>";
    let frags = spex::core::evaluate_str("r.a", xml).unwrap();
    assert_eq!(frags, vec!["<a>   </a>", "<a></a>"]);
}
