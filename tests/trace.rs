//! End-to-end observability tests (DESIGN.md §13): the trace record
//! schema as emitted by a full evaluation, and the determination-latency
//! ("earliness") measure checked against a DOM-oracle construction where
//! the qualifier decides a known number of stream events after the
//! candidate opens.

use spex_baseline::DomEvaluator;
use spex_core::{CompiledNetwork, CountingSink, Evaluator};
use spex_query::Rpeq;
use spex_trace::{MemorySink, TraceRecord, Tracer};
use spex_xml::Document;
use std::sync::Arc;

/// Evaluate `query` over `xml` with a capturing tracer attached; return
/// the result count and every emitted trace record.
fn eval_traced(query: &str, xml: &str) -> (usize, Vec<TraceRecord>) {
    let q: Rpeq = query.parse().expect("query parses");
    let network = CompiledNetwork::compile(&q);
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::to_sink(sink.clone());
    let mut counting = CountingSink::new();
    let mut eval = Evaluator::new(&network, &mut counting);
    eval.set_tracer(tracer);
    let mut reader = spex_xml::Reader::new(xml.as_bytes());
    eval.push_from(&mut reader).expect("well-formed");
    eval.finish_full();
    (counting.results, sink.records())
}

/// The oracle: the same query evaluated set-at-a-time over the
/// materialized tree.
fn dom_count(query: &str, xml: &str) -> usize {
    let q: Rpeq = query.parse().expect("query parses");
    let events = spex_xml::reader::parse_events(xml).expect("well-formed");
    let doc = Document::from_events(events).expect("tree");
    DomEvaluator::new(&doc).evaluate(&q).len()
}

/// Fold every non-empty `engine.determination_latency` histogram into
/// (total count, min, max) across the network's OU nodes.
fn latency_profile(records: &[TraceRecord]) -> (u64, u64, u64) {
    let mut total = 0u64;
    let mut min = u64::MAX;
    let mut max = 0u64;
    for r in records {
        if let TraceRecord::Hist { name, summary, .. } = r {
            if name == "engine.determination_latency" && summary.count > 0 {
                total += summary.count;
                min = min.min(summary.min);
                max = max.max(summary.max);
            }
        }
    }
    (total, min, max)
}

#[test]
fn qualifier_decided_n_events_late_reports_latency_of_at_least_n() {
    // The candidate `a` enters the Output buffer at `<a>`; the qualifier
    // [b] cannot decide before `<b/>`, which arrives after k `<pad/>`
    // elements = 2k stream events. The reported latency must not
    // understate that distance.
    let k = 16usize;
    let pads = "<pad/>".repeat(k);
    let xml = format!("<r><a>{pads}<b/></a></r>");
    let query = "r.a[b]";
    let (results, records) = eval_traced(query, &xml);
    assert_eq!(results, dom_count(query, &xml), "spex vs DOM oracle");
    assert_eq!(results, 1);
    let (count, min, _max) = latency_profile(&records);
    assert!(count >= 1, "no determination latency recorded");
    assert!(
        min >= 2 * k as u64,
        "latency {min} understates the {}-event wait",
        2 * k
    );
}

#[test]
fn rejected_candidate_counts_its_forced_determination_at_end() {
    // No `b` ever arrives: the candidate is forced false when its
    // subtree closes. The latency histogram must count that at its
    // actual distance — a lazy evaluator cannot report earliness it
    // does not have.
    let k = 16usize;
    let pads = "<pad/>".repeat(k);
    let xml = format!("<r><a>{pads}</a></r>");
    let query = "r.a[b]";
    let (results, records) = eval_traced(query, &xml);
    assert_eq!(results, dom_count(query, &xml), "spex vs DOM oracle");
    assert_eq!(results, 0);
    let (count, min, _max) = latency_profile(&records);
    assert!(count >= 1, "aborted candidate left no latency record");
    assert!(
        min >= 2 * k as u64,
        "forced determination latency {min} too small"
    );
}

#[test]
fn early_and_late_qualifiers_separate_in_the_histogram() {
    // Two matches: one `a` whose qualifier decides immediately (first
    // child is `<b/>`), one whose qualifier decides after 2k pad
    // events. Progressiveness is visible as the spread between the
    // histogram's min and max.
    let k = 16usize;
    let pads = "<pad/>".repeat(k);
    let xml = format!("<r><a><b/>{pads}</a><a>{pads}<b/></a></r>");
    let query = "r.a[b]";
    let (results, records) = eval_traced(query, &xml);
    assert_eq!(results, dom_count(query, &xml), "spex vs DOM oracle");
    assert_eq!(results, 2);
    let (count, min, max) = latency_profile(&records);
    assert!(count >= 2);
    assert!(min <= 3, "early qualifier decided late: min {min}");
    assert!(
        max >= 2 * k as u64,
        "late qualifier reported early: max {max}"
    );
}

#[test]
fn emitted_records_follow_the_section_13_schema() {
    let (_, records) = eval_traced("r.a[b]", "<r><a><b/></a></r>");
    assert!(!records.is_empty());
    for r in &records {
        let line = r.to_json();
        assert!(
            line.starts_with("{\"t\":\"") && line.ends_with('}'),
            "malformed record line: {line}"
        );
    }
    let names: Vec<&str> = records.iter().map(|r| r.name()).collect();
    for expected in [
        "engine.ticks",
        "engine.messages",
        "engine.results",
        "engine.max_stream_depth",
        "engine.node.messages",
        "engine.determination_latency",
    ] {
        assert!(names.contains(&expected), "missing record {expected}");
    }
    // Per-node records carry the node id and transducer kind.
    let node = records
        .iter()
        .find(|r| r.name() == "engine.node.messages")
        .expect("per-node record");
    let keys: Vec<&str> = node.attrs().iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        keys.contains(&"node") && keys.contains(&"kind"),
        "attrs: {keys:?}"
    );
}
