//! Durability properties with shrinking: a document-boundary checkpoint
//! restored into a fresh run is invisible — the continuation delivers the
//! same fragments at the same ticks and finishes with identical statistics
//! as the uninterrupted run, on both engines and across them — and a
//! corrupted or truncated snapshot always fails to decode with a structured
//! error, never a panic. The seeded `harness crash-diff` rig covers volume
//! (random kill offsets, WAL tails, recovery policies); these properties
//! cover minimization.

use proptest::prelude::*;
use spex::core::{
    CompiledNetwork, CountingSink, Engine, EngineStats, Evaluator, FragmentCollector, Snapshot,
    TransducerStats,
};
use spex::query::{Label, Rpeq};
use spex::xml::XmlEvent;

fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string())
    ]
}

fn qlabel() -> impl Strategy<Value = Label> {
    prop_oneof![
        3 => label().prop_map(Label::Name),
        1 => Just(Label::Wildcard),
    ]
}

/// Balanced subtree events.
fn subtree(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = label().prop_map(|l| vec![XmlEvent::open(l.clone()), XmlEvent::close(l)]);
    leaf.prop_recursive(depth, 48, 3, |inner| {
        (label(), proptest::collection::vec(inner, 0..3)).prop_map(|(l, kids)| {
            let mut v = vec![XmlEvent::open(l.clone())];
            for k in kids {
                v.extend(k);
            }
            v.push(XmlEvent::close(l));
            v
        })
    })
}

fn document() -> impl Strategy<Value = Vec<XmlEvent>> {
    (label(), proptest::collection::vec(subtree(4), 0..3)).prop_map(|(root, kids)| {
        let mut v = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
        for k in kids {
            v.extend(k);
        }
        v.push(XmlEvent::close(root));
        v.push(XmlEvent::EndDocument);
        v
    })
}

fn query() -> impl Strategy<Value = Rpeq> {
    let leaf = prop_oneof![
        4 => qlabel().prop_map(Rpeq::Step),
        2 => qlabel().prop_map(Rpeq::Plus),
        2 => qlabel().prop_map(Rpeq::Star),
        1 => Just(Rpeq::Empty),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Concat(Box::new(a), Box::new(b))),
            1 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Union(Box::new(a), Box::new(b))),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Qualified(Box::new(a), Box::new(b))),
            1 => inner.prop_map(|a| Rpeq::Optional(Box::new(a))),
        ]
    })
}

type FullRun = (
    Vec<String>,
    EngineStats,
    Vec<TransducerStats>,
    Vec<(u64, u64)>,
);

/// The uninterrupted multi-document session: every document pushed through
/// one evaluator, `reset_session` at each boundary.
fn run_full(net: &CompiledNetwork, engine: Engine, docs: &[Vec<XmlEvent>]) -> FullRun {
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_engine(net, &mut sink, engine);
    for doc in docs {
        for ev in doc {
            eval.push(ev.clone());
        }
        eval.reset_session();
    }
    let (stats, transducers) = eval.finish_full();
    let timing = sink.timing.clone();
    (sink.into_fragments(), stats, transducers, timing)
}

/// The same session killed after `split` documents: checkpoint at the
/// boundary, encode to bytes, decode, restore into a brand-new evaluator
/// (possibly on the other engine) and push the remaining documents there.
fn run_checkpointed(
    net: &CompiledNetwork,
    engine: Engine,
    restore_engine: Engine,
    docs: &[Vec<XmlEvent>],
    split: usize,
) -> FullRun {
    let mut prefix_sink = FragmentCollector::new();
    let mut eval = Evaluator::with_engine(net, &mut prefix_sink, engine);
    for doc in &docs[..split] {
        for ev in doc {
            eval.push(ev.clone());
        }
        eval.reset_session();
    }
    let bytes = eval
        .checkpoint()
        .expect("a document boundary is quiescent")
        .encode();
    drop(eval);
    let snap = Snapshot::decode(&bytes).expect("own snapshot decodes");
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_engine(net, &mut sink, restore_engine);
    eval.restore(&snap).expect("own snapshot restores");
    for doc in &docs[split..] {
        for ev in doc {
            eval.push(ev.clone());
        }
        eval.reset_session();
    }
    let (stats, transducers) = eval.finish_full();
    let mut timing = prefix_sink.timing.clone();
    timing.extend(sink.timing.iter().copied());
    let mut fragments = prefix_sink.into_fragments();
    fragments.extend(sink.into_fragments());
    (fragments, stats, transducers, timing)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn checkpoint_restore_is_transparent(
        docs in proptest::collection::vec(document(), 2..4),
        q in query(),
        split_sel in any::<u64>()
    ) {
        let net = CompiledNetwork::compile(&q);
        let split = 1 + (split_sel as usize) % (docs.len() - 1);
        for (engine, restore_engine) in [
            (Engine::Vm, Engine::Vm),
            (Engine::Network, Engine::Network),
            // Snapshots are engine-portable: checkpoint under the VM,
            // restore into the interpreter network.
            (Engine::Vm, Engine::Network),
        ] {
            let base = run_full(&net, restore_engine, &docs);
            let resumed = run_checkpointed(&net, engine, restore_engine, &docs, split);
            prop_assert_eq!(
                &resumed.0, &base.0,
                "fragments diverge for `{}` split {} ({}->{})",
                &q, split, engine, restore_engine
            );
            prop_assert_eq!(
                &resumed.1, &base.1,
                "stats diverge for `{}` split {} ({}->{})",
                &q, split, engine, restore_engine
            );
            prop_assert_eq!(
                &resumed.2, &base.2,
                "transducer stats diverge for `{}` split {} ({}->{})",
                &q, split, engine, restore_engine
            );
            prop_assert_eq!(
                &resumed.3, &base.3,
                "delivery timing diverges for `{}` split {} ({}->{})",
                &q, split, engine, restore_engine
            );
        }
    }

    #[test]
    fn corrupt_snapshots_fail_structurally(
        doc in document(),
        q in query(),
        flip in any::<u64>(),
        trunc in any::<u64>()
    ) {
        let net = CompiledNetwork::compile(&q);
        let mut sink = CountingSink::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        for ev in &doc {
            eval.push(ev.clone());
        }
        eval.reset_session();
        let bytes = eval.checkpoint().expect("quiescent").encode();
        prop_assert!(Snapshot::decode(&bytes).is_ok(), "clean snapshot must decode");
        // Any single bit flip anywhere — magic, version, length, checksum,
        // payload — is rejected with an error, never a panic.
        let bit = (flip as usize) % (bytes.len() * 8);
        let mut flipped = bytes.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Snapshot::decode(&flipped).is_err(), "flipped bit {} must not decode", bit);
        // Any strict truncation is rejected too.
        let cut = (trunc as usize) % bytes.len();
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err(), "{}-byte prefix must not decode", cut);
    }
}
