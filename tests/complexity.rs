//! Measured counterparts of the §V complexity results (experiments E5/E7):
//!
//! * Lemma V.1 — network degree linear in the query length,
//! * depth/condition stacks bounded by the stream depth *d*,
//! * formula sizes per language fragment: o(φ) = 1 without qualifiers,
//!   o(φ) ≤ min(n, d) without closure, growth with qualified wildcard
//!   closures in the general case, and Σnᵢ ≤ d in the sequential case of
//!   Remark V.1.

mod common;

use spex::core::{CompiledNetwork, CountingSink, EngineStats, Evaluator};
use spex::query::{QueryMetrics, Rpeq};

fn run_stats(query: &str, xml: &str) -> EngineStats {
    let q: Rpeq = query.parse().unwrap();
    let net = CompiledNetwork::compile(&q);
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml).unwrap();
    eval.finish()
}

/// A recursive document of the given element depth: `<a><a>…</a></a>`.
fn nested(label: &str, depth: usize) -> String {
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str(&format!("<{label}>"));
    }
    xml.push_str("<leaf/>");
    for _ in 0..depth {
        xml.push_str(&format!("</{label}>"));
    }
    xml
}

#[test]
fn lemma_v1_network_degree_linear() {
    let mut prev = 0;
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let q: Rpeq = (0..n)
            .map(|i| format!("_*.s{i}[t{i}]"))
            .collect::<Vec<_>>()
            .join(".")
            .parse()
            .unwrap();
        let net = CompiledNetwork::compile(&q);
        let m = QueryMetrics::of(&q);
        let degree = net.degree();
        // Linear: bounded by a constant factor of the AST length, and
        // monotone in n.
        assert!(
            degree <= 6 * m.length + 2,
            "degree {degree} vs length {}",
            m.length
        );
        assert!(degree > prev);
        prev = degree;
    }
}

#[test]
fn stacks_bounded_by_stream_depth() {
    for d in [2usize, 8, 32, 64] {
        let xml = nested("a", d);
        let stats = run_stats("_*.a[leaf]", &xml);
        // The stream depth is d+2 ($, a×d … plus the leaf).
        assert_eq!(stats.max_stream_depth, d + 2);
        assert!(
            stats.max_depth_stack <= d + 2,
            "depth stack {} exceeds stream depth {}",
            stats.max_depth_stack,
            d + 2
        );
        assert!(
            stats.max_cond_stack <= d + 2,
            "cond stack {} exceeds stream depth {}",
            stats.max_cond_stack,
            d + 2
        );
    }
}

/// Fragment rpeq* (no qualifiers): "there can be only a single boolean
/// formula in the condition stacks, i.e. true … o(φ) = 1."
#[test]
fn formula_size_constant_without_qualifiers() {
    for d in [4usize, 16, 64] {
        let stats = run_stats("_*.a+._*.leaf", &nested("a", d));
        assert_eq!(stats.max_formula_size, 1, "at depth {d}");
    }
}

/// Fragment rpeq[] (qualifiers, no closure): o(φ) ≤ min(n, d).
#[test]
fn formula_size_bounded_without_closure() {
    // n qualifiers chained on child steps: the document is flat so d is
    // small; formulas stay within min(n, d).
    for n in [1usize, 2, 4] {
        let query = format!(
            "r{}",
            (0..n).map(|_| "[x].r".to_string()).collect::<String>()
        );
        let mut xml = String::from("<r><x/>");
        for _ in 0..n {
            xml.push_str("<r><x/>");
        }
        for _ in 0..n {
            xml.push_str("</r>");
        }
        xml.push_str("</r>");
        let stats = run_stats(&query, &xml);
        let d = stats.max_stream_depth;
        assert!(
            stats.max_formula_size <= n.min(d) + 1,
            "o(φ) = {} for n = {n}, d = {d}",
            stats.max_formula_size
        );
    }
}

/// Qualified wildcard closures: formulas grow with the number of
/// simultaneously active matchings (the dⁿ analysis of §V); in the
/// sequential case of Remark V.1 the growth is only additive (Σnᵢ ≤ d).
#[test]
fn formula_growth_with_qualified_closures() {
    // Formula growth requires a *closure step downstream of a qualifier*
    // (§V: "expressions with qualifiers on n wildcard closure steps"): the
    // closure transducer merges the formulas of its nested match scopes by
    // disjunction, so over a recursive document the disjunctions collect up
    // to d qualifier-instance variables.
    let q = "_*._[leaf]._*._";
    let shallow = run_stats(q, &nested("a", 4));
    let deep = run_stats(q, &nested("a", 24));
    assert!(
        deep.max_formula_size > shallow.max_formula_size,
        "deep {} vs shallow {}",
        deep.max_formula_size,
        shallow.max_formula_size
    );
    // With one qualified closure the growth is linear in d (the dⁿ blow-up
    // needs n stacked qualified closures).
    assert!(
        deep.max_formula_size <= 2 * 26,
        "got {}",
        deep.max_formula_size
    );

    // Sequential case (Remark V.1): when the two closure regions match
    // disjoint stream regions, sizes stay additive.
    let xml = format!("<top>{}{}</top>", nested("a", 10), nested("b", 10));
    let seq = run_stats("_*.a[leaf]._*.b", &xml);
    assert!(
        seq.max_formula_size <= 24,
        "sequential matching should stay additive, got {}",
        seq.max_formula_size
    );
}

/// The number of condition variables created equals the number of qualifier
/// instances, bounded by qualifier matches (not stream size).
#[test]
fn variable_creation_counts() {
    let xml = "<r><a><b/></a><a/><a><b/></a></r>";
    let stats = run_stats("_*.a[b]", xml);
    assert_eq!(stats.vars_created, 3, "one instance per a element");
    let stats2 = run_stats("r[a]", xml);
    assert_eq!(stats2.vars_created, 1);
}

/// Evaluation time is linear in the stream size: message counts scale
/// linearly with stream length for a fixed query (Theorem V.1 proxy).
#[test]
fn messages_linear_in_stream_size() {
    let q = "_*.rec[flag].v";
    let make = |n: usize| {
        let mut xml = String::from("<db>");
        for i in 0..n {
            xml.push_str(&format!("<rec><flag/><v>{i}</v></rec>"));
        }
        xml.push_str("</db>");
        xml
    };
    let s1 = run_stats(q, &make(100));
    let s4 = run_stats(q, &make(400));
    let ratio = s4.messages as f64 / s1.messages as f64;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "messages should scale ~4x, got {ratio:.2} ({} vs {})",
        s4.messages,
        s1.messages
    );
}
