//! Conjunctive queries with regular path expressions (§VII of the paper):
//! multi-sink SPEX networks, one output transducer per head variable.
//!
//! ```sh
//! cargo run --example conjunctive
//! ```

use spex::core::cq::ConjunctiveQuery;

fn main() {
    let xml = "<a><a><c/></a><b/><c/></a>"; // Fig. 1 of the paper

    // The paper's §VII example: q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3.
    // X2 does not lead to a head variable, so its atom becomes a qualifier —
    // the query is equivalent to the rpeq `_*.a[b].c`.
    let cq = ConjunctiveQuery::parse("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3").unwrap();
    println!("conjunctive query : {cq}");
    let results = cq.evaluate_str(xml).unwrap();
    println!("X3 = {:?}", results["X3"]);
    assert_eq!(
        results["X3"],
        spex::core::evaluate_str("_*.a[b].c", xml).unwrap()
    );
    println!("  (matches the rpeq `_*.a[b].c`, as claimed in §VII)\n");

    // Several head variables: one network pass fills several sinks.
    let cq2 = ConjunctiveQuery::parse("q(X1, X2) :- Root(_*.a) X1, X1(c) X2").unwrap();
    println!("conjunctive query : {cq2}");
    let (spec, sink_vars) = cq2.compile().unwrap();
    println!(
        "network           : {} transducers, sinks for {:?}",
        spec.degree(),
        sink_vars
    );
    let results2 = cq2.evaluate_str(xml).unwrap();
    for (var, frags) in &results2 {
        println!("{var} = {frags:?}");
    }
    assert_eq!(results2["X1"].len(), 2);
    assert_eq!(results2["X2"].len(), 2);

    // A deeper pipeline over a small catalog document.
    let catalog = "<catalog>\
        <book><title>Streams</title><author><name>Ada</name></author></book>\
        <book><title>Trees</title></book>\
        </catalog>";
    let cq3 = ConjunctiveQuery::parse(
        "q(Title) :- Root(catalog) C, C(book) B, B(author) A, B(title) Title",
    )
    .unwrap();
    println!("\nconjunctive query : {cq3}");
    let results3 = cq3.evaluate_str(catalog).unwrap();
    println!("Title = {:?}", results3["Title"]);
    // Only the book with an author qualifies (the author atom is a qualifier
    // branch — it does not lead to the head variable).
    assert_eq!(
        results3["Title"],
        vec!["<title>Streams</title>".to_string()]
    );
    println!("\nconjunctive queries behave as specified.");
}
