//! Querying a very large document with constant memory — the paper's Fig. 15
//! scenario, where the in-memory processors ran out of memory on the DMOZ
//! dumps while "the SPEX prototype uses a constant amount of memory … for
//! all of the given queries and documents".
//!
//! A DMOZ-structure-like stream (default 1/20 of the paper's 300 MB; pass a
//! scale factor as the first argument) is generated on the fly and never
//! materialized: generator → SPEX network → counting sink.
//!
//! ```sh
//! cargo run --release --example large_document          # 1/20 scale (~15 MB)
//! cargo run --release --example large_document -- 0.5   # ~150 MB
//! ```

use spex::core::{CompiledNetwork, CountingSink, Evaluator};
use spex::workloads::{dmoz_structure, queries_for, Dataset};
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("DMOZ structure at scale {scale} (paper full size: 300 MB, 3,940,716 elements)\n");

    for qc in queries_for(Dataset::DmozStructure) {
        let network = CompiledNetwork::compile(&qc.rpeq());
        let mut sink = CountingSink::new();
        let mut eval = Evaluator::new(&network, &mut sink);
        let start = Instant::now();
        let mut events = 0u64;
        let mut bytes = 0u64;
        for ev in dmoz_structure(scale) {
            bytes += ev.to_string().len() as u64;
            events += 1;
            eval.push(ev);
        }
        let stats = eval.finish();
        let elapsed = start.elapsed();
        println!(
            "class {} {:32} {:>9.2?}  ({:.1} MB/s, {} results, peak buffered events {}, stacks d={} c={})",
            qc.class,
            qc.text,
            elapsed,
            bytes as f64 / 1e6 / elapsed.as_secs_f64(),
            sink.results,
            stats.peak_buffered_events,
            stats.max_depth_stack,
            stats.max_cond_stack,
        );
        let _ = events;
    }

    if let Some(kb) = peak_rss_kb() {
        println!("\npeak RSS of this process: {:.1} MB", kb as f64 / 1024.0);
        println!("(the paper's prototype used a constant 8.5–11 MB including the JVM;");
        println!(" the point is that memory does not grow with the document size — try");
        println!(" different scale factors and watch this number stay put.)");
    }
}
