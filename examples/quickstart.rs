//! Quickstart: compile a regular path expression with qualifiers and
//! evaluate it against an XML document, streamed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spex::core::{CompiledNetwork, Evaluator, FragmentCollector};
use spex::query::Rpeq;

fn main() {
    // The document of Fig. 1 of the paper.
    let xml = "<a><a><c/></a><b/><c/></a>";

    // The complete example of §III.10: select `c` elements that are children
    // of an `a` element (at any depth) having a `b` child.
    let query: Rpeq = "_*.a[b].c".parse().expect("valid rpeq");

    // One-time compilation: query → transducer network (linear time).
    let network = CompiledNetwork::compile(&query);
    println!("query    : {query}");
    println!("network  : {}", network.spec().describe().join(" → "));
    println!("degree   : {} transducers", network.degree());
    println!();

    // Streamed evaluation: events are pushed one at a time; results are
    // delivered progressively to the sink.
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&network, &mut sink);
    eval.push_str(xml).expect("well-formed XML");
    let stats = eval.finish();

    println!("results ({}):", sink.fragments().len());
    for (fragment, (start, delivered)) in sink.fragments().iter().zip(&sink.timing) {
        println!("  {fragment}    [matched at tick {start}, delivered at tick {delivered}]");
    }
    println!();
    println!("stream statistics:");
    println!("  document messages : {}", stats.ticks);
    println!("  stream depth d    : {}", stats.max_stream_depth);
    println!(
        "  qualifier instances (condition variables) : {}",
        stats.vars_created
    );
    println!(
        "  candidates created / results / dropped    : {} / {} / {}",
        stats.candidates_created, stats.results, stats.dropped
    );
    println!(
        "  peak buffered events (undetermined candidates) : {}",
        stats.peak_buffered_events
    );

    // The same evaluation, one-shot:
    let fragments = spex::core::evaluate_str("_*.a[b].c", xml).unwrap();
    assert_eq!(fragments, sink.fragments());

    // XPath sugar for the same query:
    let from_xpath = spex::query::xpath::parse_xpath("//a[b]/c").unwrap();
    assert_eq!(from_xpath, query);
    println!("\nXPath //a[b]/c parses to the same network. All good.");
}
