//! serve_client: drive one session against a running `spex serve`.
//!
//! ```sh
//! # terminal 1
//! cargo run --bin spex -- serve --addr 127.0.0.1:7878
//! # terminal 2
//! cargo run --example serve_client -- 127.0.0.1:7878 'q=_*.a[b].c'
//! cargo run --example serve_client -- 127.0.0.1:7878 'q=r.x' --xml doc.xml
//! cargo run --example serve_client -- 127.0.0.1:7878 --stats
//! cargo run --example serve_client -- 127.0.0.1:7878 --trace
//! cargo run --example serve_client -- 127.0.0.1:7878 --shutdown
//! ```
//!
//! Registers every `NAME=EXPR` argument, streams one document (a built-in
//! demo document unless `--xml FILE` names one), and prints what comes
//! back: one `NAME\tFRAGMENT` line per result, faults and errors verbatim,
//! and the session statistics. Exits non-zero if the session errored.

use spex_serve::Client;
use std::io::Write;

const DEMO_XML: &str = "<a><a><b/><c>paper fig. 1</c></a><b/><c>selected</c></a>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: serve_client ADDR [NAME=EXPR]... [--xml FILE] [--stats] [--trace] [--shutdown]"
        );
        std::process::exit(1);
    };
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("serve_client: connect {addr}: {e}");
        std::process::exit(3);
    });
    client.set_max_frame(64 * 1024 * 1024);

    if args.iter().any(|a| a == "--shutdown") {
        client.request_shutdown().expect("send shutdown");
        println!("shutdown requested");
        return;
    }
    if args.iter().any(|a| a == "--stats") {
        client.request_stats().expect("send stats request");
        let frame = client.next_frame().expect("read").expect("stats frame");
        println!("{}", String::from_utf8_lossy(&frame.payload));
        return;
    }
    if args.iter().any(|a| a == "--trace") {
        client.request_trace().expect("send trace request");
        let frame = client.next_frame().expect("read").expect("trace frame");
        println!("{}", String::from_utf8_lossy(&frame.payload));
        return;
    }

    let queries: Vec<(&str, &str)> = args[1..].iter().filter_map(|a| a.split_once('=')).collect();
    if queries.is_empty() {
        eprintln!("serve_client: no NAME=EXPR queries given");
        std::process::exit(1);
    }
    let xml = match args.iter().position(|a| a == "--xml") {
        Some(i) => std::fs::read(&args[i + 1]).expect("read --xml file"),
        None => DEMO_XML.as_bytes().to_vec(),
    };

    let transcript = client.run_session(&queries, &xml).unwrap_or_else(|e| {
        eprintln!("serve_client: session: {e}");
        std::process::exit(3);
    });
    if transcript.busy {
        eprintln!("serve_client: server BUSY (admission queue full)");
        std::process::exit(4);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (name, fragment) in &transcript.results {
        write!(out, "{name}\t").unwrap();
        out.write_all(fragment).unwrap();
    }
    for fault in &transcript.faults {
        eprintln!("fault: {fault}");
    }
    for error in &transcript.errors {
        eprintln!("error: {error}");
    }
    if let Some(stats) = &transcript.stats {
        eprintln!("stats: {stats}");
    }
    if !transcript.errors.is_empty() || !transcript.clean_end {
        std::process::exit(1);
    }
}
