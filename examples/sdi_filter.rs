//! Selective dissemination of information (SDI) over an infinite stream —
//! the motivating application of the paper's introduction ("continuous
//! services which select informations from a continuous stream of data,
//! e.g. stock exchange … data").
//!
//! An unbounded stream of stock-quote documents flows through several
//! subscriber queries at once. Each subscriber gets its fragments
//! progressively; memory stays bounded because the stream depth is bounded
//! (the paper's infinite-stream experiment).
//!
//! ```sh
//! cargo run --release --example sdi_filter
//! ```

use spex::core::{CompiledNetwork, Evaluator, FragmentCollector};
use spex::workloads::QuoteStream;
use std::time::Instant;

const DOCUMENTS: u64 = 20_000;

fn main() {
    // Subscriber profiles: rpeq queries with qualifiers. Note the third one
    // — a "future condition": the alert element arrives *after* the symbol
    // it qualifies, so SPEX must buffer exactly until the quote closes.
    let profiles: Vec<(&str, &str)> = vec![
        ("all-symbols", "quotes.quote.symbol"),
        ("alerted-quotes", "quotes.quote[alert]"),
        ("alerted-symbols", "quotes.quote[alert].symbol"),
    ];

    let networks: Vec<(&str, CompiledNetwork)> = profiles
        .iter()
        .map(|(id, q)| (*id, CompiledNetwork::compile(&q.parse().unwrap())))
        .collect();

    let mut sinks: Vec<FragmentCollector> = (0..networks.len())
        .map(|_| FragmentCollector::new())
        .collect();
    let mut evals: Vec<Evaluator> = networks
        .iter()
        .zip(sinks.iter_mut())
        .map(|((_, net), sink)| Evaluator::new(net, sink))
        .collect();

    let quotes_per_doc = 8;
    let start = Instant::now();
    let mut stream = QuoteStream::new(42, quotes_per_doc);
    let mut events = 0u64;
    while stream.documents_emitted() < DOCUMENTS {
        let ev = stream.next().expect("infinite stream");
        events += 1;
        for e in &mut evals {
            e.push(ev.clone());
        }
    }
    // Close out the current document cleanly for reporting.
    let stats: Vec<_> = evals.into_iter().map(|e| e.finish()).collect();
    let elapsed = start.elapsed();

    println!(
        "processed {DOCUMENTS} documents ({events} events) through {} subscriber networks in {:.2?}",
        networks.len(),
        elapsed
    );
    println!(
        "throughput: {:.0} events/s per network",
        events as f64 / elapsed.as_secs_f64()
    );
    println!();
    for ((id, _), (sink, st)) in networks.iter().zip(sinks.iter().zip(&stats)) {
        println!(
            "{id:16} results={:<8} peak buffered events={:<4} max cond stack={} max depth stack={}",
            sink.fragments().len(),
            st.peak_buffered_events,
            st.max_cond_stack,
            st.max_depth_stack
        );
    }
    println!();
    println!("sample matches for `alerted-symbols`:");
    for frag in sinks[2].fragments().iter().take(3) {
        println!("  {frag}");
    }
    // The stability claim: stacks and buffers bounded by the (bounded)
    // stream depth, no matter how many documents have passed.
    for st in &stats {
        assert!(st.max_depth_stack <= 8);
        assert!(st.max_cond_stack <= 8);
    }
    println!("\nbounded-memory invariants held over the whole stream.");
}
