//! Multi-query processing with shared sub-networks — the paper's conclusion
//! names this the "corner stone of efficient XSLT and XQuery
//! implementations": many subscriber queries with common prefixes evaluated
//! by a single SPEX network.
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```

use spex::core::multi::SharedQuerySet;
use spex::core::CompiledNetwork;
use spex::query::Rpeq;
use spex::workloads::QuoteStream;
use spex::xml::XmlEvent;
use std::time::Instant;

fn main() {
    // 60 subscriber profiles over the quote stream, all sharing the
    // `quotes.quote` prefix — and several sharing a qualifier prefix too.
    let mut queries: Vec<(String, Rpeq)> = Vec::new();
    for i in 0..20 {
        queries.push((
            format!("symbol-{i}"),
            "quotes.quote.symbol".parse().unwrap(),
        ));
        queries.push((
            format!("alerted-{i}"),
            "quotes.quote[alert].symbol".parse().unwrap(),
        ));
        queries.push((
            format!("price-{i}"),
            "quotes.quote[alert].price".parse().unwrap(),
        ));
    }

    let set = SharedQuerySet::compile(&queries);
    println!(
        "{} queries → shared network of {} transducers (separate networks: {})",
        queries.len(),
        set.degree(),
        set.unshared_degree()
    );
    println!(
        "sharing factor: {:.1}×",
        set.unshared_degree() as f64 / set.degree() as f64
    );

    let events: Vec<XmlEvent> = QuoteStream::new(9, 10).take(400_000).collect();

    // Shared network: one pass.
    let start = Instant::now();
    let (counts, stats) = set.count_events(events.iter().cloned());
    let shared_time = start.elapsed();

    // Individual networks: one pass each (same events).
    let networks: Vec<CompiledNetwork> = queries
        .iter()
        .map(|(_, q)| CompiledNetwork::compile(q))
        .collect();
    let start = Instant::now();
    let mut individual_counts = Vec::new();
    for net in &networks {
        let mut sink = spex::core::CountingSink::new();
        let mut eval = spex::core::Evaluator::new(net, &mut sink);
        for ev in &events {
            eval.push(ev.clone());
        }
        eval.finish();
        individual_counts.push(sink.results);
    }
    let individual_time = start.elapsed();

    assert_eq!(
        counts, individual_counts,
        "shared and separate evaluation agree"
    );
    println!();
    println!("events processed : {}", events.len());
    println!("shared network   : {shared_time:.2?}");
    println!("separate networks: {individual_time:.2?}");
    println!(
        "speed-up         : {:.1}×",
        individual_time.as_secs_f64() / shared_time.as_secs_f64()
    );
    println!();
    println!(
        "example counts   : symbol={} alerted={} price={}",
        counts[0], counts[1], counts[2]
    );
    println!(
        "max stacks       : d={} c={}",
        stats.max_depth_stack, stats.max_cond_stack
    );
}
