//! # SPEX — streamed and progressive evaluation of regular path expressions
//! with qualifiers against XML streams
//!
//! Umbrella crate re-exporting the whole workspace. See the individual crates
//! for details:
//!
//! * [`xml`] ([`spex_xml`]) — streaming XML parser, writer, tree, statistics,
//! * [`query`] ([`spex_query`]) — the rpeq query language,
//! * [`formula`] ([`spex_formula`]) — condition variables and boolean
//!   condition formulas,
//! * [`core`] ([`spex_core`]) — the SPEX transducer network, compiler and
//!   evaluation engine (the paper's contribution),
//! * [`baseline`] ([`spex_baseline`]) — the in-memory and automaton baselines
//!   the paper compares against,
//! * [`workloads`] ([`spex_workloads`]) — the synthetic datasets and query
//!   classes of the evaluation section.

#![forbid(unsafe_code)]

pub use spex_baseline as baseline;
pub use spex_core as core;
pub use spex_formula as formula;
pub use spex_query as query;
pub use spex_workloads as workloads;
pub use spex_xml as xml;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
