//! Prints (and checks) the dataset characteristics side by side with the
//! paper's published figures. Run with `-- --nocapture` to see the table:
//!
//! ```text
//! MONDIAL elems=24173 depth=5 size=1134333     (paper: 24,184 / 5 / 1.2 MB)
//! WORDNET elems=207067 depth=3 size=9752344    (paper: 207,899 / 3 / 9.5 MB)
//! DMOZ-S x100: elems=3935400 size=290062000    (paper: 3,940,716 / 300 MB)
//! DMOZ-C x200: elems=13230200 size=1119829200  (paper: 13,233,278 / 1 GB)
//! ```

use spex_xml::StreamStats;

#[test]
fn measure_all() {
    let m = spex_workloads::mondial();
    let s = StreamStats::of_events(&m);
    println!(
        "MONDIAL elems={} depth={} size={}",
        s.elements,
        s.max_depth,
        spex_workloads::events_to_xml(&m).len()
    );
    assert!((s.elements as i64 - 24_184).abs() < 3_000);

    let w = spex_workloads::wordnet();
    let s = StreamStats::of_events(&w);
    println!(
        "WORDNET elems={} depth={} size={}",
        s.elements,
        s.max_depth,
        spex_workloads::events_to_xml(&w).len()
    );
    assert!((s.elements as i64 - 207_899).abs() < 25_000);

    let mut s = StreamStats::new();
    let mut b = 0usize;
    for ev in spex_workloads::dmoz_structure(0.01) {
        b += ev.to_string().len();
        s.observe(&ev);
    }
    println!("DMOZ-S x100: elems={} size={}", s.elements * 100, b * 100);
    assert!((s.elements as i64 * 100 - 3_940_716).abs() < 450_000);

    let mut s = StreamStats::new();
    let mut b = 0usize;
    for ev in spex_workloads::dmoz_content(0.005) {
        b += ev.to_string().len();
        s.observe(&ev);
    }
    println!("DMOZ-C x200: elems={} size={}", s.elements * 200, b * 200);
    assert!((s.elements as i64 * 200 - 13_233_278).abs() < 1_500_000);
}
