//! Synthetic WordNet: "a medium sized, flat, and highly repetitive RDF
//! representation" — 9.5 MB, 207,899 elements, maximum depth 3 (Fig. 14,
//! right).
//!
//! The real excerpt is the lexical WordNet database in RDF; the generator
//! reproduces its size, depth, element count and the label vocabulary the
//! paper queries (`Noun`, `wordForm`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_xml::{Attribute, XmlEvent};

const STEMS: &[&str] = &[
    "light", "water", "stone", "cloud", "river", "mount", "field", "storm", "shadow", "ember",
    "frost", "grove", "haven", "spark",
];

const SUFFIXES: &[&str] = &["ness", "ing", "er", "ship", "hood", "let", "age", "dom"];

/// Generation parameters (defaults reproduce the paper's figures).
#[derive(Debug, Clone)]
pub struct WordnetConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of `Noun` entries.
    pub nouns: usize,
}

impl Default for WordnetConfig {
    fn default() -> Self {
        // nouns × (1 + ~3.25 children) + 1 root ≈ 207,899.
        WordnetConfig {
            seed: 0x574f5244,
            nouns: 48_900,
        }
    }
}

/// Generate the default WordNet-like document.
pub fn wordnet() -> Vec<XmlEvent> {
    wordnet_with(&WordnetConfig::default())
}

/// Generate with explicit parameters.
pub fn wordnet_with(cfg: &WordnetConfig) -> Vec<XmlEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.nouns * 10);
    out.push(XmlEvent::StartDocument);
    out.push(XmlEvent::StartElement {
        name: "rdf:RDF".into(),
        attributes: vec![Attribute::new(
            "xmlns:rdf",
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
        )],
    });
    for i in 0..cfg.nouns {
        noun(&mut rng, i, &mut out);
    }
    out.push(XmlEvent::close("rdf:RDF"));
    out.push(XmlEvent::EndDocument);
    out
}

fn word(rng: &mut StdRng) -> String {
    format!(
        "{}{}",
        STEMS[rng.gen_range(0..STEMS.len())],
        SUFFIXES[rng.gen_range(0..SUFFIXES.len())]
    )
}

fn noun(rng: &mut StdRng, i: usize, out: &mut Vec<XmlEvent>) {
    out.push(XmlEvent::StartElement {
        name: "Noun".into(),
        attributes: vec![Attribute::new(
            "rdf:about",
            format!("http://wordnet.org/concept#{i:06}"),
        )],
    });
    // ~8% of nouns have no wordForm — the class-2 qualifier query
    // `_*.Noun[wordForm]` must actually filter.
    let word_forms = if rng.gen_bool(0.08) {
        0
    } else {
        rng.gen_range(1..=3)
    };
    for _ in 0..word_forms {
        text_el(out, "wordForm", word(rng));
    }
    text_el(
        out,
        "glossaryEntry",
        format!("{} {} {}", word(rng), word(rng), word(rng)),
    );
    if rng.gen_bool(0.4) {
        out.push(XmlEvent::StartElement {
            name: "hyponymOf".into(),
            attributes: vec![Attribute::new(
                "rdf:resource",
                format!("http://wordnet.org/concept#{:06}", rng.gen_range(0..i + 1)),
            )],
        });
        out.push(XmlEvent::close("hyponymOf"));
    }
    out.push(XmlEvent::close("Noun"));
}

fn text_el(out: &mut Vec<XmlEvent>, name: &str, text: String) {
    out.push(XmlEvent::open(name));
    out.push(XmlEvent::text(text));
    out.push(XmlEvent::close(name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::StreamStats;

    #[test]
    fn matches_paper_characteristics() {
        let events = wordnet();
        let stats = StreamStats::of_events(&events);
        // Paper: 207,899 elements, depth 3, 9.5 MB. Allow ±12%.
        assert!(
            (183_000..=233_000).contains(&stats.elements),
            "elements = {}",
            stats.elements
        );
        assert_eq!(stats.max_depth, 3);
        let size = crate::xml_size(&events);
        assert!(
            (8_400_000..=10_700_000).contains(&size),
            "size = {size} bytes"
        );
    }

    #[test]
    fn vocabulary_covers_paper_queries() {
        let stats = StreamStats::of_events(&wordnet_with(&WordnetConfig {
            seed: 1,
            nouns: 500,
        }));
        assert!(stats.labels.contains_key("Noun"));
        assert!(stats.labels.contains_key("wordForm"));
    }

    #[test]
    fn some_nouns_lack_word_forms() {
        let events = wordnet_with(&WordnetConfig {
            seed: 2,
            nouns: 2_000,
        });
        let doc = spex_xml::Document::from_events(events).unwrap();
        let eval = spex_baseline::DomEvaluator::new(&doc);
        let with = eval.evaluate(&"_*.Noun[wordForm]".parse().unwrap()).len();
        let total = eval.evaluate(&"_*.Noun".parse().unwrap()).len();
        assert!(with < total);
        assert!(with > total / 2);
    }

    #[test]
    fn deterministic() {
        let a = wordnet_with(&WordnetConfig {
            seed: 3,
            nouns: 100,
        });
        let b = wordnet_with(&WordnetConfig {
            seed: 3,
            nouns: 100,
        });
        assert_eq!(a, b);
    }
}
