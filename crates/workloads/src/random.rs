//! Random documents and random queries for differential testing.
//!
//! The end-to-end equivalence tests (experiment apparatus, not a paper
//! figure) generate random documents and random rpeq queries here and check
//! that the SPEX engine, the DOM set-semantics oracle, and the tree-NFA
//! evaluator select exactly the same nodes.
//!
//! The generators use a deliberately tiny label alphabet so that random
//! queries actually hit random documents often.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_query::{Label, Rpeq};
use spex_xml::XmlEvent;

/// Document shape parameters.
#[derive(Debug, Clone)]
pub struct DocConfig {
    /// Maximum tree depth (elements).
    pub max_depth: usize,
    /// Maximum children per element.
    pub max_fanout: usize,
    /// Label alphabet.
    pub labels: Vec<String>,
    /// Probability that an element gets a text child.
    pub text_probability: f64,
}

impl Default for DocConfig {
    fn default() -> Self {
        DocConfig {
            max_depth: 5,
            max_fanout: 4,
            labels: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            text_probability: 0.2,
        }
    }
}

/// Generate a random well-formed document event stream.
pub fn random_document(rng: &mut StdRng, cfg: &DocConfig) -> Vec<XmlEvent> {
    let mut out = vec![XmlEvent::StartDocument];
    let root = cfg.labels[rng.gen_range(0..cfg.labels.len())].clone();
    out.push(XmlEvent::open(root.clone()));
    element_children(rng, cfg, 1, &mut out);
    out.push(XmlEvent::close(root));
    out.push(XmlEvent::EndDocument);
    out
}

fn element_children(rng: &mut StdRng, cfg: &DocConfig, depth: usize, out: &mut Vec<XmlEvent>) {
    if depth >= cfg.max_depth {
        return;
    }
    let n = rng.gen_range(0..=cfg.max_fanout);
    for _ in 0..n {
        if rng.gen_bool(cfg.text_probability) {
            out.push(XmlEvent::text(format!("t{}", rng.gen_range(0..100))));
        }
        let label = cfg.labels[rng.gen_range(0..cfg.labels.len())].clone();
        out.push(XmlEvent::open(label.clone()));
        element_children(rng, cfg, depth + 1, out);
        out.push(XmlEvent::close(label));
    }
}

/// Query shape parameters.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Maximum AST depth.
    pub max_depth: usize,
    /// Label alphabet (should overlap the document alphabet).
    pub labels: Vec<String>,
    /// Allow qualifiers.
    pub qualifiers: bool,
    /// Probability of picking the wildcard for a label.
    pub wildcard_probability: f64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            max_depth: 4,
            labels: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            qualifiers: true,
            wildcard_probability: 0.25,
        }
    }
}

/// Generate a random rpeq query.
pub fn random_query(rng: &mut StdRng, cfg: &QueryConfig) -> Rpeq {
    gen_query(rng, cfg, cfg.max_depth)
}

fn gen_label(rng: &mut StdRng, cfg: &QueryConfig) -> Label {
    if rng.gen_bool(cfg.wildcard_probability) {
        Label::Wildcard
    } else {
        Label::Name(cfg.labels[rng.gen_range(0..cfg.labels.len())].clone())
    }
}

fn gen_query(rng: &mut StdRng, cfg: &QueryConfig, depth: usize) -> Rpeq {
    let leaf = depth == 0;
    let choice = if leaf {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..10)
    };
    match choice {
        0 => Rpeq::Step(gen_label(rng, cfg)),
        1 => Rpeq::Plus(gen_label(rng, cfg)),
        2 => Rpeq::Star(gen_label(rng, cfg)),
        3 => Rpeq::Step(gen_label(rng, cfg)), // bias towards plain steps
        4..=6 => Rpeq::Concat(
            Box::new(gen_query(rng, cfg, depth - 1)),
            Box::new(gen_query(rng, cfg, depth - 1)),
        ),
        7 => Rpeq::Union(
            Box::new(gen_query(rng, cfg, depth - 1)),
            Box::new(gen_query(rng, cfg, depth - 1)),
        ),
        8 => Rpeq::Optional(Box::new(gen_query(rng, cfg, depth - 1))),
        _ if cfg.qualifiers => Rpeq::Qualified(
            Box::new(gen_query(rng, cfg, depth - 1)),
            Box::new(gen_query(rng, cfg, depth - 1)),
        ),
        _ => Rpeq::Concat(
            Box::new(gen_query(rng, cfg, depth - 1)),
            Box::new(gen_query(rng, cfg, depth - 1)),
        ),
    }
}

/// A seeded RNG for reproducible test batches.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_well_formed() {
        let mut r = rng(1);
        for _ in 0..50 {
            let events = random_document(&mut r, &DocConfig::default());
            spex_xml::Document::from_events(events).expect("well-formed");
        }
    }

    #[test]
    fn queries_parse_back() {
        let mut r = rng(2);
        for _ in 0..200 {
            let q = random_query(&mut r, &QueryConfig::default());
            let text = q.to_string();
            let reparsed: Rpeq = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(reparsed, q);
        }
    }

    #[test]
    fn determinism() {
        let a = random_document(&mut rng(3), &DocConfig::default());
        let b = random_document(&mut rng(3), &DocConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn qualifier_free_mode() {
        let cfg = QueryConfig {
            qualifiers: false,
            ..QueryConfig::default()
        };
        let mut r = rng(4);
        for _ in 0..100 {
            assert!(!random_query(&mut r, &cfg).has_qualifiers());
        }
    }
}
