//! Unbounded streams of bounded depth.
//!
//! The paper reports that "the prototype was tested also against
//! application-generated infinite streams and proved stable in cases where
//! the depth of the tree conveyed in the stream is bounded" (§I), and its
//! introduction motivates SPEX with continuous services such as "stock
//! exchange or meteorology data". [`QuoteStream`] is that workload: an
//! endless sequence of small stock-quote documents, each a complete
//! `<$>…</$>` message sequence, generated with constant memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_xml::{Attribute, XmlEvent};
use std::collections::VecDeque;

const SYMBOLS: &[&str] = &[
    "ACME", "GLOBEX", "INITECH", "HOOLI", "STARK", "WAYNE", "UMBRELLA",
];

/// An infinite iterator of stock-quote documents. Each document has the
/// shape
///
/// ```text
/// <quotes seq="…">
///   <quote> <symbol>ACME</symbol> <price>101.25</price> <volume>…</volume> </quote>
///   …optionally <alert reason="…"/> inside a quote…
/// </quotes>
/// ```
///
/// bounded at depth 3, so every SPEX stack stays bounded no matter how long
/// the stream runs (experiment E11).
pub struct QuoteStream {
    rng: StdRng,
    seq: u64,
    queue: VecDeque<XmlEvent>,
    quotes_per_doc: usize,
}

impl QuoteStream {
    /// A deterministic stream with `quotes_per_doc` quotes per document.
    pub fn new(seed: u64, quotes_per_doc: usize) -> Self {
        QuoteStream {
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            queue: VecDeque::new(),
            quotes_per_doc: quotes_per_doc.max(1),
        }
    }

    fn refill(&mut self) {
        let q = &mut self.queue;
        q.push_back(XmlEvent::StartDocument);
        q.push_back(XmlEvent::StartElement {
            name: "quotes".into(),
            attributes: vec![Attribute::new("seq", self.seq.to_string())],
        });
        self.seq += 1;
        for _ in 0..self.quotes_per_doc {
            q.push_back(XmlEvent::open("quote"));
            let sym = SYMBOLS[self.rng.gen_range(0..SYMBOLS.len())];
            q.push_back(XmlEvent::open("symbol"));
            q.push_back(XmlEvent::text(sym));
            q.push_back(XmlEvent::close("symbol"));
            q.push_back(XmlEvent::open("price"));
            q.push_back(XmlEvent::text(format!(
                "{:.2}",
                self.rng.gen_range(1.0..500.0)
            )));
            q.push_back(XmlEvent::close("price"));
            q.push_back(XmlEvent::open("volume"));
            q.push_back(XmlEvent::text(
                self.rng.gen_range(100..1_000_000i32).to_string(),
            ));
            q.push_back(XmlEvent::close("volume"));
            if self.rng.gen_bool(0.05) {
                q.push_back(XmlEvent::StartElement {
                    name: "alert".into(),
                    attributes: vec![Attribute::new(
                        "reason",
                        if self.rng.gen_bool(0.5) {
                            "spike"
                        } else {
                            "halt"
                        },
                    )],
                });
                q.push_back(XmlEvent::close("alert"));
            }
            q.push_back(XmlEvent::close("quote"));
        }
        q.push_back(XmlEvent::close("quotes"));
        q.push_back(XmlEvent::EndDocument);
    }

    /// How many complete documents have been started so far.
    pub fn documents_emitted(&self) -> u64 {
        self.seq
    }
}

impl Iterator for QuoteStream {
    type Item = XmlEvent;

    fn next(&mut self) -> Option<XmlEvent> {
        if self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_depth_forever() {
        let mut depth = 0usize;
        let mut max = 0usize;
        for ev in QuoteStream::new(1, 5).take(100_000) {
            if ev.opens() {
                depth += 1;
                max = max.max(depth);
            } else if ev.closes() {
                depth -= 1;
            }
        }
        assert!(max <= 4); // $, quotes, quote, symbol/alert
    }

    #[test]
    fn documents_are_complete_and_well_formed() {
        let mut stream = QuoteStream::new(2, 3);
        for _ in 0..10 {
            // Collect exactly one document.
            let mut events = Vec::new();
            loop {
                let ev = stream.next().unwrap();
                let done = matches!(ev, XmlEvent::EndDocument);
                events.push(ev);
                if done {
                    break;
                }
            }
            spex_xml::Document::from_events(events).expect("well-formed document");
        }
        assert_eq!(stream.documents_emitted(), 10);
    }

    #[test]
    fn constant_memory() {
        let mut s = QuoteStream::new(3, 100);
        let mut max_queue = 0;
        for _ in 0..50_000 {
            s.next();
            max_queue = max_queue.max(s.queue.len());
        }
        // One document's worth of events at most.
        assert!(max_queue < 100 * 12 + 16);
    }

    #[test]
    fn spex_filters_the_infinite_stream_progressively() {
        // The SDI scenario: alerts are selected as they pass; memory stays
        // bounded over many documents.
        let net =
            spex_core::CompiledNetwork::compile(&"quotes.quote[alert].symbol".parse().unwrap());
        let mut sink = spex_core::CountingSink::new();
        let mut eval = spex_core::Evaluator::new(&net, &mut sink);
        for ev in QuoteStream::new(4, 10).take(120_000) {
            eval.push(ev);
        }
        let stats = eval.stats().clone();
        assert!(
            stats.max_cond_stack <= 8,
            "cond stack {}",
            stats.max_cond_stack
        );
        assert!(
            stats.max_depth_stack <= 8,
            "depth stack {}",
            stats.max_depth_stack
        );
        assert!(sink.results > 0, "some alerts should have matched");
    }
}
