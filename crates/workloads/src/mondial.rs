//! Synthetic MONDIAL: "a small and highly structured XML document" —
//! 1.2 MB, 24,184 elements, maximum depth 5 (Fig. 14, left).
//!
//! The real MONDIAL is a geographic database (countries, provinces, cities,
//! religions, …); the generator reproduces its size, depth, element count
//! and the label vocabulary used by the paper's queries
//! (`country`, `province`, `city`, `name`, `religions`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_xml::{Attribute, XmlEvent};

const COUNTRY_NAMES: &[&str] = &[
    "Aldoria",
    "Belvania",
    "Corinthia",
    "Drovia",
    "Elandia",
    "Frestonia",
    "Galdor",
    "Hestia",
    "Ilvania",
    "Jorvik",
    "Kaldonia",
    "Lormark",
    "Meridia",
    "Norvania",
];

const RELIGIONS: &[&str] = &[
    "Animist",
    "Buddhist",
    "Catholic",
    "Orthodox",
    "Protestant",
    "Sunni",
];

/// Generation parameters (defaults reproduce the paper's figures).
#[derive(Debug, Clone)]
pub struct MondialConfig {
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Number of `country` elements.
    pub countries: usize,
}

impl Default for MondialConfig {
    fn default() -> Self {
        // ~54.1 elements per country × 447 countries ≈ 24,184.
        MondialConfig {
            seed: 0x4d4f4e44,
            countries: 447,
        }
    }
}

/// Generate the default MONDIAL-like document.
pub fn mondial() -> Vec<XmlEvent> {
    mondial_with(&MondialConfig::default())
}

/// Generate with explicit parameters.
pub fn mondial_with(cfg: &MondialConfig) -> Vec<XmlEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.countries * 160);
    out.push(XmlEvent::StartDocument);
    out.push(XmlEvent::open("mondial"));
    for i in 0..cfg.countries {
        country(&mut rng, i, &mut out);
    }
    out.push(XmlEvent::close("mondial"));
    out.push(XmlEvent::EndDocument);
    out
}

fn name_of(rng: &mut StdRng, i: usize) -> String {
    format!(
        "{}{}",
        COUNTRY_NAMES[rng.gen_range(0..COUNTRY_NAMES.len())],
        i
    )
}

fn country(rng: &mut StdRng, i: usize, out: &mut Vec<XmlEvent>) {
    out.push(XmlEvent::StartElement {
        name: "country".into(),
        attributes: vec![
            Attribute::new("car_code", format!("C{i:03}")),
            Attribute::new("area", rng.gen_range(1000..2_000_000i32).to_string()),
            Attribute::new("capital", format!("cty-{i}-0-0")),
            Attribute::new("memberships", format!("org-un org-wto org-icao-{}", i % 7)),
        ],
    });
    text_el(out, "name", name_of(rng, i));
    text_el(
        out,
        "population",
        rng.gen_range(10_000..90_000_000i32).to_string(),
    );
    text_el(
        out,
        "government",
        format!(
            "{} republic with {} chambers",
            name_of(rng, i),
            rng.gen_range(1..=2)
        ),
    );
    text_el(
        out,
        "indep_date",
        format!(
            "19{:02}-{:02}-{:02}",
            rng.gen_range(10..99),
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        ),
    );
    // ~15% of countries have no province (exercises "future conditions"
    // negatively for the class-2/4 qualifier queries).
    let provinces = if rng.gen_bool(0.15) {
        0
    } else {
        rng.gen_range(4..=10)
    };
    for p in 0..provinces {
        province(rng, i, p, out);
    }
    for _ in 0..rng.gen_range(1..=3) {
        out.push(XmlEvent::StartElement {
            name: "religions".into(),
            attributes: vec![Attribute::new(
                "percentage",
                format!("{:.1}", rng.gen_range(0.5..95.0)),
            )],
        });
        out.push(XmlEvent::text(RELIGIONS[rng.gen_range(0..RELIGIONS.len())]));
        out.push(XmlEvent::close("religions"));
    }
    out.push(XmlEvent::close("country"));
}

fn province(rng: &mut StdRng, country: usize, p: usize, out: &mut Vec<XmlEvent>) {
    out.push(XmlEvent::StartElement {
        name: "province".into(),
        attributes: vec![
            Attribute::new("id", format!("prov-{country}-{p}")),
            Attribute::new("country", format!("C{country:03}")),
            Attribute::new("capital", format!("cty-{country}-{p}-0")),
        ],
    });
    text_el(out, "name", name_of(rng, p));
    for c in 0..rng.gen_range(1..=3) {
        out.push(XmlEvent::StartElement {
            name: "city".into(),
            attributes: vec![
                Attribute::new("id", format!("cty-{country}-{p}-{c}")),
                Attribute::new("province", format!("prov-{country}-{p}")),
                Attribute::new("country", format!("C{country:03}")),
            ],
        });
        text_el(
            out,
            "name",
            format!("Santa {} de {}", name_of(rng, p), name_of(rng, c)),
        );
        text_el(
            out,
            "population",
            rng.gen_range(500..9_000_000i32).to_string(),
        );
        out.push(XmlEvent::close("city"));
    }
    out.push(XmlEvent::close("province"));
}

fn text_el(out: &mut Vec<XmlEvent>, name: &str, text: String) {
    out.push(XmlEvent::open(name));
    out.push(XmlEvent::text(text));
    out.push(XmlEvent::close(name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::StreamStats;

    #[test]
    fn matches_paper_characteristics() {
        let events = mondial();
        let stats = StreamStats::of_events(&events);
        // Paper: 24,184 elements, depth 5, 1.2 MB. Allow ±12%.
        assert!(
            (21_000..=27_500).contains(&stats.elements),
            "elements = {}",
            stats.elements
        );
        assert_eq!(stats.max_depth, 5);
        let size = crate::xml_size(&events);
        assert!(
            (1_050_000..=1_400_000).contains(&size),
            "size = {size} bytes"
        );
    }

    #[test]
    fn vocabulary_covers_paper_queries() {
        let stats = StreamStats::of_events(&mondial());
        for label in ["country", "province", "city", "name", "religions"] {
            assert!(stats.labels.contains_key(label), "missing {label}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(mondial(), mondial());
        let other = mondial_with(&MondialConfig {
            seed: 7,
            countries: 10,
        });
        assert_ne!(mondial(), other);
    }

    #[test]
    fn well_formed() {
        let events = mondial_with(&MondialConfig {
            seed: 1,
            countries: 20,
        });
        let doc = spex_xml::Document::from_events(events).unwrap();
        assert!(doc.element_count() > 100);
    }

    #[test]
    fn some_countries_lack_provinces() {
        // Needed so the class-2/4 qualifier queries actually filter.
        let events = mondial();
        let doc = spex_xml::Document::from_events(events).unwrap();
        let eval = spex_baseline::DomEvaluator::new(&doc);
        let with = eval
            .evaluate(&"_*.country[province]".parse().unwrap())
            .len();
        let total = eval.evaluate(&"_*.country".parse().unwrap()).len();
        assert!(with < total, "{with} vs {total}");
        assert!(with > 0);
    }
}
