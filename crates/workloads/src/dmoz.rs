//! Synthetic DMOZ (Open Directory Project): "large, flat RDF documents" —
//! structure: 300 MB / 3,940,716 elements; content: 1 GB / 13,233,278
//! elements; both of maximum depth 3 (Fig. 15).
//!
//! At these sizes the documents must not be materialized — neither by the
//! consumer (that is SPEX's whole point) nor by the generator. [`DmozStream`]
//! is therefore a *streaming* event iterator: events are produced on demand
//! with constant memory, deterministic in the seed.
//!
//! The benchmarks default to 1/10 scale (`scale = 0.1`) and report the scale
//! factor; set the environment variable `SPEX_BENCH_FULL=1` to run the
//! paper's full sizes (see the spex-bench crate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_xml::{Attribute, XmlEvent};
use std::collections::VecDeque;

/// Which DMOZ dump to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmozKind {
    /// `structure.rdf`: 300 MB, 3,940,716 elements at full scale.
    Structure,
    /// `content.rdf`: 1 GB, 13,233,278 elements at full scale.
    Content,
}

/// Full-scale topic counts, tuned so that element counts and serialized
/// sizes land on the paper's figures.
const STRUCTURE_TOPICS_FULL: usize = 720_000;
const CONTENT_TOPICS_FULL: usize = 1_061_000;

/// A DMOZ-like document at `scale` (1.0 = the paper's size), as a streaming
/// event iterator.
pub fn dmoz_structure(scale: f64) -> DmozStream {
    DmozStream::new(DmozKind::Structure, scale, 0x444d4f5a)
}

/// The content dump at `scale`.
pub fn dmoz_content(scale: f64) -> DmozStream {
    DmozStream::new(DmozKind::Content, scale, 0x434f4e54)
}

/// Streaming generator. See the [module documentation](self).
pub struct DmozStream {
    kind: DmozKind,
    rng: StdRng,
    topics_left: usize,
    queue: VecDeque<XmlEvent>,
    state: State,
}

#[derive(Debug, PartialEq, Eq)]
enum State {
    Start,
    Body,
    Done,
}

impl DmozStream {
    /// Create a stream of `kind` at `scale` with an explicit seed.
    pub fn new(kind: DmozKind, scale: f64, seed: u64) -> Self {
        let full = match kind {
            DmozKind::Structure => STRUCTURE_TOPICS_FULL,
            DmozKind::Content => CONTENT_TOPICS_FULL,
        };
        let topics = ((full as f64) * scale).round().max(1.0) as usize;
        DmozStream {
            kind,
            rng: StdRng::seed_from_u64(seed),
            topics_left: topics,
            queue: VecDeque::new(),
            state: State::Start,
        }
    }

    /// Number of topics this stream will produce.
    pub fn topics(&self) -> usize {
        self.topics_left
    }

    fn refill(&mut self) {
        match self.state {
            State::Start => {
                self.queue.push_back(XmlEvent::StartDocument);
                self.queue.push_back(XmlEvent::StartElement {
                    name: "RDF".into(),
                    attributes: vec![
                        Attribute::new("xmlns:r", "http://www.w3.org/TR/RDF/"),
                        Attribute::new("xmlns:d", "http://purl.org/dc/elements/1.0/"),
                    ],
                });
                self.state = State::Body;
            }
            State::Body => {
                if self.topics_left == 0 {
                    self.queue.push_back(XmlEvent::close("RDF"));
                    self.queue.push_back(XmlEvent::EndDocument);
                    self.state = State::Done;
                    return;
                }
                self.topics_left -= 1;
                let id = self.topics_left;
                match self.kind {
                    DmozKind::Structure => self.push_structure_topic(id),
                    DmozKind::Content => self.push_content_entry(id),
                }
            }
            State::Done => {}
        }
    }

    fn push_structure_topic(&mut self, id: usize) {
        let q = &mut self.queue;
        let rng = &mut self.rng;
        q.push_back(XmlEvent::StartElement {
            name: "Topic".into(),
            attributes: vec![
                Attribute::new(
                    "r:id",
                    format!(
                        "Top/World/Category_{}/Subcategory_{}/Entry{id}",
                        TOPICS[id % TOPICS.len()],
                        id % 997,
                    ),
                ),
                Attribute::new(
                    "lastUpdate",
                    format!("2002-{:02}-{:02}T12:00:00", id % 12 + 1, id % 28 + 1),
                ),
            ],
        });
        text_el(q, "catid", id.to_string());
        text_el(
            q,
            "Title",
            format!(
                "Category {} number {id}, a curated directory section about {}",
                TOPICS[id % TOPICS.len()],
                TOPICS[(id + 5) % TOPICS.len()],
            ),
        );
        // ~30% of topics have an editor; ~55% of those announce a newsgroup.
        if rng.gen_bool(0.30) {
            text_el(
                q,
                "editor",
                format!("directory-editor-{}", rng.gen_range(0..5_000)),
            );
            if rng.gen_bool(0.55) {
                text_el(
                    q,
                    "newsGroup",
                    format!("news:alt.{}.{id}", TOPICS[id % TOPICS.len()]),
                );
            }
        }
        for _ in 0..rng.gen_range(1..=3) {
            q.push_back(XmlEvent::StartElement {
                name: "narrow".into(),
                attributes: vec![Attribute::new(
                    "r:resource",
                    format!(
                        "Top/World/Category_{}/Subcategory_{}/Entry{}",
                        TOPICS[id % TOPICS.len()],
                        id % 997,
                        rng.gen_range(0..100_000),
                    ),
                )],
            });
            q.push_back(XmlEvent::close("narrow"));
        }
        q.push_back(XmlEvent::close("Topic"));
    }

    fn push_content_entry(&mut self, id: usize) {
        let q = &mut self.queue;
        let rng = &mut self.rng;
        q.push_back(XmlEvent::StartElement {
            name: "Topic".into(),
            attributes: vec![Attribute::new(
                "r:id",
                format!("Top/Cat{}/Sub{id}", id % 97),
            )],
        });
        text_el(q, "catid", id.to_string());
        text_el(
            q,
            "Title",
            format!("Category {} number {id}", TOPICS[id % TOPICS.len()]),
        );
        if rng.gen_bool(0.30) {
            text_el(q, "editor", format!("editor{}", rng.gen_range(0..5_000)));
            if rng.gen_bool(0.55) {
                text_el(
                    q,
                    "newsGroup",
                    format!("news:alt.{}.{id}", TOPICS[id % TOPICS.len()]),
                );
            }
        }
        q.push_back(XmlEvent::close("Topic"));
        // Content interleaves ExternalPage entries with description text —
        // this is what pushes the dump to 1 GB.
        for _ in 0..rng.gen_range(2..=4) {
            q.push_back(XmlEvent::StartElement {
                name: "ExternalPage".into(),
                attributes: vec![Attribute::new(
                    "about",
                    format!(
                        "http://example.org/{}/{}",
                        TOPICS[id % TOPICS.len()],
                        rng.gen::<u32>()
                    ),
                )],
            });
            text_el(
                q,
                "Title",
                format!("{} site {}", TOPICS[id % TOPICS.len()], rng.gen::<u16>()),
            );
            text_el(
                q,
                "Description",
                format!(
                    "A comprehensive page about {} with further details, references and resources on {} and {} for visitors interested in {}. Updated regularly by volunteers.",
                    TOPICS[id % TOPICS.len()],
                    TOPICS[(id + 3) % TOPICS.len()],
                    TOPICS[(id + 7) % TOPICS.len()],
                    TOPICS[(id + 11) % TOPICS.len()],
                ),
            );
            q.push_back(XmlEvent::close("ExternalPage"));
        }
    }
}

const TOPICS: &[&str] = &[
    "astronomy",
    "chess",
    "cooking",
    "cycling",
    "gardening",
    "history",
    "linguistics",
    "music",
    "photography",
    "physics",
    "poetry",
    "robotics",
    "sailing",
    "typography",
];

fn text_el(q: &mut VecDeque<XmlEvent>, name: &str, text: String) {
    q.push_back(XmlEvent::open(name));
    q.push_back(XmlEvent::Text(text));
    q.push_back(XmlEvent::close(name));
}

impl Iterator for DmozStream {
    type Item = XmlEvent;

    fn next(&mut self) -> Option<XmlEvent> {
        while self.queue.is_empty() {
            if self.state == State::Done {
                return None;
            }
            self.refill();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::StreamStats;

    /// Characteristics at 1/100 scale extrapolate to the paper's numbers.
    #[test]
    fn structure_characteristics_extrapolate() {
        let mut stats = StreamStats::new();
        let mut bytes = 0usize;
        for ev in dmoz_structure(0.01) {
            bytes += ev.to_string().len();
            stats.observe(&ev);
        }
        assert_eq!(stats.max_depth, 3);
        let full_elements = stats.elements * 100;
        assert!(
            (3_500_000..=4_400_000).contains(&full_elements),
            "extrapolated elements = {full_elements}"
        );
        let full_bytes = bytes * 100;
        assert!(
            (260_000_000..=340_000_000).contains(&full_bytes),
            "extrapolated size = {full_bytes}"
        );
    }

    #[test]
    fn content_characteristics_extrapolate() {
        let mut stats = StreamStats::new();
        let mut bytes = 0usize;
        for ev in dmoz_content(0.005) {
            bytes += ev.to_string().len();
            stats.observe(&ev);
        }
        assert_eq!(stats.max_depth, 3);
        let full_elements = stats.elements * 200;
        assert!(
            (11_800_000..=14_700_000).contains(&full_elements),
            "extrapolated elements = {full_elements}"
        );
        let full_bytes = bytes * 200;
        assert!(
            (880_000_000..=1_180_000_000).contains(&full_bytes),
            "extrapolated size = {full_bytes}"
        );
    }

    #[test]
    fn stream_is_well_formed() {
        let events: Vec<XmlEvent> = dmoz_structure(0.0005).collect();
        let doc = spex_xml::Document::from_events(events).unwrap();
        assert!(doc.element_count() > 1000);
    }

    #[test]
    fn constant_memory_generation() {
        // The iterator never holds more than one topic's worth of events.
        let mut s = dmoz_structure(0.001);
        let mut max_queue = 0;
        while s.next().is_some() {
            max_queue = max_queue.max(s.queue.len());
        }
        assert!(max_queue < 64, "queue grew to {max_queue}");
    }

    #[test]
    fn editor_selectivity_filters() {
        let events: Vec<XmlEvent> = dmoz_structure(0.001).collect();
        let doc = spex_xml::Document::from_events(events).unwrap();
        let eval = spex_baseline::DomEvaluator::new(&doc);
        let with = eval.evaluate(&"_*.Topic[editor]".parse().unwrap()).len();
        let total = eval.evaluate(&"_*.Topic".parse().unwrap()).len();
        assert!(with > 0 && with < total / 2, "{with} of {total}");
    }

    #[test]
    fn deterministic() {
        let a: Vec<XmlEvent> = dmoz_structure(0.0002).collect();
        let b: Vec<XmlEvent> = dmoz_structure(0.0002).collect();
        assert_eq!(a, b);
    }
}
