//! # spex-workloads — the datasets and query classes of the evaluation
//!
//! The paper's experiments (§VI) run over three databases that are not
//! shipped with this repository (MONDIAL, a WordNet RDF excerpt, and the
//! DMOZ Open Directory dumps). Per the substitution policy of DESIGN.md §5,
//! this crate provides deterministic synthetic generators tuned to the
//! *published characteristics* of each dataset — size, element count,
//! maximum depth, and label vocabulary — which are the only parameters the
//! compared algorithms are sensitive to:
//!
//! | dataset | size | elements | max depth | shape |
//! |---|---|---|---|---|
//! | [`mondial()`] | 1.2 MB | 24,184 | 5 | small, highly structured |
//! | [`wordnet()`] | 9.5 MB | 207,899 | 3 | medium, flat, repetitive RDF |
//! | [`dmoz`] structure | 300 MB | 3,940,716 | 3 | large, flat RDF |
//! | [`dmoz`] content | 1 GB | 13,233,278 | 3 | very large, flat RDF |
//!
//! [`queries`] lists the four query classes of §VI for each dataset,
//! [`random`] generates random documents/queries for differential testing,
//! and [`infinite`] produces unbounded bounded-depth streams (the paper's
//! "application-generated infinite streams").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dmoz;
pub mod infinite;
pub mod mondial;
pub mod queries;
pub mod random;
pub mod wordnet;

pub use dmoz::{dmoz_content, dmoz_structure, DmozStream};
pub use infinite::QuoteStream;
pub use mondial::mondial;
pub use queries::{queries_for, Dataset, QueryClass};
pub use wordnet::wordnet;

use spex_xml::XmlEvent;

/// Serialize a full event stream to XML text (convenience for feeding
/// baselines that want bytes, and for measuring dataset sizes).
pub fn events_to_xml(events: &[XmlEvent]) -> String {
    spex_xml::writer::events_to_string(
        events
            .iter()
            .filter(|e| !matches!(e, XmlEvent::StartDocument | XmlEvent::EndDocument)),
    )
}

/// The serialized size, in bytes, of an event stream.
pub fn xml_size(events: &[XmlEvent]) -> usize {
    events_to_xml(events).len()
}
