//! The four query classes of the paper's evaluation (§VI).
//!
//! 1. **Simple structural** queries that do not create nested results,
//!    e.g. `_*.province.city`;
//! 2. queries with structural qualifiers creating **"future conditions"** —
//!    the qualifier is (typically) satisfied *after* the candidate answers
//!    are encountered, so candidates must be buffered,
//!    e.g. `_*.country[province].name` (`name` precedes the provinces);
//! 3. structural queries creating **nested results**, i.e. `_*._`;
//! 4. queries with structural qualifiers creating **"past conditions"** —
//!    the qualifier is (typically) satisfied *before* the candidates,
//!    e.g. `_*.country[province].religions` (religions come last).

use spex_query::Rpeq;

/// The datasets of §VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// MONDIAL (small, structured).
    Mondial,
    /// WordNet excerpt (medium, flat).
    Wordnet,
    /// DMOZ structure (large, flat).
    DmozStructure,
    /// DMOZ content (very large, flat).
    DmozContent,
}

impl Dataset {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Mondial => "Mondial",
            Dataset::Wordnet => "Wordnet",
            Dataset::DmozStructure => "DMOZ structure",
            Dataset::DmozContent => "DMOZ content",
        }
    }
}

/// One benchmark query: its class (1–4) and text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryClass {
    /// Query class 1–4 (see the module docs).
    pub class: u8,
    /// The query in rpeq text syntax (exactly the paper's, §VI).
    pub text: &'static str,
}

impl QueryClass {
    /// Parse the query.
    pub fn rpeq(&self) -> Rpeq {
        self.text.parse().expect("paper queries are valid rpeq")
    }
}

/// The paper's queries for `dataset`, in class order.
///
/// MONDIAL and DMOZ run all four classes; for WordNet the paper's Fig. 14
/// shows classes 1–3 (there is no natural past-condition query on the flat
/// WordNet schema — `glossaryEntry` after `wordForm` is the closest and is
/// included as class 4 for completeness of the harness).
pub fn queries_for(dataset: Dataset) -> Vec<QueryClass> {
    match dataset {
        Dataset::Mondial => vec![
            QueryClass {
                class: 1,
                text: "_*.province.city",
            },
            QueryClass {
                class: 2,
                text: "_*.country[province].name",
            },
            QueryClass {
                class: 3,
                text: "_*._",
            },
            QueryClass {
                class: 4,
                text: "_*.country[province].religions",
            },
        ],
        Dataset::Wordnet => vec![
            QueryClass {
                class: 1,
                text: "_*.Noun.wordForm",
            },
            QueryClass {
                class: 2,
                text: "_*.Noun[wordForm]",
            },
            QueryClass {
                class: 3,
                text: "_*._",
            },
            QueryClass {
                class: 4,
                text: "_*.Noun[wordForm].glossaryEntry",
            },
        ],
        Dataset::DmozStructure | Dataset::DmozContent => vec![
            QueryClass {
                class: 1,
                text: "_*.Topic.Title",
            },
            QueryClass {
                class: 2,
                text: "_*.Topic[editor].Title",
            },
            QueryClass {
                class: 3,
                text: "_*._",
            },
            QueryClass {
                class: 4,
                text: "_*.Topic[editor].newsGroup",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_queries_parse() {
        for ds in [
            Dataset::Mondial,
            Dataset::Wordnet,
            Dataset::DmozStructure,
            Dataset::DmozContent,
        ] {
            let qs = queries_for(ds);
            assert_eq!(qs.len(), 4);
            for q in qs {
                let parsed = q.rpeq();
                assert_eq!(parsed.to_string(), q.text);
            }
        }
    }

    #[test]
    fn class_semantics() {
        use spex_query::QueryMetrics;
        for ds in [Dataset::Mondial, Dataset::DmozStructure] {
            let qs = queries_for(ds);
            assert_eq!(QueryMetrics::of(&qs[0].rpeq()).qualifiers, 0);
            assert!(QueryMetrics::of(&qs[1].rpeq()).qualifiers > 0);
            assert_eq!(qs[2].text, "_*._");
            assert!(QueryMetrics::of(&qs[3].rpeq()).qualifiers > 0);
        }
    }

    #[test]
    fn queries_select_nonempty_results_on_their_datasets() {
        let events = crate::mondial::mondial_with(&crate::mondial::MondialConfig {
            seed: 5,
            countries: 30,
        });
        let doc = spex_xml::Document::from_events(events).unwrap();
        let eval = spex_baseline::DomEvaluator::new(&doc);
        for q in queries_for(Dataset::Mondial) {
            assert!(
                !eval.evaluate(&q.rpeq()).is_empty(),
                "class {} query selects nothing",
                q.class
            );
        }
    }
}
