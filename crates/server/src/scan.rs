//! A byte-level lookahead scanner that finds *event horizons* in an XML
//! byte stream: offsets at which the pull parser is guaranteed to have a
//! complete event available.
//!
//! The reactor feeds ingested `DATA` payload bytes through this scanner as
//! they arrive; a session's state machine then drives the blocking pull
//! parser only while `reader.position() < horizon` (or an event is already
//! queued), so the parser never issues a read that would block mid-event.
//! The horizon is a *scheduling hint*, not a correctness boundary: if the
//! scanner under-reports (it never over-reports — every horizon really is
//! the end of an event-producing construct), the session degrades to the
//! bounded blocking fallback in the eval source, exactly the old
//! thread-per-session behavior.
//!
//! Horizon-bearing construct ends (the parser emits an event at or before
//! each): `>` closing an open/close tag (including `/>`), `-->` ending a
//! comment, `]]>` ending a CDATA section (its own `Text` event — the
//! parser does not merge CDATA into adjacent text), and `?>` ending a
//! processing instruction whose target is not `xml`. Silent constructs
//! (whitespace, the `<?xml … ?>` declaration, `DOCTYPE`) bear no horizon;
//! character data bears none either, because the parser only emits a
//! `Text` event after peeking the `<` that follows it — which is itself
//! the start of the next horizon-bearing construct.
//!
//! The bulk skips (text → next `<`, tag interior → next quote/`>`) run on
//! the same SWAR delimiter primitives ([`spex_xml::scan`]) as the reader's
//! structural fast path, so the reactor's lookahead costs one word-wide
//! scan per chunk rather than one branch per byte.

use spex_xml::scan::{memchr, memchr3};

/// Scanner state across arbitrarily chunked input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Outside markup: character data, prolog/epilog whitespace.
    Text,
    /// Consumed `<`.
    Lt,
    /// Consumed `<!`.
    Bang,
    /// Consumed `<!-`.
    BangDash,
    /// Inside `<!-- … -->`; counts the run of `-` immediately behind.
    Comment { dashes: u8 },
    /// Matching the `CDATA[` tail of `<![CDATA[`; counts bytes matched.
    CdataOpen { matched: u8 },
    /// Inside a CDATA section; counts the run of `]` immediately behind.
    Cdata { brackets: u8 },
    /// Collecting a processing-instruction target (first 4 bytes suffice
    /// to recognize `xml` case-insensitively).
    PiTarget { len: u8, xml_so_far: bool },
    /// Inside a PI body; `xml` PIs are the silent declaration.
    PiBody { is_xml: bool, question: bool },
    /// Inside an open or close tag, tracking the active attribute quote
    /// (`>` inside a quoted value does not end the tag).
    Tag { quote: u8 },
    /// Inside `<!DOCTYPE …>` (or any unrecognized `<!…` construct,
    /// conservatively): internal-subset bracket depth, no horizon.
    Doctype { depth: u32 },
}

/// See the [module documentation](self).
#[derive(Debug)]
pub(crate) struct HorizonScanner {
    state: State,
    /// Absolute stream offset of the next byte to scan.
    offset: u64,
    /// Absolute offset just past the last horizon-bearing construct end.
    horizon: u64,
}

impl HorizonScanner {
    /// A scanner at the start of a stream.
    pub(crate) fn new() -> Self {
        HorizonScanner {
            state: State::Text,
            offset: 0,
            horizon: 0,
        }
    }

    /// A scanner resuming at a document-boundary checkpoint: `offset` is
    /// the reader's restored position and `lt_consumed` records whether
    /// the boundary detection already consumed the next root's `<`.
    pub(crate) fn resume(offset: u64, lt_consumed: bool) -> Self {
        HorizonScanner {
            state: if lt_consumed { State::Lt } else { State::Text },
            offset,
            horizon: offset,
        }
    }

    /// Offset just past the most recent guaranteed-complete event
    /// construct; the parser can consume up to here without blocking.
    pub(crate) fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Feed the next chunk of stream bytes (any chunking).
    pub(crate) fn scan(&mut self, bytes: &[u8]) {
        let mut i = 0usize;
        let n = bytes.len();
        while i < n {
            let b = bytes[i];
            match self.state {
                State::Text => {
                    // Skip straight to the next `<`; text bears no horizon.
                    match memchr(b'<', &bytes[i..]) {
                        Some(rel) => {
                            i += rel + 1;
                            self.state = State::Lt;
                        }
                        None => {
                            i = n;
                        }
                    }
                    continue;
                }
                State::Lt => {
                    self.state = match b {
                        b'!' => State::Bang,
                        b'?' => State::PiTarget {
                            len: 0,
                            xml_so_far: true,
                        },
                        _ => State::Tag { quote: 0 },
                    };
                    // `<>` would be a parse error; `Tag` handles the `>`
                    // conservatively as a tag end (the parser errors on
                    // pull either way, and horizons may only be early for
                    // ill-formed input the session is about to reject).
                    if b == b'>' {
                        self.state = State::Text;
                        self.horizon = self.offset + i as u64 + 1;
                    }
                    i += 1;
                }
                State::Bang => {
                    self.state = match b {
                        b'-' => State::BangDash,
                        b'[' => State::CdataOpen { matched: 0 },
                        _ => {
                            if b == b'>' {
                                // `<!>`: parser error; no horizon.
                                State::Text
                            } else {
                                State::Doctype { depth: 0 }
                            }
                        }
                    };
                    i += 1;
                }
                State::BangDash => {
                    self.state = if b == b'-' {
                        State::Comment { dashes: 0 }
                    } else if b == b'>' {
                        State::Text
                    } else {
                        State::Doctype { depth: 0 }
                    };
                    i += 1;
                }
                State::Comment { dashes } => {
                    match b {
                        b'-' => {
                            self.state = State::Comment {
                                dashes: dashes.saturating_add(1),
                            };
                        }
                        b'>' if dashes >= 2 => {
                            self.state = State::Text;
                            self.horizon = self.offset + i as u64 + 1;
                        }
                        _ => {
                            self.state = State::Comment { dashes: 0 };
                        }
                    }
                    i += 1;
                }
                State::CdataOpen { matched } => {
                    const TAIL: &[u8; 6] = b"CDATA[";
                    if b == TAIL[matched as usize] {
                        if matched as usize + 1 == TAIL.len() {
                            self.state = State::Cdata { brackets: 0 };
                        } else {
                            self.state = State::CdataOpen {
                                matched: matched + 1,
                            };
                        }
                    } else {
                        // `<![…` that is not CDATA: the parser rejects it;
                        // treat like a bracketed doctype-ish construct so
                        // the scanner terminates without minting horizons.
                        self.state = State::Doctype { depth: 1 };
                        continue;
                    }
                    i += 1;
                }
                State::Cdata { brackets } => {
                    match b {
                        b']' => {
                            self.state = State::Cdata {
                                brackets: brackets.saturating_add(1),
                            };
                        }
                        b'>' if brackets >= 2 => {
                            self.state = State::Text;
                            self.horizon = self.offset + i as u64 + 1;
                        }
                        _ => {
                            self.state = State::Cdata { brackets: 0 };
                        }
                    }
                    i += 1;
                }
                State::PiTarget { len, xml_so_far } => {
                    let is_sep = b.is_ascii_whitespace() || b == b'?';
                    if is_sep {
                        let is_xml = xml_so_far && len == 3;
                        self.state = State::PiBody {
                            is_xml,
                            question: false,
                        };
                        // Reprocess the separator in the body state so a
                        // target-adjacent `?>` still ends the PI.
                        continue;
                    }
                    let still_xml = xml_so_far
                        && (len as usize) < 3
                        && b.eq_ignore_ascii_case(&b"xml"[len as usize]);
                    self.state = State::PiTarget {
                        len: len.saturating_add(1),
                        xml_so_far: still_xml,
                    };
                    i += 1;
                }
                State::PiBody { is_xml, question } => {
                    match b {
                        b'?' => {
                            self.state = State::PiBody {
                                is_xml,
                                question: true,
                            };
                        }
                        b'>' if question => {
                            self.state = State::Text;
                            if !is_xml {
                                self.horizon = self.offset + i as u64 + 1;
                            }
                        }
                        _ => {
                            self.state = State::PiBody {
                                is_xml,
                                question: false,
                            };
                        }
                    }
                    i += 1;
                }
                State::Tag { quote } => {
                    if quote != 0 {
                        // Skip to the closing quote in one bulk scan.
                        match memchr(quote, &bytes[i..]) {
                            Some(rel) => {
                                i += rel + 1;
                                self.state = State::Tag { quote: 0 };
                            }
                            None => i = n,
                        }
                    } else {
                        // Skip to the next quote open or tag end in bulk.
                        match memchr3(b'"', b'\'', b'>', &bytes[i..]) {
                            Some(rel) => {
                                let hit = bytes[i + rel];
                                i += rel + 1;
                                if hit == b'>' {
                                    self.state = State::Text;
                                    self.horizon = self.offset + i as u64;
                                } else {
                                    self.state = State::Tag { quote: hit };
                                }
                            }
                            None => i = n,
                        }
                    }
                    continue;
                }
                State::Doctype { depth } => {
                    match b {
                        b'[' => {
                            self.state = State::Doctype {
                                depth: depth.saturating_add(1),
                            };
                        }
                        b']' => {
                            self.state = State::Doctype {
                                depth: depth.saturating_sub(1),
                            };
                        }
                        b'>' if depth == 0 => {
                            // DOCTYPE is silent: no event, no horizon.
                            self.state = State::Text;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        self.offset += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon_of(input: &[u8]) -> u64 {
        let mut s = HorizonScanner::new();
        s.scan(input);
        s.horizon()
    }

    /// Byte-at-a-time chunking reaches the same horizon.
    fn horizon_bytewise(input: &[u8]) -> u64 {
        let mut s = HorizonScanner::new();
        for b in input {
            s.scan(std::slice::from_ref(b));
        }
        s.horizon()
    }

    #[test]
    fn tag_ends_bear_horizons() {
        let doc = b"<a attr='x>y'><b/>text</a>";
        // Horizons: `>` of <a …> at 14, `/>` of <b/> at 18, `>` of </a> at 26.
        let mut s = HorizonScanner::new();
        s.scan(&doc[..13]);
        assert_eq!(
            s.horizon(),
            0,
            "a `>` inside a quoted attribute is not a tag end"
        );
        s.scan(&doc[13..14]);
        assert_eq!(s.horizon(), 14);
        s.scan(&doc[14..18]);
        assert_eq!(s.horizon(), 18, "self-closing tags end at `>`");
        s.scan(&doc[18..]);
        assert_eq!(s.horizon(), 26, "text bears no horizon; the close tag does");
        assert_eq!(horizon_bytewise(doc), 26);
    }

    #[test]
    fn xml_declaration_is_silent_but_pis_are_not() {
        assert_eq!(horizon_of(b"<?xml version='1.0'?>"), 0);
        assert_eq!(horizon_of(b"<?XML version='1.0'?>"), 0, "case-insensitive");
        let pi = b"<?target data?>";
        assert_eq!(horizon_of(pi), pi.len() as u64);
        assert_eq!(horizon_bytewise(pi), pi.len() as u64);
        let xmlish = b"<?xmlish d?>";
        assert_eq!(
            horizon_of(xmlish),
            xmlish.len() as u64,
            "`xmlish` is not `xml`"
        );
    }

    #[test]
    fn comments_cdata_and_doctype() {
        let c = b"<!-- a -- b -->";
        assert_eq!(horizon_of(c), c.len() as u64);
        assert_eq!(horizon_bytewise(c), c.len() as u64);
        let cd = b"<![CDATA[ a ]] b ]]]>";
        assert_eq!(horizon_of(cd), cd.len() as u64);
        assert_eq!(horizon_bytewise(cd), cd.len() as u64);
        let dt = b"<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]>";
        assert_eq!(horizon_of(dt), 0, "DOCTYPE produces no event");
        assert_eq!(horizon_bytewise(dt), 0);
    }

    #[test]
    fn incomplete_constructs_bear_no_horizon() {
        assert_eq!(horizon_of(b"<a attr='v"), 0);
        assert_eq!(horizon_of(b"<!-- open"), 0);
        assert_eq!(horizon_of(b"<![CDATA[ open ]]"), 0);
        assert_eq!(horizon_of(b"some text with no markup"), 0);
    }

    #[test]
    fn resume_with_consumed_lt_continues_mid_tag() {
        // The boundary detector consumed `<` of `<r>` at offset 10; the
        // next bytes are `r>`.
        let mut s = HorizonScanner::resume(11, true);
        s.scan(b"r><x/></r>");
        // `r>` ends at absolute 13, `<x/>` at 17, `</r>` at 21.
        assert_eq!(s.horizon(), 21);
    }
}
