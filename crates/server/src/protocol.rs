//! The spex-serve wire protocol: length-prefixed frames over TCP.
//!
//! Every frame is `kind (1 byte) · length (u32, big-endian) · payload
//! (length bytes)`. The kind bytes are printable ASCII so a session is
//! legible in a packet dump: uppercase kinds flow client → server,
//! lowercase kinds flow server → client.
//!
//! ```text
//! client → server                      server → client
//!   'R'  register "name=expr"            'k'  ok (ack, payload = name)
//!   'D'  data (XML bytes, any chunking)  'r'  result (name-len·name·fragment)
//!   'E'  end of session input            'f'  fault report (JSON)
//!   'S'  server stats request            's'  stats (JSON, one-shot schema)
//!   'T'  trace summary request           't'  trace summary (JSON)
//!   'Q'  graceful shutdown request       'e'  error (JSON: class/code/message)
//!   'M'  resume a durable session        'm'  resume accepted (replay offset)
//!                                        'b'  busy (admission reject)
//!                                        'n'  end of session
//! ```
//!
//! A `RESULT` payload is `name_len (u8) · name · fragment bytes`; the
//! fragment bytes include the trailing newline, so concatenating them for
//! one query reproduces the one-shot CLI's stdout byte for byte.

use std::io::{Read, Write};

/// Default cap on a single frame's payload (1 MiB). Streams of any size fit
/// by chunking `DATA` frames; the cap bounds per-frame buffering only.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Frame type tags. See the [module documentation](self) for the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: register a named query (`name=expr`).
    Register,
    /// Client → server: a chunk of the XML input stream.
    Data,
    /// Client → server: end of the session's input.
    End,
    /// Client → server: request a server-wide statistics snapshot.
    Stats,
    /// Client → server: request a server-wide trace summary (admission
    /// wait, session duration and determination-latency histograms).
    TraceRequest,
    /// Client → server: request a graceful server shutdown.
    Shutdown,
    /// Client → server: resume a durable session in place of registration.
    /// Payload: `version (u8) · token_len (u8) · token · nqueries (u32 BE)
    /// · nqueries × received (u64 BE)` — the per-query count of result
    /// fragments the client already holds, so the server can suppress
    /// replayed fragments.
    Resume,
    /// Server → client: acknowledgement (registration accepted, …).
    Ok,
    /// Server → client: a resume was accepted. Payload: the durable input
    /// byte count (u64 BE) — how many input bytes the server recovered and
    /// will replay internally; the client continues streaming from there.
    ResumeOk,
    /// Server → client: one result fragment of one query.
    Result,
    /// Server → client: one repaired input fault (recovery sessions only).
    Fault,
    /// Server → client: a statistics JSON document.
    Stat,
    /// Server → client: a trace summary JSON document (the answer to
    /// [`FrameKind::TraceRequest`]; see DESIGN.md §13 for the field shapes).
    Trace,
    /// Server → client: a structured error (JSON: class, code, message).
    Error,
    /// Server → client: admission control rejected the connection.
    Busy,
    /// Server → client: the session is complete.
    SessionEnd,
}

impl FrameKind {
    /// The wire tag.
    pub fn byte(self) -> u8 {
        match self {
            FrameKind::Register => b'R',
            FrameKind::Data => b'D',
            FrameKind::End => b'E',
            FrameKind::Stats => b'S',
            FrameKind::TraceRequest => b'T',
            FrameKind::Shutdown => b'Q',
            FrameKind::Resume => b'M',
            FrameKind::Ok => b'k',
            FrameKind::ResumeOk => b'm',
            FrameKind::Result => b'r',
            FrameKind::Fault => b'f',
            FrameKind::Stat => b's',
            FrameKind::Trace => b't',
            FrameKind::Error => b'e',
            FrameKind::Busy => b'b',
            FrameKind::SessionEnd => b'n',
        }
    }

    /// Decode a wire tag.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            b'R' => FrameKind::Register,
            b'D' => FrameKind::Data,
            b'E' => FrameKind::End,
            b'S' => FrameKind::Stats,
            b'T' => FrameKind::TraceRequest,
            b'Q' => FrameKind::Shutdown,
            b'M' => FrameKind::Resume,
            b'k' => FrameKind::Ok,
            b'm' => FrameKind::ResumeOk,
            b'r' => FrameKind::Result,
            b'f' => FrameKind::Fault,
            b's' => FrameKind::Stat,
            b't' => FrameKind::Trace,
            b'e' => FrameKind::Error,
            b'b' => FrameKind::Busy,
            b'n' => FrameKind::SessionEnd,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The payload bytes (may be empty).
    pub payload: Vec<u8>,
}

/// A violation of the frame grammar (as opposed to a transport error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The kind byte is not part of the protocol.
    UnknownKind(u8),
    /// The declared payload length exceeds the configured cap.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended in the middle of a frame.
    TruncatedFrame,
    /// A frame kind arrived in a phase where it is not allowed.
    UnexpectedKind(FrameKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownKind(b) => write!(f, "unknown frame kind byte 0x{b:02x}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::TruncatedFrame => write!(f, "stream ended mid-frame"),
            ProtocolError::UnexpectedKind(k) => {
                write!(f, "frame kind '{}' not allowed here", k.byte() as char)
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A frame-read failure: either the transport failed or the peer broke the
/// frame grammar.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent bytes violating the frame grammar.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "{e}"),
            ReadError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one frame. Returns `Ok(None)` on a clean end of stream (EOF at a
/// frame boundary); EOF inside a frame is
/// [`ProtocolError::TruncatedFrame`].
pub fn read_frame(r: &mut dyn Read, max_frame: usize) -> Result<Option<Frame>, ReadError> {
    let mut head = [0u8; 5];
    let mut filled = 0;
    while filled < head.len() {
        match r.read(&mut head[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ReadError::Protocol(ProtocolError::TruncatedFrame));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let kind = FrameKind::from_byte(head[0])
        .ok_or(ReadError::Protocol(ProtocolError::UnknownKind(head[0])))?;
    let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > max_frame {
        return Err(ReadError::Protocol(ProtocolError::Oversized {
            len,
            max: max_frame,
        }));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(ReadError::Protocol(ProtocolError::TruncatedFrame)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(Some(Frame { kind, payload }))
}

/// An incremental frame decoder: feed bytes in arbitrary chunks, pull
/// complete frames out. This is the nonblocking twin of [`read_frame`] —
/// for every chunking of the same byte stream it yields the same frame
/// sequence and the same [`ProtocolError`] classes (property-tested in
/// `tests/reactor.rs`), but it never blocks mid-frame: with an incomplete
/// frame buffered, [`FrameDecoder::next_frame`] returns `Ok(None)` and the
/// caller resumes when more bytes arrive.
///
/// Errors are sticky: after an `UnknownKind` or `Oversized` violation the
/// stream has no recoverable framing, so every further `next` repeats the
/// error.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_frame: usize,
    error: Option<ProtocolError>,
}

impl FrameDecoder {
    /// A decoder enforcing the given per-frame payload cap.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
            error: None,
        }
    }

    /// Append raw stream bytes (any chunking, including one byte at a
    /// time).
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates the
        // buffer, so steady-state decoding is amortized O(1) per byte.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame. `Ok(None)` means more bytes are
    /// needed; grammar violations mirror [`read_frame`]'s error classes.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let kind = match FrameKind::from_byte(avail[0]) {
            Some(k) => k,
            None => {
                let e = ProtocolError::UnknownKind(avail[0]);
                self.error = Some(e.clone());
                return Err(e);
            }
        };
        let len = u32::from_be_bytes([avail[1], avail[2], avail[3], avail[4]]) as usize;
        if len > self.max_frame {
            let e = ProtocolError::Oversized {
                len,
                max: self.max_frame,
            };
            self.error = Some(e.clone());
            return Err(e);
        }
        if avail.len() < 5 + len {
            return Ok(None);
        }
        let payload = avail[5..5 + len].to_vec();
        self.pos += 5 + len;
        Ok(Some(Frame { kind, payload }))
    }

    /// Whether undecoded bytes are buffered (a partially received frame).
    /// At end of stream this is exactly [`ProtocolError::TruncatedFrame`] —
    /// the same condition [`read_frame`] reports when EOF lands mid-frame.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Write one frame (header + payload; no flush).
pub fn write_frame(w: &mut dyn Write, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
    })?;
    w.write_all(&[kind.byte()])?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Build a `RESULT` payload: `name_len (u8) · name · fragment`.
///
/// # Panics
/// Panics if `name` is longer than 255 bytes (registration rejects such
/// names, so a server-built payload can't hit this).
pub fn result_payload(name: &str, fragment: &[u8]) -> Vec<u8> {
    let n = u8::try_from(name.len()).expect("query names are at most 255 bytes");
    let mut out = Vec::with_capacity(1 + name.len() + fragment.len());
    out.push(n);
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(fragment);
    out
}

/// Split a `RESULT` payload into `(name, fragment)`.
pub fn split_result(payload: &[u8]) -> Option<(&str, &[u8])> {
    let (&n, rest) = payload.split_first()?;
    if rest.len() < n as usize {
        return None;
    }
    let (name, fragment) = rest.split_at(n as usize);
    Some((std::str::from_utf8(name).ok()?, fragment))
}

/// The resume-frame format version this build speaks. A server receiving a
/// different version answers with a `protocol` error naming both versions
/// (see PROTOCOL.md §Resume for the negotiation rules).
pub const RESUME_VERSION: u8 = 1;

/// Build a `RESUME` payload: `version (u8) · token_len (u8) · token ·
/// nqueries (u32 BE) · nqueries × received (u64 BE)`.
///
/// # Panics
/// Panics if `token` is longer than 255 bytes (durable tokens are at most
/// 64 bytes, so a client using server-issued tokens can't hit this).
pub fn resume_payload(token: &str, received: &[u64]) -> Vec<u8> {
    let n = u8::try_from(token.len()).expect("session tokens are at most 64 bytes");
    let mut out = Vec::with_capacity(2 + token.len() + 4 + 8 * received.len());
    out.push(RESUME_VERSION);
    out.push(n);
    out.extend_from_slice(token.as_bytes());
    out.extend_from_slice(&(received.len() as u32).to_be_bytes());
    for &r in received {
        out.extend_from_slice(&r.to_be_bytes());
    }
    out
}

/// Split a `RESUME` payload into `(version, token, received)`. Returns
/// `None` on any structural violation; an unsupported version is returned
/// (not rejected) so the server can answer with a versioned error.
pub fn split_resume(payload: &[u8]) -> Option<(u8, &str, Vec<u64>)> {
    let (&version, rest) = payload.split_first()?;
    let (&token_len, rest) = rest.split_first()?;
    if rest.len() < token_len as usize + 4 {
        return None;
    }
    let (token, rest) = rest.split_at(token_len as usize);
    let token = std::str::from_utf8(token).ok()?;
    let (count, mut rest) = rest.split_at(4);
    let count = u32::from_be_bytes(count.try_into().ok()?) as usize;
    if rest.len() != count * 8 {
        return None;
    }
    let mut received = Vec::with_capacity(count);
    for _ in 0..count {
        let (chunk, tail) = rest.split_at(8);
        received.push(u64::from_be_bytes(chunk.try_into().ok()?));
        rest = tail;
    }
    Some((version, token, received))
}

/// Build an `ERROR` payload: one line of JSON with the error class (matches
/// the CLI's exit-code classes: `usage`, `syntax`, `io`, `resource`, plus
/// `protocol` for frame-grammar violations), the numeric exit code the
/// one-shot CLI would have used, and a human-readable message.
pub fn error_payload(class: &str, code: i32, message: &str) -> Vec<u8> {
    format!(
        "{{\"class\":\"{}\",\"code\":{},\"message\":\"{}\"}}",
        spex_core::json_escape(class),
        code,
        spex_core::json_escape(message),
    )
    .into_bytes()
}

/// Extract the `class` field from an `ERROR` payload (tolerant line scan;
/// the workspace has no JSON parser dependency).
pub fn error_class(payload: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(payload).ok()?;
    let rest = text.split("\"class\":\"").nth(1)?;
    Some(rest.split('"').next()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Register, b"q=a.b").unwrap();
        write_frame(&mut buf, FrameKind::Data, b"<a/>").unwrap();
        write_frame(&mut buf, FrameKind::End, b"").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let f1 = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f1.kind, FrameKind::Register);
        assert_eq!(f1.payload, b"q=a.b");
        let f2 = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f2.kind, FrameKind::Data);
        let f3 = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f3.kind, FrameKind::End);
        assert!(f3.payload.is_empty());
        assert!(read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn every_kind_byte_round_trips() {
        for kind in [
            FrameKind::Register,
            FrameKind::Data,
            FrameKind::End,
            FrameKind::Stats,
            FrameKind::TraceRequest,
            FrameKind::Shutdown,
            FrameKind::Resume,
            FrameKind::Ok,
            FrameKind::ResumeOk,
            FrameKind::Result,
            FrameKind::Fault,
            FrameKind::Stat,
            FrameKind::Trace,
            FrameKind::Error,
            FrameKind::Busy,
            FrameKind::SessionEnd,
        ] {
            assert_eq!(FrameKind::from_byte(kind.byte()), Some(kind));
        }
        assert_eq!(FrameKind::from_byte(b'?'), None);
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_the_payload() {
        let mut buf = Vec::new();
        buf.push(b'D');
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = std::io::Cursor::new(buf);
        match read_frame(&mut cur, 1024) {
            Err(ReadError::Protocol(ProtocolError::Oversized { len, max })) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_and_truncation_are_protocol_errors() {
        let mut cur = std::io::Cursor::new(vec![0xFFu8, 0, 0, 0, 0]);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(ReadError::Protocol(ProtocolError::UnknownKind(0xFF)))
        ));
        // Header cut short.
        let mut cur = std::io::Cursor::new(vec![b'D', 0, 0]);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(ReadError::Protocol(ProtocolError::TruncatedFrame))
        ));
        // Payload cut short.
        let mut cur = std::io::Cursor::new(vec![b'D', 0, 0, 0, 9, b'x']);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(ReadError::Protocol(ProtocolError::TruncatedFrame))
        ));
    }

    #[test]
    fn result_payload_round_trips() {
        let p = result_payload("cities", b"<city/>\n");
        let (name, frag) = split_result(&p).unwrap();
        assert_eq!(name, "cities");
        assert_eq!(frag, b"<city/>\n");
        assert!(split_result(&[]).is_none());
        assert!(split_result(&[200]).is_none());
    }

    #[test]
    fn resume_payload_round_trips() {
        let p = resume_payload("s3-99", &[7, 0, 12]);
        let (version, token, received) = split_resume(&p).unwrap();
        assert_eq!(version, RESUME_VERSION);
        assert_eq!(token, "s3-99");
        assert_eq!(received, vec![7, 0, 12]);
        // Structural violations are None, not panics.
        assert!(split_resume(&[]).is_none());
        assert!(split_resume(&[1]).is_none());
        assert!(split_resume(&[1, 200, b'x']).is_none());
        let mut short = resume_payload("t", &[1, 2]);
        short.truncate(short.len() - 3);
        assert!(split_resume(&short).is_none());
    }

    #[test]
    fn error_payload_is_scannable() {
        let p = error_payload("syntax", 2, "bad \"query\"");
        assert_eq!(error_class(&p).as_deref(), Some("syntax"));
        let text = String::from_utf8(p).unwrap();
        assert!(text.contains("\"code\":2"));
        assert!(text.contains("\\\"query\\\""));
    }
}
