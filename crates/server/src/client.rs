//! A small blocking client for the spex-serve protocol, used by the CLI
//! example, the integration tests and the `serve-bench` harness. It is a
//! thin convenience over [`crate::protocol`] — nothing here is required to
//! talk to the server; `nc` plus a frame encoder is enough.

use crate::protocol::{
    error_class, read_frame, resume_payload, split_result, write_frame, Frame, FrameKind,
    ReadError, DEFAULT_MAX_FRAME,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything one session sent back, sorted by frame kind.
#[derive(Debug, Default, Clone)]
pub struct SessionTranscript {
    /// Result fragments in arrival order: `(query name, fragment bytes)`.
    /// Fragment bytes include the trailing newline, so concatenating one
    /// query's fragments reproduces the one-shot CLI's stdout.
    pub results: Vec<(String, Vec<u8>)>,
    /// Registration acknowledgements (payload = query name).
    pub acks: Vec<String>,
    /// Fault reports (JSON lines), recovery sessions only.
    pub faults: Vec<String>,
    /// Structured errors (JSON lines).
    pub errors: Vec<String>,
    /// The session's closing statistics JSON, if one arrived.
    pub stats: Option<String>,
    /// The latest trace summary JSON (`t` frame), if one arrived.
    pub trace: Option<String>,
    /// The server rejected the connection with `BUSY`.
    pub busy: bool,
    /// The server closed the session with an `END` frame.
    pub clean_end: bool,
    /// The durable session token from the server's `session=<token>` ack
    /// (durable servers only). Present after the first `DATA`/`END` frame.
    pub session_token: Option<String>,
    /// The durable input byte count acknowledged by a `RESUME-OK` frame.
    pub resume_ok: Option<u64>,
}

impl SessionTranscript {
    /// Concatenate the fragments of one query — byte-comparable with the
    /// one-shot CLI's stdout for the same query and input.
    pub fn output_of(&self, name: &str) -> Vec<u8> {
        let mut out = Vec::new();
        for (n, fragment) in &self.results {
            if n == name {
                out.extend_from_slice(fragment);
            }
        }
        out
    }

    /// The `class` fields of every error frame.
    pub fn error_classes(&self) -> Vec<String> {
        self.errors
            .iter()
            .filter_map(|e| error_class(e.as_bytes()))
            .collect()
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Raise (or lower) the largest server frame this client accepts.
    /// Result frames carry whole fragments, so a query matching a large
    /// subtree can exceed the default cap of [`DEFAULT_MAX_FRAME`] bytes.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.writer, kind, payload)?;
        self.writer.flush()
    }

    /// Read the next server frame (`None` on hangup).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ReadError> {
        read_frame(&mut self.reader, self.max_frame)
    }

    /// Register `name=expr`; the acknowledgement (or error) arrives as a
    /// frame — use [`Client::next_frame`] or [`Client::drain`].
    pub fn register(&mut self, name: &str, expr: &str) -> std::io::Result<()> {
        self.send(FrameKind::Register, format!("{name}={expr}").as_bytes())
    }

    /// Send one chunk of the XML input (chunk boundaries are arbitrary).
    pub fn send_xml(&mut self, chunk: &[u8]) -> std::io::Result<()> {
        self.send(FrameKind::Data, chunk)
    }

    /// Declare the end of this session's input.
    pub fn end(&mut self) -> std::io::Result<()> {
        self.send(FrameKind::End, b"")
    }

    /// Ask for a server-wide statistics snapshot (answered with a `STAT`
    /// frame; only valid before streaming starts).
    pub fn request_stats(&mut self) -> std::io::Result<()> {
        self.send(FrameKind::Stats, b"")
    }

    /// Resume a durable session by token, declaring how many result
    /// fragments per registered query this client already received (in the
    /// server's canonical query order: sorted by name, then canonical
    /// expression — the order result counts are reported in, and the
    /// registration order whenever queries were registered name-sorted).
    /// Must follow the `R` frames; the server answers
    /// with `RESUME-OK` and replays the WAL tail, suppressing fragments the
    /// client already holds.
    pub fn resume(&mut self, token: &str, received: &[u64]) -> std::io::Result<()> {
        self.send(FrameKind::Resume, &resume_payload(token, received))
    }

    /// Ask for a server-wide trace summary: admission-wait, session
    /// duration and determination-latency histograms (answered with a
    /// `t` frame; only valid before streaming starts).
    pub fn request_trace(&mut self) -> std::io::Result<()> {
        self.send(FrameKind::TraceRequest, b"")
    }

    /// Ask the server to shut down gracefully. Honored from loopback
    /// peers, or from any peer when the server runs with
    /// `ServerConfig::allow_remote_shutdown`; refused with an error frame
    /// otherwise.
    pub fn request_shutdown(&mut self) -> std::io::Result<()> {
        self.send(FrameKind::Shutdown, b"")
    }

    /// Read frames until the server ends the session (or hangs up),
    /// sorting them into a [`SessionTranscript`].
    pub fn drain(&mut self) -> Result<SessionTranscript, ReadError> {
        let mut transcript = SessionTranscript::default();
        loop {
            let Some(frame) = self.next_frame()? else {
                return Ok(transcript);
            };
            match frame.kind {
                FrameKind::Result => {
                    if let Some((name, fragment)) = split_result(&frame.payload) {
                        transcript
                            .results
                            .push((name.to_string(), fragment.to_vec()));
                    }
                }
                FrameKind::Ok => {
                    let ack = String::from_utf8_lossy(&frame.payload).into_owned();
                    if let Some(token) = ack.strip_prefix("session=") {
                        transcript.session_token = Some(token.to_string());
                    }
                    transcript.acks.push(ack);
                }
                FrameKind::ResumeOk => {
                    if frame.payload.len() == 8 {
                        let mut raw = [0u8; 8];
                        raw.copy_from_slice(&frame.payload);
                        transcript.resume_ok = Some(u64::from_be_bytes(raw));
                    }
                }
                FrameKind::Fault => {
                    transcript
                        .faults
                        .push(String::from_utf8_lossy(&frame.payload).into_owned());
                }
                FrameKind::Error => {
                    transcript
                        .errors
                        .push(String::from_utf8_lossy(&frame.payload).into_owned());
                }
                FrameKind::Stat => {
                    transcript.stats = Some(String::from_utf8_lossy(&frame.payload).into_owned());
                }
                FrameKind::Trace => {
                    transcript.trace = Some(String::from_utf8_lossy(&frame.payload).into_owned());
                }
                FrameKind::Busy => {
                    transcript.busy = true;
                    return Ok(transcript);
                }
                FrameKind::SessionEnd => {
                    transcript.clean_end = true;
                    return Ok(transcript);
                }
                // Client-bound kinds only flow server → client; anything
                // else is a server bug surfaced loudly in tests.
                other => {
                    return Err(ReadError::Protocol(
                        crate::protocol::ProtocolError::UnexpectedKind(other),
                    ))
                }
            }
        }
    }

    /// Convenience: run one complete session — register every query, send
    /// the whole input, end, and drain.
    pub fn run_session(
        &mut self,
        queries: &[(&str, &str)],
        xml: &[u8],
    ) -> Result<SessionTranscript, ReadError> {
        for (name, expr) in queries {
            self.register(name, expr).map_err(ReadError::Io)?;
        }
        // Chunk the document to exercise reassembly (any boundary works).
        for chunk in xml.chunks(64 * 1024) {
            self.send_xml(chunk).map_err(ReadError::Io)?;
        }
        self.end().map_err(ReadError::Io)?;
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use spex_core::ResourceLimits;
    use spex_xml::RecoveryPolicy;

    /// Boot a server on a free port; returns (addr, handle, join).
    fn boot(
        cfg: ServerConfig,
    ) -> (
        std::net::SocketAddr,
        crate::server::ServerHandle,
        std::thread::JoinHandle<std::io::Result<crate::server::ServerReport>>,
    ) {
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join)
    }

    #[test]
    fn end_to_end_session_streams_results() {
        let (addr, handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let t = client
            .run_session(
                &[("c", "_*.c"), ("b", "_*.b")],
                b"<a><c>1</c><b><c>2</c></b></a>",
            )
            .unwrap();
        assert_eq!(t.acks, ["c", "b"]);
        assert!(t.clean_end, "errors: {:?}", t.errors);
        assert!(t.errors.is_empty());
        assert_eq!(t.output_of("c"), b"<c>1</c>\n<c>2</c>\n");
        assert_eq!(t.output_of("b"), b"<b><c>2</c></b>\n");
        let stats = t.stats.expect("session stats frame");
        assert!(stats.contains("\"results\":3"), "{stats}");
        handle.shutdown();
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.sessions_completed, 1);
        assert_eq!(report.sessions_failed, 0);
        assert_eq!(report.documents, 1);
    }

    #[test]
    fn syntax_error_yields_structured_error_frame() {
        let (addr, handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let t = client.run_session(&[("q", "a")], b"<a><b></a>").unwrap();
        assert!(t.clean_end);
        assert_eq!(t.error_classes(), ["syntax"]);
        handle.shutdown();
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.sessions_failed, 1);
    }

    #[test]
    fn resource_breach_closes_only_the_offending_session() {
        let cfg = ServerConfig {
            limits: ResourceLimits::default().with_max_stream_depth(3),
            ..ServerConfig::default()
        };
        let (addr, handle, join) = boot(cfg);
        let mut deep = Client::connect(addr).unwrap();
        let t = deep
            .run_session(&[("q", "_*.e")], b"<a><b><c><d><e/></d></c></b></a>")
            .unwrap();
        assert_eq!(t.error_classes(), ["resource"]);
        assert!(t.clean_end);
        // The server is still healthy for the next session.
        let mut shallow = Client::connect(addr).unwrap();
        let t2 = shallow
            .run_session(&[("q", "a.b")], b"<a><b/></a>")
            .unwrap();
        assert!(t2.errors.is_empty());
        assert_eq!(t2.output_of("q"), b"<b></b>\n");
        handle.shutdown();
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.sessions_failed, 1);
        assert_eq!(report.sessions_completed, 1);
    }

    #[test]
    fn recovery_session_reports_faults_and_quarantines() {
        let cfg = ServerConfig {
            recovery: RecoveryPolicy::Repair,
            ..ServerConfig::default()
        };
        let (addr, handle, join) = boot(cfg);
        let mut client = Client::connect(addr).unwrap();
        // Stray close taints `<x>`; the earlier `r.a` result survives.
        let t = client
            .run_session(&[("q", "r.a")], b"<r><a><b/></a><x></nope></x></r>")
            .unwrap();
        assert!(t.clean_end);
        assert!(t.errors.is_empty());
        assert_eq!(t.faults.len(), 1, "faults: {:?}", t.faults);
        assert!(t.faults[0].contains("\"kind\":\"stray-close\""));
        assert_eq!(t.output_of("q"), b"<a><b></b></a>\n");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn multi_document_connection_stays_bounded_and_counts() {
        let (addr, handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.register("q", "r.x").unwrap();
        for i in 0..10 {
            client
                .send_xml(format!("<r><u{i}/><x>doc {i}</x></r>").as_bytes())
                .unwrap();
        }
        client.end().unwrap();
        let t = client.drain().unwrap();
        assert!(t.clean_end);
        assert_eq!(t.results.len(), 10);
        let stats = t.stats.unwrap();
        // Session reuse keeps the symbol table bounded: `u0`…`u9` are
        // forgotten at each document boundary.
        let interned: u64 = stats
            .split("\"interned_symbols\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(interned <= 4, "interned_symbols {interned} in {stats}");
        handle.shutdown();
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.documents, 10);
    }

    #[test]
    fn stats_only_connection_is_answered() {
        let (addr, handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.request_stats().unwrap();
        let frame = client.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Stat);
        let json = String::from_utf8(frame.payload).unwrap();
        assert!(json.contains("\"server\":{"), "{json}");
        drop(client);
        handle.shutdown();
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.sessions_completed, 1);
    }

    #[test]
    fn trace_frame_reports_histograms_after_a_session() {
        let (addr, handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let t = client
            .run_session(&[("q", "a[b].c")], b"<a><c>1</c><b/></a>")
            .unwrap();
        assert!(t.clean_end, "errors: {:?}", t.errors);
        let mut probe = Client::connect(addr).unwrap();
        probe.request_trace().unwrap();
        let frame = probe.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Trace);
        let json = String::from_utf8(frame.payload).unwrap();
        for key in [
            "\"admission_wait_us\":{\"count\":",
            "\"session_us\":",
            "\"determination_latency\":",
        ] {
            assert!(json.contains(key), "{key} missing in {json}");
        }
        // The session above buffered `<c>1</c>` until `<b/>` arrived, so
        // the server-wide determination-latency histogram is non-empty.
        let det = json.split("\"determination_latency\":").nth(1).unwrap();
        assert!(!det.contains("\"count\":0"), "empty histogram in {json}");
        drop(probe);
        drop(client);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn trace_jsonl_captures_sessions_and_final_aggregates() {
        let dir = std::env::temp_dir().join("spex-serve-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve-trace.jsonl");
        let cfg = ServerConfig {
            trace_jsonl: Some(path.to_str().unwrap().to_string()),
            ..ServerConfig::default()
        };
        let (addr, handle, join) = boot(cfg);
        let mut client = Client::connect(addr).unwrap();
        let t = client
            .run_session(&[("q", "_*.c")], b"<a><c>1</c></a>")
            .unwrap();
        assert!(t.clean_end, "errors: {:?}", t.errors);
        drop(client);
        handle.shutdown();
        join.join().unwrap().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for needle in [
            "\"t\":\"span\",\"name\":\"serve.session\"",
            "\"serve.sessions_completed\"",
            "\"serve.admission_wait_us\"",
            "\"engine.determination_latency\"",
        ] {
            assert!(text.contains(needle), "{needle} missing in:\n{text}");
        }
        for line in text.lines() {
            assert!(
                line.starts_with("{\"t\":\"") && line.ends_with('}'),
                "bad record: {line}"
            );
        }
    }

    /// A durable session that loses its connection mid-document resumes by
    /// token with byte-identical continuation: replayed fragments the
    /// client already received are suppressed, the rest arrive exactly as
    /// an uninterrupted session would have delivered them.
    #[test]
    fn durable_session_resumes_after_disconnect() {
        let dir = std::env::temp_dir().join(format!("spex-durable-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ServerConfig {
            durable_dir: Some(dir.to_str().unwrap().to_string()),
            ..ServerConfig::default()
        };
        let (addr, handle, join) = boot(cfg);

        let doc1 = b"<r><x>one</x></r>";
        let doc2 = b"<r><x>two</x><x>three</x></r>";

        // Interrupted session: doc1 plus a prefix of doc2, then hang up
        // without END. Wait for both fragments so the doc1 checkpoint has
        // deterministically happened before the "crash".
        let mut a = Client::connect(addr).unwrap();
        a.register("q", "r.x").unwrap();
        let frame = a.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Ok);
        a.send_xml(doc1).unwrap();
        a.send_xml(&doc2[..13]).unwrap(); // cut after "<r><x>two</x>"
        let mut token = None;
        let mut fragments = 0u64;
        let mut got = Vec::new();
        while token.is_none() || fragments < 2 {
            let frame = a.next_frame().unwrap().unwrap();
            match frame.kind {
                FrameKind::Ok => {
                    let ack = String::from_utf8_lossy(&frame.payload).into_owned();
                    token = ack.strip_prefix("session=").map(str::to_string);
                }
                FrameKind::Result => {
                    let (name, fragment) = split_result(&frame.payload).unwrap();
                    assert_eq!(name, "q");
                    fragments += 1;
                    got.extend_from_slice(fragment);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        let token = token.expect("session token ack");
        drop(a);
        // Let the server notice the hangup and park the session state.
        std::thread::sleep(std::time::Duration::from_millis(200));

        // Resume: same registration, token, and fragments-received count.
        let mut b = Client::connect(addr).unwrap();
        b.register("q", "r.x").unwrap();
        let frame = b.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Ok);
        b.resume(&token, &[2]).unwrap();
        b.send_xml(&doc2[13..]).unwrap();
        b.end().unwrap();
        let t = b.drain().unwrap();
        assert!(t.clean_end, "errors: {:?}", t.errors);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let replayed = t.resume_ok.expect("RESUME-OK frame");
        assert!(replayed >= doc1.len() as u64, "durable bytes {replayed}");
        // The continuation delivers exactly the missing fragment…
        assert_eq!(t.output_of("q"), b"<x>three</x>\n");
        // …so crash + resume reproduces the uninterrupted output.
        got.extend_from_slice(&t.output_of("q"));
        assert_eq!(got, b"<x>one</x>\n<x>two</x>\n<x>three</x>\n".to_vec());
        // A clean END retires the durable state.
        assert!(!dir.join(&token).exists(), "durable state not removed");
        handle.shutdown();
        join.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_frame_stops_the_server() {
        let (addr, _handle, join) = boot(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.request_shutdown().unwrap();
        let frame = client.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Ok);
        drop(client);
        let report = join.join().unwrap().unwrap();
        assert!(report.sessions_started >= 1);
    }
}
