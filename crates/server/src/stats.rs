//! Server-wide statistics: session counters plus the aggregated
//! [`EngineStats`] of every completed session.
//!
//! The JSON rendering deliberately *is* the one-shot CLI's `--stats-json`
//! schema (`spex_core::stats_json`) with two additions spliced in before the
//! closing brace: a `faults` object in the exact shape the one-shot schema
//! uses under a recovery policy, and a `server` object with the
//! serve-specific counters. Line-scanning tooling written for the one-shot
//! schema parses a server dump unchanged.

use spex_core::EngineStats;
use spex_xml::{Fault, FaultKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregated fault accounting for recovery sessions: per-kind counters plus
/// the first and last fault observed, which is all the one-shot `faults`
/// JSON shape needs (the full fault list would grow without bound in a
/// long-lived server).
#[derive(Debug, Default, Clone)]
pub struct FaultTotals {
    /// Total faults repaired across all sessions.
    pub total: u64,
    /// Sessions that hit a truncated stream.
    pub truncated_sessions: u64,
    /// Fragments delivered by recovery sessions.
    pub delivered: u64,
    /// Fragments quarantined by recovery sessions.
    pub quarantined: u64,
    /// Faults per kind, indexed like [`FaultKind::ALL`].
    pub by_kind: Vec<u64>,
    /// First fault ever observed.
    pub first: Option<Fault>,
    /// Last fault observed so far.
    pub last: Option<Fault>,
}

impl FaultTotals {
    fn absorb(&mut self, faults: &[Fault], truncated: bool, delivered: u64, quarantined: u64) {
        if self.by_kind.is_empty() {
            self.by_kind = vec![0; FaultKind::ALL.len()];
        }
        self.total += faults.len() as u64;
        if truncated {
            self.truncated_sessions += 1;
        }
        self.delivered += delivered;
        self.quarantined += quarantined;
        for f in faults {
            if let Some(i) = FaultKind::ALL.iter().position(|k| *k == f.kind) {
                self.by_kind[i] += 1;
            }
        }
        if let Some(first) = faults.first() {
            if self.first.is_none() {
                self.first = Some(first.clone());
            }
        }
        if let Some(last) = faults.last() {
            self.last = Some(last.clone());
        }
    }
}

/// Thread-safe server-wide statistics. Counters are atomics; the aggregated
/// engine statistics and fault totals sit behind a mutex taken once per
/// completed session.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and queued.
    pub sessions_started: AtomicU64,
    /// Sessions that ran to a clean `END`.
    pub sessions_completed: AtomicU64,
    /// Connections rejected with `BUSY` by admission control.
    pub sessions_rejected: AtomicU64,
    /// Sessions closed early by an error (protocol, syntax, I/O, resource).
    pub sessions_failed: AtomicU64,
    /// Documents evaluated across all sessions.
    pub documents: AtomicU64,
    /// Compiled-plan cache hits on registration.
    pub plan_cache_hits: AtomicU64,
    /// Compiled-plan cache misses (fresh compilations).
    pub plan_cache_misses: AtomicU64,
    engine: Mutex<(EngineStats, FaultTotals)>,
}

impl ServerStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Fold one completed session's engine statistics into the aggregate.
    pub fn absorb_engine(&self, stats: &EngineStats) {
        let mut guard = self.engine.lock().expect("stats mutex poisoned");
        guard.0.absorb(stats);
    }

    /// Fold one recovery session's fault accounting into the aggregate.
    pub fn absorb_faults(
        &self,
        faults: &[Fault],
        truncated: bool,
        delivered: u64,
        quarantined: u64,
    ) {
        let mut guard = self.engine.lock().expect("stats mutex poisoned");
        guard.1.absorb(faults, truncated, delivered, quarantined);
    }

    /// Snapshot the aggregated engine statistics.
    pub fn engine_totals(&self) -> EngineStats {
        self.engine.lock().expect("stats mutex poisoned").0.clone()
    }

    /// Render the server statistics as one line of JSON in the one-shot
    /// `--stats-json` schema (empty `transducers` array — per-node rows are
    /// per-session, reported in each session's `STAT` frame), extended with
    /// a `faults` object when any recovery session ran and a `server`
    /// counters object.
    pub fn to_json(&self) -> String {
        let (engine, faults) = {
            let guard = self.engine.lock().expect("stats mutex poisoned");
            (guard.0.clone(), guard.1.clone())
        };
        let mut out = spex_core::stats_json(&engine, &[], None);
        // The pop must happen in release builds too — inside a
        // debug_assert! it would be compiled out and the sections below
        // would land after the closing brace.
        let closing = out.pop();
        debug_assert_eq!(closing, Some('}'));
        if faults.total > 0 || faults.truncated_sessions > 0 {
            out.push_str(&format!(
                ",\"faults\":{{\"total\":{},\"truncated\":{},\"delivered\":{},\
                 \"quarantined\":{},\"by_kind\":{{",
                faults.total,
                faults.truncated_sessions > 0,
                faults.delivered,
                faults.quarantined,
            ));
            let mut first_kind = true;
            for (i, kind) in FaultKind::ALL.iter().enumerate() {
                let n = faults.by_kind.get(i).copied().unwrap_or(0);
                if n == 0 {
                    continue;
                }
                if !first_kind {
                    out.push(',');
                }
                first_kind = false;
                out.push_str(&format!("\"{}\":{n}", kind.as_str()));
            }
            out.push('}');
            fn pos_json(label: &str, f: &Fault) -> String {
                format!(
                    ",\"{label}\":{{\"kind\":\"{}\",\"offset\":{},\"line\":{},\"column\":{}}}",
                    f.kind.as_str(),
                    f.position.offset,
                    f.position.line,
                    f.position.column,
                )
            }
            if let (Some(first), Some(last)) = (&faults.first, &faults.last) {
                out.push_str(&pos_json("first", first));
                out.push_str(&pos_json("last", last));
            }
            out.push('}');
        }
        out.push_str(&format!(
            ",\"server\":{{\"sessions_started\":{},\"sessions_completed\":{},\
             \"sessions_rejected\":{},\"sessions_failed\":{},\"documents\":{},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{}}}",
            self.sessions_started.load(Ordering::Relaxed),
            self.sessions_completed.load(Ordering::Relaxed),
            self.sessions_rejected.load(Ordering::Relaxed),
            self.sessions_failed.load(Ordering::Relaxed),
            self.documents.load(Ordering::Relaxed),
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brace depth of a JSON blob with no braces inside strings — zero for
    /// a well-formed object, nonzero when a section was spliced in after
    /// the closing brace.
    fn brace_depth(json: &str) -> i64 {
        json.chars().fold(0, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        })
    }

    #[test]
    fn json_extends_the_one_shot_schema() {
        let stats = ServerStats::new();
        let e = EngineStats {
            ticks: 7,
            results: 3,
            peak_arena_bytes: 100,
            interned_symbols: 5,
            ..EngineStats::default()
        };
        stats.absorb_engine(&e);
        stats.sessions_started.fetch_add(2, Ordering::Relaxed);
        stats.sessions_completed.fetch_add(1, Ordering::Relaxed);
        let json = stats.to_json();
        // One-shot schema keys are all present…
        for key in [
            "\"ticks\":7",
            "\"results\":3",
            "\"peak_arena_bytes\":100",
            "\"interned_symbols\":5",
            "\"transducers\":[]",
        ] {
            assert!(json.contains(key), "{key} missing in {json}");
        }
        // …plus the server section.
        assert!(json.contains("\"server\":{\"sessions_started\":2"));
        // No recovery sessions ran: no faults key, like a Strict one-shot.
        assert!(!json.contains("\"faults\""));
        assert!(json.ends_with('}'));
        assert_eq!(brace_depth(&json), 0, "unbalanced: {json}");
    }

    #[test]
    fn fault_totals_render_in_one_shot_shape() {
        let stats = ServerStats::new();
        let fault = Fault {
            kind: FaultKind::StrayClose,
            position: spex_xml::Position {
                offset: 12,
                line: 1,
                column: 13,
            },
            action: spex_xml::FaultAction::Dropped,
            detail: String::new(),
            event_from: 3,
            event_to: 5,
        };
        stats.absorb_faults(&[fault], false, 4, 1);
        let json = stats.to_json();
        assert!(json.contains("\"faults\":{\"total\":1,\"truncated\":false"));
        assert!(json.contains("\"delivered\":4"));
        assert!(json.contains("\"quarantined\":1"));
        assert!(json.contains("\"stray-close\":1"));
        assert!(json.contains("\"first\":{\"kind\":\"stray-close\",\"offset\":12"));
        assert_eq!(brace_depth(&json), 0, "unbalanced: {json}");
    }

    #[test]
    fn engine_totals_add_counters_and_max_peaks() {
        let stats = ServerStats::new();
        let a = EngineStats {
            ticks: 5,
            peak_arena_bytes: 10,
            ..EngineStats::default()
        };
        let b = EngineStats {
            ticks: 7,
            peak_arena_bytes: 4,
            ..EngineStats::default()
        };
        stats.absorb_engine(&a);
        stats.absorb_engine(&b);
        let total = stats.engine_totals();
        assert_eq!(total.ticks, 12);
        assert_eq!(total.peak_arena_bytes, 10);
    }
}
