//! One client session as a nonblocking state machine: the register phase,
//! the streaming eval phase, and the closing `STAT`/`END` exchange —
//! driven by readiness instead of a dedicated blocking thread.
//!
//! The reactor (see [`crate::reactor`]) owns the socket and shovels bytes
//! between it and the connection's [`Conn`] buffers; this module owns all
//! protocol logic. A [`SessionMachine`] is pinned to one worker (the
//! engine's `Run` holds `Rc`-backed state and is not `Send`) and advanced
//! whenever its connection is ready: [`SessionMachine::advance`] consumes
//! decoded frames, drives the zero-copy `Reader::next_into` path, emits
//! result frames into the bounded outbound buffer, and reports why it
//! suspended ([`Advance::NeedInput`], [`Advance::NeedWrite`] for
//! writability backpressure, [`Advance::Working`] when its CPU slice is
//! spent) or how it finished.
//!
//! The phases are unchanged from the blocking server:
//!
//! 1. **Register**: `R` frames (`name=expr`) are parsed and acknowledged
//!    one by one (`k` with the name, or `e` with a structured error that
//!    does *not* kill the session). `S` answers with server-wide stats;
//!    `Q` requests a graceful server shutdown (honored for loopback peers,
//!    or any peer under `ServerConfig::allow_remote_shutdown`).
//! 2. **Eval**: the first `D`/`E` frame freezes the registration and the
//!    plan is fetched from (or compiled into) the shared registry. `D`
//!    payloads are the XML byte stream, chunked arbitrarily — an
//!    [`EvalSource`] adapts them to `std::io::Read` so the zero-copy
//!    reader path runs unchanged. Because the pull parser cannot be
//!    suspended mid-event, the machine only pulls while the
//!    [`HorizonScanner`] guarantees a complete event is buffered (or the
//!    stream ended); if that guarantee is ever wrong the source degrades
//!    to a bounded blocking wait — the old thread-per-session behavior,
//!    never a corruption.
//! 3. **Close**: on `E` (or an error) the machine queues any `f` fault
//!    frames, a `s` stats frame in the one-shot `--stats-json` schema, and
//!    `n`; the reactor flushes and closes.
//!
//! Errors mirror the one-shot CLI's exit-code classes (`usage`=1,
//! `syntax`=2, `io`=3, `resource`=4) plus `protocol` for frame-grammar
//! violations; an error closes *this* session only.

use crate::conn::{Conn, Notifier, OUT_HIGH};
use crate::durable::{self, SessionLog};
use crate::protocol::{
    error_payload, result_payload, split_resume, Frame, FrameDecoder, FrameKind, ProtocolError,
    RESUME_VERSION,
};
use crate::scan::HorizonScanner;
use crate::server::Shared;
use spex_core::multi::SharedQuerySet;
use spex_core::{
    stats_json, EvalError, FragmentFnSink, Quarantine, ResultSink, RunReport, SessionState,
    Snapshot,
};
use spex_query::Rpeq;
use spex_xml::{Reader, RecoveryPolicy, StoredKind};
use std::cell::RefCell;
use std::io::Read;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum events pushed per [`SessionMachine::advance`] before the
/// machine yields [`Advance::Working`], so one firehose session cannot
/// starve its worker's other ready sessions.
const SLICE_EVENTS: usize = 4096;

/// Escape hatch for the horizon gate: once this many undecoded payload
/// bytes are buffered without a complete event (one giant text node, say),
/// the machine pulls anyway and accepts the bounded blocking fallback.
const PARSE_CAP: usize = 4 << 20;

/// How the session ended, for the server-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionEnd {
    /// Ran to a clean `END` (including stats-only connections).
    Completed,
    /// Closed early by an error (protocol, syntax, I/O, resource).
    Failed,
}

/// Why [`SessionMachine::advance`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Advance {
    /// No complete frame/event is available; re-run when bytes arrive.
    NeedInput,
    /// The outbound buffer is over its high watermark; re-run when the
    /// reactor has drained it below the low watermark.
    NeedWrite,
    /// The CPU slice was spent with work remaining; re-queue (rotated
    /// behind other ready sessions).
    Working,
    /// The session is over; drop the machine, flush and close the socket.
    Done(SessionEnd),
}

/// A structured session error, mirroring the CLI's exit-code classes.
struct SessionError {
    class: &'static str,
    code: i32,
    message: String,
}

impl SessionError {
    fn new(class: &'static str, code: i32, message: impl Into<String>) -> Self {
        SessionError {
            class,
            code,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        SessionError::new("usage", 1, message)
    }

    fn protocol(message: impl Into<String>) -> Self {
        SessionError::new("protocol", 1, message)
    }
}

/// Classify an engine error exactly like the CLI's exit-code mapping, with
/// `violation` taking precedence: an `EvalError::Xml(Io)` caused by the
/// peer breaking the frame grammar is a protocol error, not an I/O error.
fn classify(err: &EvalError, violation: Option<&ProtocolError>) -> SessionError {
    if let Some(v) = violation {
        return SessionError::protocol(v.to_string());
    }
    match err {
        EvalError::Query(_) | EvalError::Compile(_) => SessionError::usage(err.to_string()),
        EvalError::Xml(e) => {
            if e.kind().is_syntax_class() {
                SessionError::new("syntax", 2, err.to_string())
            } else {
                SessionError::new("io", 3, err.to_string())
            }
        }
        EvalError::ResourceExhausted { .. } => SessionError::new("resource", 4, err.to_string()),
    }
}

/// Side-channel state the [`EvalSource`] records for the session to
/// inspect: `spex_xml::XmlError` stringifies I/O errors, so a protocol
/// violation discovered *inside* the reader loop must travel out of band.
#[derive(Default)]
struct SourceState {
    violation: Option<ProtocolError>,
}

/// Per-query delivery accounting, shared between every result sink and the
/// checkpoint hook. `delivered[q]` counts all fragments produced for query
/// `q` — including suppressed replays, which the client already holds —
/// so a snapshot's counts line up with what the client received.
/// `suppress[q]` is the number of upcoming fragments to swallow instead of
/// sending: at resume it is `client_received[q] - snapshot_delivered[q]`,
/// the fragments the replayed input will regenerate.
#[derive(Default)]
struct Delivery {
    delivered: Vec<u64>,
    suppress: Vec<u64>,
}

/// A [`Quarantine`] behind `Rc<RefCell>`, so the checkpoint hook can export
/// its buffered fragments while the run holds the sink borrow.
struct SharedQuarantine(Rc<RefCell<Quarantine>>);

impl ResultSink for SharedQuarantine {
    fn begin(&mut self, meta: spex_core::ResultMeta, now: u64) {
        self.0.borrow_mut().begin(meta, now);
    }

    fn event(&mut self, event: &spex_xml::RawEvent<'_>, now: u64) {
        self.0.borrow_mut().event(event, now);
    }

    fn end(&mut self, now: u64) {
        self.0.borrow_mut().end(now);
    }
}

/// Everything the eval phase needs to keep a session durable: where its
/// state lives, the live WAL handle, and (for resumes) the recovered
/// continuation.
struct DurableCtx {
    root: PathBuf,
    token: String,
    log: Rc<RefCell<SessionLog>>,
    /// Engine snapshot to restore before consuming input (resume only).
    snapshot: Option<Snapshot>,
    /// Continuation state (default-empty for fresh sessions and for
    /// resumes that replay the whole WAL).
    session: SessionState,
    /// Per-query count of replayed fragments to suppress.
    suppress: Vec<u64>,
}

/// Whether this peer may stop the server with an in-band `SHUTDOWN`
/// frame: loopback peers always can (a local client stopping its own
/// server), anyone else only when the operator opted in — an unknown peer
/// (no resolvable address) is never trusted.
fn shutdown_permitted(allow_remote: bool, peer: Option<std::net::SocketAddr>) -> bool {
    allow_remote || peer.map(|p| p.ip().is_loopback()).unwrap_or(false)
}

/// Queue the closing error (optional) + `END` frame sequence.
fn close_frames(conn: &Conn, error: Option<&SessionError>) {
    if let Some(e) = error {
        conn.send_frame(
            FrameKind::Error,
            &error_payload(e.class, e.code, &e.message),
        );
    }
    conn.send_frame(FrameKind::SessionEnd, b"");
}

/// Adapts the ingested `DATA` payload bytes to `std::io::Read` so the
/// engine's zero-copy reader path runs unchanged over the wire. Frames are
/// decoded incrementally out of the connection's inbox; `END` — or the
/// peer hanging up at a frame boundary — reads as EOF (a hangup
/// mid-document is then exactly a truncated stream: a syntax error under
/// `strict`, a `truncated` fault under a recovery policy). Any other frame
/// kind mid-stream is a protocol violation, recorded in the shared
/// [`SourceState`].
///
/// Reads never block while the machine respects the horizon gate
/// ([`EvalSource::pull_ready`]); if the parser outruns the horizon (a
/// recovery-mode resync skim, or the [`PARSE_CAP`] escape), the read falls
/// back to a bounded condvar wait on the inbox — the reactor keeps filling
/// it concurrently — failing with `TimedOut` after the configured read
/// timeout, exactly like the blocking server's socket timeout.
struct EvalSource {
    conn: Arc<Conn>,
    notifier: Arc<Notifier>,
    decoder: FrameDecoder,
    /// Decoded-but-unparsed XML payload bytes.
    parse: Vec<u8>,
    pos: usize,
    ended: bool,
    scanner: HorizonScanner,
    state: Rc<RefCell<SourceState>>,
    /// Durable sessions append every incoming `DATA` payload here *before*
    /// the engine sees the bytes (write-ahead). Replayed bytes preloaded
    /// at resume bypass this hook, so they are never logged twice. A WAL
    /// append failure fails the read (and so the session): input the
    /// engine consumed but the log lost could not be replayed.
    log: Option<Rc<RefCell<SessionLog>>>,
    read_timeout: Option<Duration>,
    /// An ingest error found by the scheduler's probe, surfaced at the
    /// next read so the reader's error path classifies it normally.
    pending_err: Option<std::io::Error>,
}

impl EvalSource {
    fn violation(&mut self, v: ProtocolError) -> std::io::Error {
        let msg = v.to_string();
        self.state.borrow_mut().violation = Some(v);
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }

    /// Feed already-logged bytes (a resume's WAL tail, or the first `DATA`
    /// payload a fresh durable session write-ahead-logged before opening
    /// the source) without passing through the WAL hook.
    fn preload(&mut self, bytes: &[u8]) {
        self.scanner.scan(bytes);
        self.parse.extend_from_slice(bytes);
    }

    fn buffered(&self) -> usize {
        self.parse.len() - self.pos
    }

    /// Can the next `Reader` pull complete without blocking? `consumed` is
    /// the reader's absolute position. True when an ingest error is
    /// pending (the pull surfaces it), the stream ended (EOF paths run),
    /// a complete event construct lies past the reader's position, or the
    /// [`PARSE_CAP`] escape tripped.
    fn pull_ready(&self, consumed: u64) -> bool {
        self.pending_err.is_some()
            || self.ended
            || consumed < self.scanner.horizon()
            || self.buffered() >= PARSE_CAP
    }

    /// Drain the inbox through the frame decoder into the parse buffer,
    /// write-ahead logging and horizon-scanning each payload. Returns
    /// whether any progress was made (bytes, EOF, or an error became
    /// visible).
    fn ingest(&mut self) -> std::io::Result<bool> {
        if self.ended {
            return Ok(false);
        }
        let (drained, hangup, socket_err) = {
            let mut inbox = self.conn.inbox.lock().expect("inbox lock poisoned");
            let drained = !inbox.buf.is_empty();
            if drained {
                self.decoder.push(&inbox.buf);
                inbox.buf.clear();
            }
            (drained, inbox.ended, inbox.error)
        };
        if drained {
            self.conn.note_inbox_drained(&self.notifier);
        }
        let mut progress = drained;
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    self.conn.note_frame_complete();
                    match frame.kind {
                        FrameKind::Data => {
                            if let Some(log) = &self.log {
                                log.borrow_mut().append_data(&frame.payload)?;
                            }
                            self.scanner.scan(&frame.payload);
                            if self.pos == self.parse.len() {
                                self.parse.clear();
                                self.pos = 0;
                            }
                            self.parse.extend_from_slice(&frame.payload);
                            progress = true;
                        }
                        FrameKind::End => {
                            if let Some(log) = &self.log {
                                log.borrow_mut().append_end()?;
                            }
                            self.ended = true;
                            return Ok(true);
                        }
                        other => return Err(self.violation(ProtocolError::UnexpectedKind(other))),
                    }
                }
                Ok(None) => break,
                Err(p) => return Err(self.violation(p)),
            }
        }
        // Surface decoded bytes before any termination condition: the
        // blocking reader would consume buffered data first and only then
        // hit the socket error or truncation. Both are sticky in the inbox
        // and re-observed by the next ingest once no progress is possible.
        if progress {
            return Ok(true);
        }
        if let Some(kind) = socket_err {
            return Err(std::io::Error::from(kind));
        }
        if hangup {
            if self.decoder.mid_frame() {
                // Parity with the blocking `read_frame`: a cut-off frame
                // header is a protocol-level truncation, a cut-off payload
                // is an I/O-level unexpected EOF.
                if self.decoder.buffered() < 5 {
                    return Err(self.violation(ProtocolError::TruncatedFrame));
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            // Hangup at a frame boundary: same as END — the XML layer
            // decides whether the byte stream was complete.
            self.ended = true;
            progress = true;
        }
        Ok(progress)
    }

    /// Scheduler-side ingest: refresh the horizon/EOF state without a
    /// reader pull in flight. Errors are parked and surfaced by the next
    /// read, so they flow through the reader's normal error path.
    fn poll_ingest(&mut self) {
        if self.pending_err.is_some() {
            return;
        }
        if let Err(e) = self.ingest() {
            self.pending_err = Some(e);
        }
    }

    /// The bounded blocking fallback: wait on the inbox condvar until
    /// bytes, EOF, an error, or the read deadline.
    fn wait_for_input(&self) -> std::io::Result<()> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let mut inbox = self.conn.inbox.lock().expect("inbox lock poisoned");
        loop {
            if !inbox.buf.is_empty() || inbox.ended || inbox.error.is_some() {
                return Ok(());
            }
            if self.conn.killed.load(Ordering::Relaxed) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "connection closed by the server",
                ));
            }
            let step = Duration::from_millis(200);
            let wait = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "read timed out waiting for DATA frames",
                        ));
                    }
                    (d - now).min(step)
                }
                None => step,
            };
            let (guard, _) = self
                .conn
                .inbox_ready
                .wait_timeout(inbox, wait)
                .expect("inbox lock poisoned");
            inbox = guard;
        }
    }
}

impl Read for EvalSource {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        // A zero-length read must not reach the EOF paths below: `Ok(0)`
        // with buffered or still-arriving frames would read as end of
        // stream and silently truncate the document.
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            if self.pos < self.parse.len() {
                let n = (self.parse.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.parse[self.pos..self.pos + n]);
                self.pos += n;
                if self.pos == self.parse.len() {
                    self.parse.clear();
                    self.pos = 0;
                }
                return Ok(n);
            }
            // A parked scheduler-probe error surfaces only once the decoded
            // bytes ahead of it were consumed, like the blocking reader.
            if let Some(e) = self.pending_err.take() {
                return Err(e);
            }
            if self.ended {
                return Ok(0);
            }
            if self.ingest()? {
                continue;
            }
            self.wait_for_input()?;
        }
    }
}

/// The register phase's working state.
struct RegisterPhase {
    decoder: FrameDecoder,
    queries: Vec<(String, Rpeq)>,
}

/// The eval phase's working state.
///
/// `run` borrows `plan` (through the `Arc`) and `sinks` (through the
/// boxes) with `'static` lifetimes conjured in [`init_run`]; the field
/// order makes the compiler drop `run` before either referent, and the
/// referents are heap allocations whose addresses survive moves of this
/// struct (it lives in a `Box` regardless). `plan` and `sinks` are never
/// otherwise touched while `run` is alive.
struct EvalPhase {
    run: Option<spex_core::EngineRun<'static, 'static>>,
    reader: Reader<EvalSource>,
    plan: Arc<SharedQuerySet>,
    sinks: Vec<Box<dyn ResultSink>>,
    quarantines: Vec<Rc<RefCell<Quarantine>>>,
    delivery: Rc<RefCell<Delivery>>,
    names: Vec<String>,
    durable: Option<DurableCtx>,
    source_state: Rc<RefCell<SourceState>>,
    documents: u64,
}

enum Phase {
    Register(RegisterPhase),
    Eval(Box<EvalPhase>),
    Finished,
}

/// What a register step decided.
enum Step {
    /// Yield this outcome to the worker.
    Ready(Advance),
    /// The machine transitioned into the eval phase; keep advancing.
    Enter,
}

/// One connection's protocol state machine. Created by the pinned worker
/// when the connection's first bytes arrive; dropped when
/// [`SessionMachine::advance`] returns [`Advance::Done`].
pub(crate) struct SessionMachine {
    conn: Arc<Conn>,
    shared: Arc<Shared>,
    shutdown_allowed: bool,
    span: spex_trace::Span,
    state: Phase,
}

impl SessionMachine {
    pub(crate) fn new(conn: Arc<Conn>, shared: Arc<Shared>) -> SessionMachine {
        let span = shared.trace.tracer.span("serve.session");
        let shutdown_allowed = shutdown_permitted(shared.cfg.allow_remote_shutdown, conn.peer);
        let max_frame = shared.cfg.max_frame;
        SessionMachine {
            conn,
            shared,
            shutdown_allowed,
            span,
            state: Phase::Register(RegisterPhase {
                decoder: FrameDecoder::new(max_frame),
                queries: Vec::new(),
            }),
        }
    }

    /// Run until the session suspends or finishes. Never blocks while the
    /// horizon gate holds; bounded by the CPU slice and the outbound
    /// watermark.
    pub(crate) fn advance(&mut self) -> Advance {
        if self.conn.killed.load(Ordering::Relaxed) && !matches!(self.state, Phase::Finished) {
            // The reactor hard-closed the socket (write deadline,
            // shutdown): there is no peer left to talk to.
            return self.conclude(None, SessionEnd::Failed, false);
        }
        loop {
            match std::mem::replace(&mut self.state, Phase::Finished) {
                Phase::Register(reg) => match self.step_register(reg) {
                    Step::Ready(adv) => return adv,
                    Step::Enter => continue,
                },
                Phase::Eval(phase) => return self.step_eval(phase),
                Phase::Finished => return Advance::NeedInput,
            }
        }
    }

    /// Queue the closing frames (unless `silent`), stamp the span and
    /// finish.
    fn conclude(
        &mut self,
        error: Option<&SessionError>,
        end: SessionEnd,
        send_frames: bool,
    ) -> Advance {
        if send_frames {
            close_frames(&self.conn, error);
        }
        self.span.set_attr(
            "end",
            match end {
                SessionEnd::Completed => "completed",
                SessionEnd::Failed => "failed",
            },
        );
        self.state = Phase::Finished;
        Advance::Done(end)
    }

    // --- Register phase -------------------------------------------------

    fn step_register(&mut self, mut reg: RegisterPhase) -> Step {
        let (hangup, socket_err) = {
            let mut inbox = self.conn.inbox.lock().expect("inbox lock poisoned");
            if !inbox.buf.is_empty() {
                reg.decoder.push(&inbox.buf);
                inbox.buf.clear();
            }
            (inbox.ended, inbox.error)
        };
        self.conn.note_inbox_drained(&self.shared.notifier);
        loop {
            match reg.decoder.next_frame() {
                Ok(Some(frame)) => {
                    if self.conn.note_frame_complete() {
                        self.shared
                            .trace
                            .accept_to_first_frame_us
                            .record(self.conn.accepted_at.elapsed().as_micros() as u64);
                    }
                    match frame.kind {
                        FrameKind::Register => register_one(&frame, &mut reg.queries, &self.conn),
                        FrameKind::Resume => {
                            return match handle_resume(&frame, &self.shared, &mut reg.queries) {
                                Ok(prep) => {
                                    self.enter_eval(reg, FirstInput::Resume(Box::new(prep)))
                                }
                                Err(e) => {
                                    Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true))
                                }
                            };
                        }
                        FrameKind::Stats => {
                            let json = self.shared.stats.to_json();
                            self.conn.send_frame(FrameKind::Stat, json.as_bytes());
                        }
                        FrameKind::TraceRequest => {
                            let json = self.shared.trace.to_json();
                            self.conn.send_frame(FrameKind::Trace, json.as_bytes());
                        }
                        FrameKind::Shutdown => {
                            // Loopback peers (or all peers, when the
                            // operator opted in) may stop the server;
                            // anyone else gets a refusal that leaves their
                            // session usable — otherwise a single
                            // unauthenticated remote frame is a denial of
                            // service.
                            if self.shutdown_allowed {
                                self.shared.begin_shutdown();
                                self.conn.send_frame(FrameKind::Ok, b"shutdown");
                            } else {
                                self.conn.send_frame(
                                    FrameKind::Error,
                                    &error_payload(
                                        "usage",
                                        1,
                                        "shutdown is not permitted from this peer",
                                    ),
                                );
                            }
                        }
                        FrameKind::Data => {
                            return self.enter_eval(
                                reg,
                                FirstInput::Fresh {
                                    first_data: Some(frame.payload),
                                },
                            );
                        }
                        FrameKind::End => {
                            return self.enter_eval(reg, FirstInput::Fresh { first_data: None });
                        }
                        other => {
                            let e = SessionError::protocol(
                                ProtocolError::UnexpectedKind(other).to_string(),
                            );
                            return Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true));
                        }
                    }
                }
                Ok(None) => {
                    // Socket-level failure: silent close, like the
                    // blocking server's `Err(ReadError::Io)` arm.
                    if socket_err.is_some() {
                        return Step::Ready(self.conclude(None, SessionEnd::Failed, false));
                    }
                    if hangup {
                        if reg.decoder.mid_frame() {
                            if reg.decoder.buffered() < 5 {
                                let e = SessionError::protocol(
                                    ProtocolError::TruncatedFrame.to_string(),
                                );
                                return Step::Ready(self.conclude(
                                    Some(&e),
                                    SessionEnd::Failed,
                                    true,
                                ));
                            }
                            return Step::Ready(self.conclude(None, SessionEnd::Failed, false));
                        }
                        // Clean hangup before streaming: a stats-only or
                        // no-op connection ran to completion.
                        return Step::Ready(self.conclude(None, SessionEnd::Completed, false));
                    }
                    self.state = Phase::Register(reg);
                    return Step::Ready(Advance::NeedInput);
                }
                Err(p) => {
                    let e = SessionError::protocol(p.to_string());
                    return Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true));
                }
            }
        }
    }

    // --- Register → eval transition -------------------------------------

    fn enter_eval(&mut self, reg: RegisterPhase, first: FirstInput) -> Step {
        let RegisterPhase { decoder, queries } = reg;
        // Canonicalize the registration list once (sorted by name +
        // canonical expression, duplicates dropped): from here on every
        // positional index — plan sinks, delivered/suppress counters,
        // durable queries.txt lines, resume received-counts — speaks the
        // combiner's logical query order, whatever order the client
        // registered in. A session registering nothing adopts the server's
        // preloaded standing set (the CLI's `--queries FILE`), if any.
        let queries = if queries.is_empty() {
            if self.shared.cfg.preload_queries.is_empty() {
                let e = SessionError::usage("no queries registered before DATA/END");
                return Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true));
            }
            self.shared.cfg.preload_queries.clone()
        } else {
            spex_combine::canonicalize_registrations(&queries)
        };

        let plan = match self.shared.registry.get_or_compile(&queries) {
            Ok((plan, hit)) => {
                let counter = if hit {
                    &self.shared.stats.plan_cache_hits
                } else {
                    &self.shared.stats.plan_cache_misses
                };
                counter.fetch_add(1, Ordering::Relaxed);
                plan
            }
            Err(e) => {
                let e = SessionError::usage(e.to_string());
                return Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true));
            }
        };

        // --- Durable state ----------------------------------------------
        // Resumes carry their recovered WAL tail as the preloaded byte
        // buffer; fresh sessions under `--durable-dir` mint a token, open
        // a log and write-ahead the first DATA payload already in hand.
        let (durable_ctx, preload, source_ended) = match first {
            FirstInput::Resume(prep) => {
                let (ctx, replay, replay_ended) = *prep;
                // The durable input byte count, announced before any
                // replayed result frames so the client knows where to
                // continue its stream from.
                let total = ctx.log.borrow().total_bytes();
                self.conn
                    .send_frame(FrameKind::ResumeOk, &total.to_be_bytes());
                (Some(ctx), replay, replay_ended)
            }
            FirstInput::Fresh { first_data } => {
                let was_end = first_data.is_none();
                let preload = first_data.unwrap_or_default();
                match self.shared.cfg.durable_dir.as_deref() {
                    Some(root) => {
                        let root = PathBuf::from(root);
                        let token =
                            durable::new_token(self.shared.seq.fetch_add(1, Ordering::Relaxed));
                        let exprs: Vec<(String, String)> = queries
                            .iter()
                            .map(|(n, q)| (n.clone(), q.to_string()))
                            .collect();
                        let log = SessionLog::create(&root, &token, &exprs, self.shared.cfg.fsync)
                            .and_then(|mut log| {
                                if was_end {
                                    log.append_end()?;
                                } else {
                                    log.append_data(&preload)?;
                                }
                                Ok(log)
                            });
                        match log {
                            Ok(log) => {
                                self.conn.send_frame(
                                    FrameKind::Ok,
                                    format!("session={token}").as_bytes(),
                                );
                                let ctx = DurableCtx {
                                    root,
                                    token,
                                    log: Rc::new(RefCell::new(log)),
                                    snapshot: None,
                                    session: SessionState::default(),
                                    suppress: vec![0; queries.len()],
                                };
                                (Some(ctx), preload, was_end)
                            }
                            Err(e) => {
                                let e = SessionError::new(
                                    "io",
                                    3,
                                    format!("opening the durable session log failed: {e}"),
                                );
                                return Step::Ready(self.conclude(
                                    Some(&e),
                                    SessionEnd::Failed,
                                    true,
                                ));
                            }
                        }
                    }
                    None => (None, preload, was_end),
                }
            }
        };

        // --- Build the eval pipeline ------------------------------------
        let recovering = self.shared.cfg.recovery != RecoveryPolicy::Strict;
        let source_state = Rc::new(RefCell::new(SourceState::default()));
        let resume_point = durable_ctx.as_ref().and_then(|d| {
            d.snapshot.as_ref().map(|_| {
                (
                    d.session.reader_emitted,
                    d.session.position,
                    d.session.lt_consumed,
                )
            })
        });
        let scanner = match resume_point {
            Some((_, position, lt_consumed)) => {
                HorizonScanner::resume(position.offset, lt_consumed)
            }
            None => HorizonScanner::new(),
        };
        let mut source = EvalSource {
            conn: Arc::clone(&self.conn),
            notifier: Arc::clone(&self.shared.notifier),
            decoder,
            parse: Vec::new(),
            pos: 0,
            ended: source_ended,
            scanner,
            state: Rc::clone(&source_state),
            log: durable_ctx.as_ref().map(|d| Rc::clone(&d.log)),
            read_timeout: self.shared.cfg.read_timeout,
            pending_err: None,
        };
        source.preload(&preload);
        drop(preload);

        let mut reader = Reader::new(source)
            .multi_document()
            .with_scanner(self.shared.cfg.scanner);
        if recovering {
            reader = reader.with_recovery(self.shared.cfg.recovery);
        }
        if let Some((emitted, position, lt_consumed)) = resume_point {
            // The preloaded WAL tail starts exactly at the snapshot's byte
            // offset; the reader continues in the original coordinates.
            reader = reader.resume_at(emitted, position, lt_consumed);
        }

        let names: Vec<String> = plan.ids().to_vec();
        let nq = names.len();
        let delivery = {
            let mut delivered = durable_ctx
                .as_ref()
                .map(|d| d.session.delivered.clone())
                .unwrap_or_default();
            delivered.resize(nq, 0);
            let mut suppress = durable_ctx
                .as_ref()
                .map(|d| d.suppress.clone())
                .unwrap_or_default();
            suppress.resize(nq, 0);
            Rc::new(RefCell::new(Delivery {
                delivered,
                suppress,
            }))
        };

        // Under a recovery policy every fragment is quarantined until the
        // damage intervals are known; under `strict` fragments stream
        // straight into result frames. Quarantines sit behind
        // `Rc<RefCell>` so the checkpoint hook can export them while the
        // run holds the sink borrow.
        let mut quarantines: Vec<Rc<RefCell<Quarantine>>> = Vec::new();
        let sinks: Vec<Box<dyn ResultSink>> = if recovering {
            quarantines = (0..nq)
                .map(|_| Rc::new(RefCell::new(Quarantine::new())))
                .collect();
            if let Some(d) = &durable_ctx {
                for (q, frags) in quarantines.iter().zip(d.session.quarantines.iter()) {
                    q.borrow_mut().import_fragments(frags.clone());
                }
            }
            quarantines
                .iter()
                .map(|q| Box::new(SharedQuarantine(Rc::clone(q))) as Box<dyn ResultSink>)
                .collect()
        } else {
            names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    Box::new(frame_sink(
                        name.clone(),
                        Arc::clone(&self.conn),
                        i,
                        Rc::clone(&delivery),
                    )) as Box<dyn ResultSink>
                })
                .collect()
        };

        let mut phase = Box::new(EvalPhase {
            run: None,
            reader,
            plan,
            sinks,
            quarantines,
            delivery,
            names,
            durable: durable_ctx,
            source_state,
            documents: 0,
        });
        init_run(&mut phase, &self.shared);

        if let Some(d) = &phase.durable {
            if let Some(snap) = &d.snapshot {
                let mut span = self.shared.trace.tracer.span("serve.restore");
                span.set_attr("token", d.token.as_str());
                let restored = phase
                    .run
                    .as_mut()
                    .expect("run initialized above")
                    .restore(snap);
                if let Err(e) = restored {
                    drop(phase.run.take());
                    let e = SessionError::new(
                        "io",
                        3,
                        format!("restoring the durable snapshot failed: {e}"),
                    );
                    return Step::Ready(self.conclude(Some(&e), SessionEnd::Failed, true));
                }
            }
        }
        self.state = Phase::Eval(phase);
        Step::Enter
    }

    // --- Eval phase ------------------------------------------------------

    fn step_eval(&mut self, mut phase: Box<EvalPhase>) -> Advance {
        let mut events = 0usize;
        loop {
            if events >= SLICE_EVENTS {
                self.state = Phase::Eval(phase);
                return Advance::Working;
            }
            if self.conn.outbound_pending() > OUT_HIGH {
                self.state = Phase::Eval(phase);
                return Advance::NeedWrite;
            }
            if !phase.reader.has_ready_event()
                && !phase
                    .reader
                    .source()
                    .pull_ready(phase.reader.position().offset)
            {
                phase.reader.source_mut().poll_ingest();
                if !phase.reader.has_ready_event()
                    && !phase
                        .reader
                        .source()
                        .pull_ready(phase.reader.position().offset)
                {
                    self.state = Phase::Eval(phase);
                    return Advance::NeedInput;
                }
            }
            let run = phase.run.as_mut().expect("run lives through the eval loop");
            match phase.reader.next_into(run.store_mut()) {
                Ok(Some(id)) => {
                    events += 1;
                    let end_of_document = run.store().stored(id).kind == StoredKind::EndDocument;
                    if let Err(e) = run.try_push_id(id) {
                        return self.finish_eval(phase, Some(e));
                    }
                    if end_of_document {
                        phase.documents += 1;
                        // Long-lived connection hygiene: drop the
                        // document's interned symbols and candidate state
                        // before the next document on the same stream.
                        run.reset_session();
                        if let Some(d) = &phase.durable {
                            checkpoint(
                                d,
                                run,
                                &phase.reader,
                                &phase.quarantines,
                                &phase.delivery,
                                phase.documents,
                                &self.shared,
                            );
                        }
                    }
                }
                Ok(None) => return self.finish_eval(phase, None),
                Err(e) => {
                    // An I/O failure that is really a peer protocol
                    // violation is re-classified below via the
                    // SourceState.
                    return self.finish_eval(phase, Some(EvalError::Xml(e)));
                }
            }
        }
    }

    /// The closing sequence, ported from the blocking server: harvest the
    /// run, drain recovery quarantines (faults first), settle durable
    /// state, then queue `STAT` + optional error + `END`.
    fn finish_eval(&mut self, mut phase: Box<EvalPhase>, error: Option<EvalError>) -> Advance {
        let shared = Arc::clone(&self.shared);
        shared
            .stats
            .documents
            .fetch_add(phase.documents, Ordering::Relaxed);

        let run = phase.run.take().expect("run lives until finish");
        let exhausted = run.exhausted();
        // Fold this session's determination latency into the server-wide
        // aggregate behind the `T` frame. This must happen while the run
        // is live; `</$>` boundaries already harvested every closed
        // document, so only the tail of a truncated stream is missing
        // here.
        for (_, hist) in run.determination_latency() {
            shared.trace.det_latency.merge(&hist);
        }
        // A malformed or cut-off stream leaves undetermined candidates
        // behind; `finish_full` asserts balance, so an errored run is
        // snapshotted and dropped instead of finished (a resource breach
        // is different: the run drained cleanly and can finish).
        let (stats, transducers) = if matches!(error, Some(EvalError::Xml(_))) {
            let stats = run.stats().clone();
            let transducers = run.transducer_stats().to_vec();
            drop(run);
            (stats, transducers)
        } else {
            run.finish_full()
        };
        shared.stats.absorb_engine(&stats);

        let recovering = shared.cfg.recovery != RecoveryPolicy::Strict;
        let report = if recovering {
            // A resumed session re-reports the faults recorded before the
            // crash: damage intervals must stay complete for the final
            // drain.
            let mut faults = phase
                .durable
                .as_ref()
                .map(|d| d.session.faults.clone())
                .unwrap_or_default();
            faults.extend(phase.reader.take_faults());
            let truncated = faults
                .iter()
                .any(|f| f.kind == spex_xml::FaultKind::Truncated);
            // Faults first, so a client sees why fragments were withheld
            // before the surviving results arrive.
            for fault in &faults {
                self.conn
                    .send_frame(FrameKind::Fault, fault_json(fault).as_bytes());
            }
            let mut delivered = 0u64;
            let mut dropped = 0u64;
            for (i, (q, name)) in phase.quarantines.iter().zip(&phase.names).enumerate() {
                let mut sink = frame_sink(
                    name.clone(),
                    Arc::clone(&self.conn),
                    i,
                    Rc::clone(&phase.delivery),
                );
                let (d, p) =
                    q.borrow_mut()
                        .drain_into(&faults, shared.cfg.on_truncation, &mut sink);
                delivered += d;
                dropped += p;
            }
            shared
                .stats
                .absorb_faults(&faults, truncated, delivered, dropped);
            Some(RunReport {
                faults,
                truncated,
                results: delivered,
                dropped,
                exhausted,
                stats: stats.clone(),
                transducers: transducers.clone(),
            })
        } else {
            None
        };

        let session_error = error
            .as_ref()
            .map(|e| classify(e, phase.source_state.borrow().violation.as_ref()));

        if let Some(d) = &phase.durable {
            let log = d.log.borrow();
            shared
                .trace
                .tracer
                .counter("wal.bytes", log.wal_bytes_written());
            let ended_clean = log.ended();
            drop(log);
            // A clean END means the session is over and will never be
            // resumed; a hangup or error keeps the durable state for a
            // later `M` frame.
            if session_error.is_none() && ended_clean {
                let _ = durable::remove(&d.root, &d.token);
            }
        }

        let json = stats_json(&stats, &transducers, report.as_ref());
        self.conn.send_frame(FrameKind::Stat, json.as_bytes());
        let end = if session_error.is_some() {
            SessionEnd::Failed
        } else {
            SessionEnd::Completed
        };
        self.conclude(session_error.as_ref(), end, true)
    }
}

/// The register-phase input handoff into the eval phase.
enum FirstInput {
    Fresh {
        /// The first `DATA` payload (`None` when `END` arrived first).
        first_data: Option<Vec<u8>>,
    },
    Resume(Box<(DurableCtx, Vec<u8>, bool)>),
}

/// Conjure the `'static` borrows the [`EvalPhase`] run needs from its
/// sibling fields and start the engine run. The one `unsafe` island in the
/// server crate.
#[allow(unsafe_code)]
fn init_run(phase: &mut EvalPhase, shared: &Shared) {
    // SAFETY: `plan` is kept alive by the `Arc` stored in the same
    // `EvalPhase` as the run, and the `Arc`'s pointee never moves; the
    // sink boxes likewise live in `phase.sinks` until the run is dropped,
    // and a `Box`'s pointee never moves. The field order in `EvalPhase`
    // drops `run` before `plan`/`sinks`, and no other code touches
    // `phase.plan`/`phase.sinks` while `run` is `Some` — so the conjured
    // `'static` references are valid for the run's entire life and never
    // aliased.
    let plan_ref: &'static SharedQuerySet = unsafe { &*Arc::as_ptr(&phase.plan) };
    let sink_refs: Vec<&'static mut dyn ResultSink> = phase
        .sinks
        .iter_mut()
        .map(|b| unsafe { &mut *(b.as_mut() as *mut dyn ResultSink) })
        .collect();
    let mut run = plan_ref.run_engine_with_limits(shared.cfg.engine, sink_refs, shared.cfg.limits);
    run.set_tracer(shared.trace.tracer.clone());
    phase.run = Some(run);
}

/// Handle an `M` frame: validate it, read the session's durable state back
/// (queries, latest snapshot, longest-valid WAL prefix) and reopen the log
/// for appending. Returns the assembled [`DurableCtx`], the WAL tail to
/// replay (input bytes past the snapshot's resume offset) and whether the
/// WAL already holds the end-of-stream marker.
fn handle_resume(
    frame: &Frame,
    shared: &Arc<Shared>,
    queries: &mut Vec<(String, Rpeq)>,
) -> Result<(DurableCtx, Vec<u8>, bool), SessionError> {
    let io_err = |what: &str| {
        let what = what.to_string();
        move |e: std::io::Error| SessionError::new("io", 3, format!("{what}: {e}"))
    };
    let Some(root) = shared.cfg.durable_dir.as_deref() else {
        return Err(SessionError::usage(
            "resume requires a server started with --durable-dir",
        ));
    };
    let root = PathBuf::from(root);
    let Some((version, token, received)) = split_resume(&frame.payload) else {
        return Err(SessionError::protocol("malformed RESUME payload"));
    };
    if version != RESUME_VERSION {
        return Err(SessionError::protocol(format!(
            "unsupported resume version {version} (this server speaks version {RESUME_VERSION})"
        )));
    }
    if !durable::valid_token(token) {
        return Err(SessionError::usage(format!(
            "invalid session token `{token}`"
        )));
    }
    let recovered =
        durable::recover(&root, token).map_err(io_err("reading durable session state failed"))?;
    let Some(recovered) = recovered else {
        return Err(SessionError::usage(format!(
            "unknown session token `{token}`"
        )));
    };
    // The durable registration is authoritative: a client may resume with
    // no `R` frames at all (the query set is adopted from `queries.txt`),
    // but if it did re-register, the sets must agree — resuming a session
    // under a different query set would silently change its meaning.
    let recovered_queries: Vec<(String, Rpeq)> = recovered
        .queries
        .iter()
        .map(|(name, expr)| {
            let q = expr.parse::<Rpeq>().map_err(|e| {
                SessionError::new("io", 3, format!("durable queries.txt is corrupt: {e}"))
            })?;
            Ok((name.clone(), q))
        })
        .collect::<Result<_, SessionError>>()?;
    // queries.txt is written canonicalized; canonicalize again anyway so
    // the positional index math below cannot drift from the plan's order.
    let recovered_queries = spex_combine::canonicalize_registrations(&recovered_queries);
    if recovered_queries.is_empty() {
        return Err(SessionError::new(
            "io",
            3,
            "durable queries.txt holds no queries",
        ));
    }
    if !queries.is_empty() {
        // Compare canonical forms: a resume may re-register the same set in
        // any order or spelling.
        let registered: Vec<(String, String)> = spex_combine::canonicalize_registrations(queries)
            .iter()
            .map(|(n, q)| (n.clone(), q.to_string()))
            .collect();
        let durable: Vec<(String, String)> = recovered_queries
            .iter()
            .map(|(n, q)| (n.clone(), q.to_string()))
            .collect();
        if registered != durable {
            return Err(SessionError::usage(format!(
                "resume registration does not match session `{token}` \
                 ({} registered vs {} durable queries)",
                registered.len(),
                durable.len()
            )));
        }
    }
    *queries = recovered_queries;
    if received.len() != queries.len() {
        return Err(SessionError::usage(format!(
            "resume carries {} received counts for {} queries",
            received.len(),
            queries.len()
        )));
    }
    let wal_start = durable::recovered_wal_start(&root, token)
        .map_err(io_err("reading durable WAL segments failed"))?;
    let total = wal_start + recovered.wal.len() as u64;

    // Decode the snapshot, tolerating corruption: a bad snapshot falls back
    // to replaying the whole WAL (possible until pruning discards early
    // segments) — a structured error either way, never a panic.
    let mut snapshot: Option<Snapshot> = None;
    let mut session = SessionState::default();
    if let Some(bytes) = &recovered.snapshot {
        if let Ok(snap) = Snapshot::decode(bytes) {
            match &snap.session {
                Some(s) if s.position.offset >= wal_start && s.position.offset <= total => {
                    session = s.clone();
                    snapshot = Some(snap);
                }
                _ => {}
            }
        }
    }
    if snapshot.is_none() && wal_start > 0 {
        return Err(SessionError::new(
            "io",
            3,
            "durable snapshot is unusable and early WAL segments were pruned",
        ));
    }
    let replay = recovered.wal[(session.position.offset - wal_start) as usize..].to_vec();
    let mut suppress = vec![0u64; queries.len()];
    for (i, s) in suppress.iter_mut().enumerate() {
        let base = session.delivered.get(i).copied().unwrap_or(0);
        *s = received[i].saturating_sub(base);
    }
    session.delivered.resize(queries.len(), 0);
    let log = SessionLog::append_after(&root, token, total, recovered.ended, shared.cfg.fsync)
        .map_err(io_err("reopening the durable session log failed"))?;
    let ended = recovered.ended;
    Ok((
        DurableCtx {
            root,
            token: token.to_string(),
            log: Rc::new(RefCell::new(log)),
            snapshot,
            session,
            suppress,
        },
        replay,
        ended,
    ))
}

/// Handle one `REGISTER` frame; acknowledges with `k` (payload = name) or
/// an `e` frame that leaves the session usable.
fn register_one(frame: &Frame, queries: &mut Vec<(String, Rpeq)>, conn: &Conn) {
    let reject = |message: String| {
        conn.send_frame(FrameKind::Error, &error_payload("usage", 1, &message));
    };
    let Ok(text) = std::str::from_utf8(&frame.payload) else {
        reject("registration is not valid UTF-8".to_string());
        return;
    };
    let Some((name, expr)) = text.split_once('=') else {
        reject(format!(
            "registration `{text}` is not of the form name=expr"
        ));
        return;
    };
    if name.is_empty() || name.len() > 255 {
        reject(format!("query name `{name}` must be 1..=255 bytes"));
        return;
    }
    if queries.iter().any(|(n, _)| n == name) {
        reject(format!("query name `{name}` is already registered"));
        return;
    }
    match expr.parse::<Rpeq>() {
        Ok(q) => {
            queries.push((name.to_string(), q));
            conn.send_frame(FrameKind::Ok, name.as_bytes());
        }
        Err(e) => reject(format!("query `{expr}`: {e}")),
    }
}

/// Build the per-query result-frame sink: fragment bytes (plus the
/// newline, matching the one-shot CLI's per-line output) behind the query
/// name header. Every fragment bumps the shared delivery counter; while
/// `suppress[idx]` is positive the fragment is a replay the client already
/// holds, so it is counted but not sent.
fn frame_sink(
    name: String,
    conn: Arc<Conn>,
    idx: usize,
    delivery: Rc<RefCell<Delivery>>,
) -> FragmentFnSink<impl FnMut(&[u8]) + 'static> {
    FragmentFnSink::new(move |fragment: &[u8]| {
        {
            let mut d = delivery.borrow_mut();
            d.delivered[idx] += 1;
            if d.suppress[idx] > 0 {
                d.suppress[idx] -= 1;
                return;
            }
        }
        let mut payload = result_payload(&name, fragment);
        payload.push(b'\n');
        conn.send_frame(FrameKind::Result, &payload);
    })
}

/// Document-boundary checkpoint: snapshot the quiescent run plus the
/// session bookkeeping (faults, quarantines, delivery counts, reader
/// resume point), then durably persist and prune the WAL. All disk
/// failures are absorbed — a failed checkpoint costs replay time on the
/// next resume, never the live session.
fn checkpoint<R: Read>(
    d: &DurableCtx,
    run: &mut spex_core::EngineRun<'_, '_>,
    reader: &Reader<R>,
    quarantines: &[Rc<RefCell<Quarantine>>],
    delivery: &Rc<RefCell<Delivery>>,
    documents: u64,
    shared: &Arc<Shared>,
) {
    let mut span = shared.trace.tracer.span("serve.checkpoint");
    span.set_attr("token", d.token.as_str());
    let mut snap = match run.checkpoint() {
        Ok(snap) => snap,
        // Not quiescent (should not happen at `</$>`) — skip this boundary.
        Err(_) => return,
    };
    let (reader_emitted, position, lt_consumed) = reader.resume_point();
    snap.session = Some(SessionState {
        faults: reader.faults().to_vec(),
        quarantines: quarantines
            .iter()
            .map(|q| q.borrow().export_fragments())
            .collect(),
        delivered: delivery.borrow().delivered.clone(),
        reader_emitted,
        position,
        lt_consumed,
        documents: d.session.documents + documents,
    });
    let bytes = snap.encode();
    let mut log = d.log.borrow_mut();
    let _ = log.sync_for_document();
    let _ = log.write_snapshot(&bytes);
    let _ = log.prune(position.offset);
}

/// One fault as a line of JSON (same field names as the one-shot schema's
/// `first`/`last` entries, plus the action and detail).
fn fault_json(fault: &spex_xml::Fault) -> String {
    format!(
        "{{\"kind\":\"{}\",\"offset\":{},\"line\":{},\"column\":{},\"action\":\"{}\",\"detail\":\"{}\"}}",
        fault.kind.as_str(),
        fault.position.offset,
        fault.position.line,
        fault.position.column,
        fault.action.as_str(),
        spex_core::json_escape(&fault.detail),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::Poller;
    use crate::protocol::write_frame;

    #[test]
    fn shutdown_gate_trusts_loopback_peers_only() {
        let lo4: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        let lo6: std::net::SocketAddr = "[::1]:1".parse().unwrap();
        let remote: std::net::SocketAddr = "10.0.0.9:1".parse().unwrap();
        assert!(shutdown_permitted(false, Some(lo4)));
        assert!(shutdown_permitted(false, Some(lo6)));
        assert!(!shutdown_permitted(false, Some(remote)));
        assert!(!shutdown_permitted(false, None));
        assert!(shutdown_permitted(true, Some(remote)));
        assert!(shutdown_permitted(true, None));
    }

    fn test_source(conn: Arc<Conn>) -> EvalSource {
        let poller = Poller::new().unwrap();
        EvalSource {
            conn,
            notifier: Arc::new(Notifier::new(poller.waker())),
            decoder: FrameDecoder::new(1024),
            parse: Vec::new(),
            pos: 0,
            ended: false,
            scanner: HorizonScanner::new(),
            state: Rc::new(RefCell::new(SourceState::default())),
            log: None,
            read_timeout: Some(Duration::from_millis(200)),
            pending_err: None,
        }
    }

    /// A zero-length read must not look like EOF — neither with bytes
    /// still buffered nor with frames still arriving.
    #[test]
    fn zero_length_read_is_not_eof() {
        let conn = Arc::new(Conn::new(1, None, 0));
        let mut framed = Vec::new();
        write_frame(&mut framed, FrameKind::Data, b"<a/>").unwrap();
        conn.inbox.lock().unwrap().buf.extend_from_slice(&framed);
        let mut source = test_source(Arc::clone(&conn));
        // Empty buffer, frame pending: an empty read returns 0 without
        // consuming the frame or flipping the EOF state…
        assert_eq!(source.read(&mut []).unwrap(), 0);
        assert!(!source.ended);
        let mut two = [0u8; 2];
        assert_eq!(source.read(&mut two).unwrap(), 2);
        assert_eq!(&two, b"<a");
        // …and mid-buffer an empty read consumes nothing either.
        assert_eq!(source.read(&mut []).unwrap(), 0);
        assert_eq!(source.read(&mut two).unwrap(), 2);
        assert_eq!(&two, b"/>");
        // The horizon tracked the ingested payload: the self-closing tag
        // ends at offset 4.
        assert_eq!(source.scanner.horizon(), 4);
    }

    /// The blocking fallback times out with `TimedOut` (the same class the
    /// blocking server's socket read timeout produced) instead of hanging.
    #[test]
    fn fallback_read_times_out() {
        let conn = Arc::new(Conn::new(2, None, 0));
        let mut source = test_source(conn);
        let mut buf = [0u8; 4];
        let err = source.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    /// A hangup mid-payload is an I/O-class unexpected EOF; a hangup
    /// mid-header is a protocol-class truncation — parity with
    /// `read_frame`.
    #[test]
    fn hangup_truncation_classes_match_blocking_decoder() {
        // Mid-payload: full header promising 10 bytes, only 3 delivered.
        let conn = Arc::new(Conn::new(3, None, 0));
        {
            let mut inbox = conn.inbox.lock().unwrap();
            inbox.buf.push(FrameKind::Data.byte());
            inbox.buf.extend_from_slice(&10u32.to_be_bytes());
            inbox.buf.extend_from_slice(b"abc");
            inbox.ended = true;
        }
        let mut source = test_source(conn);
        let mut buf = [0u8; 4];
        let err = source.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Mid-header: three header bytes then EOF.
        let conn = Arc::new(Conn::new(4, None, 0));
        {
            let mut inbox = conn.inbox.lock().unwrap();
            inbox.buf.extend_from_slice(&[FrameKind::Data.byte(), 0, 0]);
            inbox.ended = true;
        }
        let mut source = test_source(Arc::clone(&conn));
        let err = source.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(matches!(
            source.state.borrow().violation,
            Some(ProtocolError::TruncatedFrame)
        ));
    }
}
