//! One client session: the register phase, the streaming eval phase, and
//! the closing `STAT`/`END` exchange.
//!
//! A session is single-threaded on purpose: the engine's `Run` holds
//! `Rc`-backed state (interned symbols, the variable factory) and is not
//! `Send`, so each worker thread instantiates its own run over the shared
//! (`Send + Sync`) compiled plan from the registry. The frame loop is:
//!
//! 1. **Register**: `R` frames (`name=expr`) are parsed and acknowledged
//!    one by one (`k` with the name, or `e` with a structured error that
//!    does *not* kill the session). `S` answers with server-wide stats;
//!    `Q` requests a graceful server shutdown (honored for loopback peers,
//!    or any peer under `ServerConfig::allow_remote_shutdown`; refused
//!    with an `e` frame otherwise, session left usable).
//! 2. **Eval**: the first `D`/`E` frame freezes the registration and the
//!    plan is fetched from (or compiled into) the shared registry. `D`
//!    payloads are the XML byte stream, chunked arbitrarily — a
//!    [`FrameByteSource`] adapts them to `std::io::Read` so the zero-copy
//!    `Reader::next_into` path runs unchanged. Result fragments stream
//!    back as `r` frames while input is still arriving (SPEX's
//!    progressiveness, per connection). Each `</$>` boundary resets the
//!    session's arena and interned symbols (`Run::reset_session`), so a
//!    long-lived connection stays bounded.
//! 3. **Close**: on `E` (or an error) the server sends any `f` fault
//!    frames (recovery sessions), a `s` stats frame in the one-shot
//!    `--stats-json` schema, and `n`.
//!
//! Errors mirror the one-shot CLI's exit-code classes (`usage`=1,
//! `syntax`=2, `io`=3, `resource`=4) plus `protocol` for frame-grammar
//! violations; an error closes *this* session only.

use crate::durable::{self, SessionLog};
use crate::protocol::{
    error_payload, read_frame, result_payload, split_resume, write_frame, Frame, FrameKind,
    ProtocolError, ReadError, RESUME_VERSION,
};
use crate::server::Shared;
use spex_core::multi::SharedQuerySet;
use spex_core::{
    stats_json, EvalError, FragmentFnSink, Quarantine, ResultSink, RunReport, SessionState,
    Snapshot,
};
use spex_query::Rpeq;
use spex_xml::{Reader, RecoveryPolicy, StoredKind};
use std::cell::RefCell;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// How the session ended, for the server-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionEnd {
    /// Ran to a clean `END` (including stats-only connections).
    Completed,
    /// Closed early by an error (protocol, syntax, I/O, resource).
    Failed,
}

/// A structured session error, mirroring the CLI's exit-code classes.
struct SessionError {
    class: &'static str,
    code: i32,
    message: String,
}

impl SessionError {
    fn new(class: &'static str, code: i32, message: impl Into<String>) -> Self {
        SessionError {
            class,
            code,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        SessionError::new("usage", 1, message)
    }

    fn protocol(message: impl Into<String>) -> Self {
        SessionError::new("protocol", 1, message)
    }
}

/// Classify an engine error exactly like the CLI's exit-code mapping, with
/// `violation` taking precedence: an `EvalError::Xml(Io)` caused by the
/// peer breaking the frame grammar is a protocol error, not an I/O error.
fn classify(err: &EvalError, violation: Option<&ProtocolError>) -> SessionError {
    if let Some(v) = violation {
        return SessionError::protocol(v.to_string());
    }
    match err {
        EvalError::Query(_) | EvalError::Compile(_) => SessionError::usage(err.to_string()),
        EvalError::Xml(e) => {
            if e.kind().is_syntax_class() {
                SessionError::new("syntax", 2, err.to_string())
            } else {
                SessionError::new("io", 3, err.to_string())
            }
        }
        EvalError::ResourceExhausted { .. } => SessionError::new("resource", 4, err.to_string()),
    }
}

/// The session's write half: frames out, first write error kept (sticky),
/// every frame flushed so results are visible progressively.
struct FrameWriter {
    out: BufWriter<TcpStream>,
    error: Option<std::io::Error>,
}

impl FrameWriter {
    fn new(stream: TcpStream) -> Self {
        FrameWriter {
            out: BufWriter::new(stream),
            error: None,
        }
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = write_frame(&mut self.out, kind, payload).and_then(|()| self.out.flush()) {
            self.error = Some(e);
        }
    }
}

type SharedWriter = Rc<RefCell<FrameWriter>>;

/// Side-channel state the [`FrameByteSource`] records for the session to
/// inspect: `spex_xml::XmlError` stringifies I/O errors, so a protocol
/// violation discovered *inside* the reader loop must travel out of band.
#[derive(Default)]
struct SourceState {
    violation: Option<ProtocolError>,
}

/// Adapts the session's `DATA` frames to `std::io::Read` so the engine's
/// zero-copy reader path runs unchanged over the wire. `END` — or the peer
/// hanging up — reads as EOF (a hangup mid-document is then exactly a
/// truncated stream: a syntax error under `strict`, a `truncated` fault
/// under a recovery policy). Any other frame kind mid-stream is a protocol
/// violation, recorded in the shared [`SourceState`].
struct FrameByteSource {
    input: BufReader<TcpStream>,
    max_frame: usize,
    buf: Vec<u8>,
    pos: usize,
    ended: bool,
    state: Rc<RefCell<SourceState>>,
    /// Durable sessions append every incoming `DATA` payload here *before*
    /// the engine sees the bytes (write-ahead). Replayed bytes preloaded
    /// into `buf` at resume are consumed without passing through this hook,
    /// so they are never logged twice. A WAL append failure fails the read
    /// (and so the session): input the engine consumed but the log lost
    /// could not be replayed.
    log: Option<Rc<RefCell<SessionLog>>>,
}

impl FrameByteSource {
    fn violation(&mut self, v: ProtocolError) -> std::io::Error {
        let msg = v.to_string();
        self.state.borrow_mut().violation = Some(v);
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }
}

impl Read for FrameByteSource {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        // A zero-length read must not reach the EOF paths below: `Ok(0)`
        // with buffered or still-arriving frames would read as end of
        // stream and silently truncate the document.
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            if self.pos < self.buf.len() {
                let n = (self.buf.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.ended {
                return Ok(0);
            }
            match read_frame(&mut self.input, self.max_frame) {
                Ok(Some(frame)) => match frame.kind {
                    FrameKind::Data => {
                        if let Some(log) = &self.log {
                            log.borrow_mut().append_data(&frame.payload)?;
                        }
                        self.buf = frame.payload;
                        self.pos = 0;
                    }
                    FrameKind::End => {
                        if let Some(log) = &self.log {
                            log.borrow_mut().append_end()?;
                        }
                        self.ended = true;
                        return Ok(0);
                    }
                    other => return Err(self.violation(ProtocolError::UnexpectedKind(other))),
                },
                // Hangup at a frame boundary: same as END — the XML layer
                // decides whether the byte stream was complete.
                Ok(None) => {
                    self.ended = true;
                    return Ok(0);
                }
                Err(ReadError::Io(e)) => return Err(e),
                Err(ReadError::Protocol(p)) => return Err(self.violation(p)),
            }
        }
    }
}

/// Per-query delivery accounting, shared between every result sink and the
/// checkpoint hook. `delivered[q]` counts all fragments produced for query
/// `q` — including suppressed replays, which the client already holds —
/// so a snapshot's counts line up with what the client received.
/// `suppress[q]` is the number of upcoming fragments to swallow instead of
/// sending: at resume it is `client_received[q] - snapshot_delivered[q]`,
/// the fragments the replayed input will regenerate.
#[derive(Default)]
struct Delivery {
    delivered: Vec<u64>,
    suppress: Vec<u64>,
}

/// A [`Quarantine`] behind `Rc<RefCell>`, so the checkpoint hook can export
/// its buffered fragments while the run holds the sink borrow.
struct SharedQuarantine(Rc<RefCell<Quarantine>>);

impl ResultSink for SharedQuarantine {
    fn begin(&mut self, meta: spex_core::ResultMeta, now: u64) {
        self.0.borrow_mut().begin(meta, now);
    }

    fn event(&mut self, event: &spex_xml::RawEvent<'_>, now: u64) {
        self.0.borrow_mut().event(event, now);
    }

    fn end(&mut self, now: u64) {
        self.0.borrow_mut().end(now);
    }
}

/// Everything the eval phase needs to keep a session durable: where its
/// state lives, the live WAL handle, and (for resumes) the recovered
/// continuation.
struct DurableCtx {
    root: PathBuf,
    token: String,
    log: Rc<RefCell<SessionLog>>,
    /// Engine snapshot to restore before consuming input (resume only).
    snapshot: Option<Snapshot>,
    /// Continuation state (default-empty for fresh sessions and for
    /// resumes that replay the whole WAL).
    session: SessionState,
    /// Per-query count of replayed fragments to suppress.
    suppress: Vec<u64>,
}

/// Whether this peer may stop the server with an in-band `SHUTDOWN`
/// frame: loopback peers always can (a local client stopping its own
/// server), anyone else only when the operator opted in — an unknown peer
/// (no resolvable address) is never trusted.
fn shutdown_permitted(allow_remote: bool, peer: Option<std::net::SocketAddr>) -> bool {
    allow_remote || peer.map(|p| p.ip().is_loopback()).unwrap_or(false)
}

/// Serve one connection end to end, updating the server-wide counters.
pub(crate) fn run_session(stream: TcpStream, shared: &Arc<Shared>) {
    let started = std::time::Instant::now();
    let mut span = shared.trace.tracer.span("serve.session");
    let _ = stream.set_read_timeout(shared.cfg.read_timeout);
    // A peer that stops reading while results stream would otherwise fill
    // the kernel send buffer and block this worker forever, pinning server
    // capacity and hanging the graceful-shutdown drain.
    let _ = stream.set_write_timeout(shared.cfg.write_timeout);
    let shutdown_allowed =
        shutdown_permitted(shared.cfg.allow_remote_shutdown, stream.peer_addr().ok());
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let writer: SharedWriter = Rc::new(RefCell::new(FrameWriter::new(write_half)));
    let input = BufReader::new(stream);
    let end = session_inner(input, &writer, shared, shutdown_allowed);
    match end {
        SessionEnd::Completed => {
            shared
                .stats
                .sessions_completed
                .fetch_add(1, Ordering::Relaxed);
        }
        SessionEnd::Failed => {
            shared.stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    shared
        .trace
        .session_us
        .record(started.elapsed().as_micros() as u64);
    span.set_attr(
        "end",
        match end {
            SessionEnd::Completed => "completed",
            SessionEnd::Failed => "failed",
        },
    );
}

/// Send the closing error (optional) + `END` sequence.
fn close_with(writer: &SharedWriter, error: Option<&SessionError>) {
    let mut w = writer.borrow_mut();
    if let Some(e) = error {
        w.send(
            FrameKind::Error,
            &error_payload(e.class, e.code, &e.message),
        );
    }
    w.send(FrameKind::SessionEnd, b"");
}

fn session_inner(
    mut input: BufReader<TcpStream>,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
    shutdown_allowed: bool,
) -> SessionEnd {
    // --- Register phase -------------------------------------------------
    let mut queries: Vec<(String, Rpeq)> = Vec::new();
    let mut resume: Option<(DurableCtx, Vec<u8>, bool)> = None;
    let first_data: Option<Vec<u8>>;
    loop {
        match read_frame(&mut input, shared.cfg.max_frame) {
            Ok(Some(frame)) => match frame.kind {
                FrameKind::Register => register_one(&frame, &mut queries, writer),
                FrameKind::Resume => match handle_resume(&frame, shared, &mut queries) {
                    Ok(prep) => {
                        resume = Some(prep);
                        first_data = None;
                        break;
                    }
                    Err(e) => {
                        close_with(writer, Some(&e));
                        return SessionEnd::Failed;
                    }
                },
                FrameKind::Stats => {
                    let json = shared.stats.to_json();
                    writer.borrow_mut().send(FrameKind::Stat, json.as_bytes());
                }
                FrameKind::TraceRequest => {
                    let json = shared.trace.to_json();
                    writer.borrow_mut().send(FrameKind::Trace, json.as_bytes());
                }
                FrameKind::Shutdown => {
                    // Loopback peers (or all peers, when the operator opted
                    // in) may stop the server; anyone else gets a refusal
                    // that leaves their session usable — otherwise a single
                    // unauthenticated remote frame is a denial of service.
                    if shutdown_allowed {
                        shared.begin_shutdown();
                        writer.borrow_mut().send(FrameKind::Ok, b"shutdown");
                    } else {
                        writer.borrow_mut().send(
                            FrameKind::Error,
                            &error_payload("usage", 1, "shutdown is not permitted from this peer"),
                        );
                    }
                }
                FrameKind::Data => {
                    first_data = Some(frame.payload);
                    break;
                }
                FrameKind::End => {
                    first_data = None;
                    break;
                }
                other => {
                    let e =
                        SessionError::protocol(ProtocolError::UnexpectedKind(other).to_string());
                    close_with(writer, Some(&e));
                    return SessionEnd::Failed;
                }
            },
            // Clean hangup before streaming: a stats-only or no-op
            // connection ran to completion.
            Ok(None) => return SessionEnd::Completed,
            Err(ReadError::Io(_)) => return SessionEnd::Failed,
            Err(ReadError::Protocol(p)) => {
                close_with(writer, Some(&SessionError::protocol(p.to_string())));
                return SessionEnd::Failed;
            }
        }
    }

    if queries.is_empty() {
        close_with(
            writer,
            Some(&SessionError::usage(
                "no queries registered before DATA/END",
            )),
        );
        return SessionEnd::Failed;
    }

    let plan = match shared.registry.get_or_compile(&queries) {
        Ok((plan, hit)) => {
            let counter = if hit {
                &shared.stats.plan_cache_hits
            } else {
                &shared.stats.plan_cache_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
            plan
        }
        Err(e) => {
            close_with(writer, Some(&SessionError::usage(e.to_string())));
            return SessionEnd::Failed;
        }
    };

    // --- Durable state --------------------------------------------------
    // Resumes carry their recovered WAL tail as the preloaded byte buffer;
    // fresh sessions under `--durable-dir` mint a token, open a log and
    // write-ahead the first DATA payload already in hand.
    let (durable_ctx, preload, source_ended) = match resume {
        Some((ctx, replay, replay_ended)) => {
            // The durable input byte count, announced before any replayed
            // result frames so the client knows where to continue its
            // stream from.
            let total = ctx.log.borrow().total_bytes();
            writer
                .borrow_mut()
                .send(FrameKind::ResumeOk, &total.to_be_bytes());
            (Some(ctx), replay, replay_ended)
        }
        None => {
            let was_end = first_data.is_none();
            let preload = first_data.unwrap_or_default();
            match shared.cfg.durable_dir.as_deref() {
                Some(root) => {
                    let root = PathBuf::from(root);
                    let token = durable::new_token(shared.seq.fetch_add(1, Ordering::Relaxed));
                    let exprs: Vec<(String, String)> = queries
                        .iter()
                        .map(|(n, q)| (n.clone(), q.to_string()))
                        .collect();
                    let log = SessionLog::create(&root, &token, &exprs, shared.cfg.fsync).and_then(
                        |mut log| {
                            if was_end {
                                log.append_end()?;
                            } else {
                                log.append_data(&preload)?;
                            }
                            Ok(log)
                        },
                    );
                    match log {
                        Ok(log) => {
                            writer
                                .borrow_mut()
                                .send(FrameKind::Ok, format!("session={token}").as_bytes());
                            let ctx = DurableCtx {
                                root,
                                token,
                                log: Rc::new(RefCell::new(log)),
                                snapshot: None,
                                session: SessionState::default(),
                                suppress: vec![0; queries.len()],
                            };
                            (Some(ctx), preload, was_end)
                        }
                        Err(e) => {
                            close_with(
                                writer,
                                Some(&SessionError::new(
                                    "io",
                                    3,
                                    format!("opening the durable session log failed: {e}"),
                                )),
                            );
                            return SessionEnd::Failed;
                        }
                    }
                }
                None => (None, preload, was_end),
            }
        }
    };

    // --- Eval phase -----------------------------------------------------
    let state = Rc::new(RefCell::new(SourceState::default()));
    let source = FrameByteSource {
        input,
        max_frame: shared.cfg.max_frame,
        buf: preload,
        pos: 0,
        ended: source_ended,
        state: Rc::clone(&state),
        log: durable_ctx.as_ref().map(|d| Rc::clone(&d.log)),
    };
    let outcome = eval_stream(&plan, source, writer, shared, durable_ctx.as_ref());

    let error = outcome.fail.or_else(|| {
        outcome
            .error
            .as_ref()
            .map(|e| classify(e, state.borrow().violation.as_ref()))
    });
    if let Some(d) = &durable_ctx {
        let log = d.log.borrow();
        shared
            .trace
            .tracer
            .counter("wal.bytes", log.wal_bytes_written());
        let ended_clean = log.ended();
        drop(log);
        // A clean END means the session is over and will never be resumed;
        // a hangup or error keeps the durable state for a later `M` frame.
        if error.is_none() && ended_clean {
            let _ = durable::remove(&d.root, &d.token);
        }
    }
    if let Some(json) = &outcome.stats_json {
        writer.borrow_mut().send(FrameKind::Stat, json.as_bytes());
    }
    close_with(writer, error.as_ref());
    if error.is_some() {
        SessionEnd::Failed
    } else {
        SessionEnd::Completed
    }
}

/// Handle an `M` frame: validate it, read the session's durable state back
/// (queries, latest snapshot, longest-valid WAL prefix) and reopen the log
/// for appending. Returns the assembled [`DurableCtx`], the WAL tail to
/// replay (input bytes past the snapshot's resume offset) and whether the
/// WAL already holds the end-of-stream marker.
fn handle_resume(
    frame: &Frame,
    shared: &Arc<Shared>,
    queries: &mut Vec<(String, Rpeq)>,
) -> Result<(DurableCtx, Vec<u8>, bool), SessionError> {
    let io_err = |what: &str| {
        let what = what.to_string();
        move |e: std::io::Error| SessionError::new("io", 3, format!("{what}: {e}"))
    };
    let Some(root) = shared.cfg.durable_dir.as_deref() else {
        return Err(SessionError::usage(
            "resume requires a server started with --durable-dir",
        ));
    };
    let root = PathBuf::from(root);
    let Some((version, token, received)) = split_resume(&frame.payload) else {
        return Err(SessionError::protocol("malformed RESUME payload"));
    };
    if version != RESUME_VERSION {
        return Err(SessionError::protocol(format!(
            "unsupported resume version {version} (this server speaks version {RESUME_VERSION})"
        )));
    }
    if !durable::valid_token(token) {
        return Err(SessionError::usage(format!(
            "invalid session token `{token}`"
        )));
    }
    let recovered =
        durable::recover(&root, token).map_err(io_err("reading durable session state failed"))?;
    let Some(recovered) = recovered else {
        return Err(SessionError::usage(format!(
            "unknown session token `{token}`"
        )));
    };
    // The durable registration is authoritative: a client may resume with
    // no `R` frames at all (the query set is adopted from `queries.txt`),
    // but if it did re-register, the sets must agree — resuming a session
    // under a different query set would silently change its meaning.
    let recovered_queries: Vec<(String, Rpeq)> = recovered
        .queries
        .iter()
        .map(|(name, expr)| {
            let q = expr.parse::<Rpeq>().map_err(|e| {
                SessionError::new("io", 3, format!("durable queries.txt is corrupt: {e}"))
            })?;
            Ok((name.clone(), q))
        })
        .collect::<Result<_, SessionError>>()?;
    if recovered_queries.is_empty() {
        return Err(SessionError::new(
            "io",
            3,
            "durable queries.txt holds no queries",
        ));
    }
    if !queries.is_empty() {
        let registered: Vec<(String, String)> = queries
            .iter()
            .map(|(n, q)| (n.clone(), q.to_string()))
            .collect();
        let durable: Vec<(String, String)> = recovered_queries
            .iter()
            .map(|(n, q)| (n.clone(), q.to_string()))
            .collect();
        if registered != durable {
            return Err(SessionError::usage(format!(
                "resume registration does not match session `{token}` \
                 ({} registered vs {} durable queries)",
                registered.len(),
                durable.len()
            )));
        }
    }
    *queries = recovered_queries;
    if received.len() != queries.len() {
        return Err(SessionError::usage(format!(
            "resume carries {} received counts for {} queries",
            received.len(),
            queries.len()
        )));
    }
    let wal_start = durable::recovered_wal_start(&root, token)
        .map_err(io_err("reading durable WAL segments failed"))?;
    let total = wal_start + recovered.wal.len() as u64;

    // Decode the snapshot, tolerating corruption: a bad snapshot falls back
    // to replaying the whole WAL (possible until pruning discards early
    // segments) — a structured error either way, never a panic.
    let mut snapshot: Option<Snapshot> = None;
    let mut session = SessionState::default();
    if let Some(bytes) = &recovered.snapshot {
        if let Ok(snap) = Snapshot::decode(bytes) {
            match &snap.session {
                Some(s) if s.position.offset >= wal_start && s.position.offset <= total => {
                    session = s.clone();
                    snapshot = Some(snap);
                }
                _ => {}
            }
        }
    }
    if snapshot.is_none() && wal_start > 0 {
        return Err(SessionError::new(
            "io",
            3,
            "durable snapshot is unusable and early WAL segments were pruned",
        ));
    }
    let replay = recovered.wal[(session.position.offset - wal_start) as usize..].to_vec();
    let mut suppress = vec![0u64; queries.len()];
    for (i, s) in suppress.iter_mut().enumerate() {
        let base = session.delivered.get(i).copied().unwrap_or(0);
        *s = received[i].saturating_sub(base);
    }
    session.delivered.resize(queries.len(), 0);
    let log = SessionLog::append_after(&root, token, total, recovered.ended, shared.cfg.fsync)
        .map_err(io_err("reopening the durable session log failed"))?;
    let ended = recovered.ended;
    Ok((
        DurableCtx {
            root,
            token: token.to_string(),
            log: Rc::new(RefCell::new(log)),
            snapshot,
            session,
            suppress,
        },
        replay,
        ended,
    ))
}

/// Handle one `REGISTER` frame; acknowledges with `k` (payload = name) or
/// an `e` frame that leaves the session usable.
fn register_one(frame: &Frame, queries: &mut Vec<(String, Rpeq)>, writer: &SharedWriter) {
    let reject = |message: String| {
        writer
            .borrow_mut()
            .send(FrameKind::Error, &error_payload("usage", 1, &message));
    };
    let Ok(text) = std::str::from_utf8(&frame.payload) else {
        reject("registration is not valid UTF-8".to_string());
        return;
    };
    let Some((name, expr)) = text.split_once('=') else {
        reject(format!(
            "registration `{text}` is not of the form name=expr"
        ));
        return;
    };
    if name.is_empty() || name.len() > 255 {
        reject(format!("query name `{name}` must be 1..=255 bytes"));
        return;
    }
    if queries.iter().any(|(n, _)| n == name) {
        reject(format!("query name `{name}` is already registered"));
        return;
    }
    match expr.parse::<Rpeq>() {
        Ok(q) => {
            queries.push((name.to_string(), q));
            writer.borrow_mut().send(FrameKind::Ok, name.as_bytes());
        }
        Err(e) => reject(format!("query `{expr}`: {e}")),
    }
}

/// What the eval phase produced: the closing stats JSON (when the run got
/// far enough to have one), the first engine error, and any durable-state
/// failure (already classified).
struct EvalOutcome {
    stats_json: Option<String>,
    error: Option<EvalError>,
    fail: Option<SessionError>,
}

/// Build the per-query result-frame sink: fragment bytes (plus the
/// newline, matching the one-shot CLI's per-line output) behind the query
/// name header. Every fragment bumps the shared delivery counter; while
/// `suppress[idx]` is positive the fragment is a replay the client already
/// holds, so it is counted but not sent.
fn frame_sink<'w>(
    name: String,
    writer: &'w SharedWriter,
    idx: usize,
    delivery: Rc<RefCell<Delivery>>,
) -> FragmentFnSink<impl FnMut(&[u8]) + 'w> {
    FragmentFnSink::new(move |fragment: &[u8]| {
        {
            let mut d = delivery.borrow_mut();
            d.delivered[idx] += 1;
            if d.suppress[idx] > 0 {
                d.suppress[idx] -= 1;
                return;
            }
        }
        let mut payload = result_payload(&name, fragment);
        payload.push(b'\n');
        writer.borrow_mut().send(FrameKind::Result, &payload);
    })
}

/// Drive the reader/engine loop over the framed byte stream and emit the
/// result (and, under recovery, fault) frames. With a [`DurableCtx`] the
/// run restores from the recovered snapshot first, and every `</$>`
/// boundary checkpoints the full run state back to disk.
fn eval_stream(
    plan: &SharedQuerySet,
    source: FrameByteSource,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
    durable: Option<&DurableCtx>,
) -> EvalOutcome {
    let recovering = shared.cfg.recovery != RecoveryPolicy::Strict;
    let mut reader = Reader::new(source).multi_document();
    if recovering {
        reader = reader.with_recovery(shared.cfg.recovery);
    }
    if let Some(d) = durable {
        if d.snapshot.is_some() {
            // The preloaded WAL tail starts exactly at the snapshot's byte
            // offset; the reader continues in the original coordinates.
            let s = &d.session;
            reader = reader.resume_at(s.reader_emitted, s.position, s.lt_consumed);
        }
    }
    let names: Vec<String> = plan.ids().to_vec();
    let nq = names.len();

    let delivery = {
        let mut delivered = durable
            .map(|d| d.session.delivered.clone())
            .unwrap_or_default();
        delivered.resize(nq, 0);
        let mut suppress = durable.map(|d| d.suppress.clone()).unwrap_or_default();
        suppress.resize(nq, 0);
        Rc::new(RefCell::new(Delivery {
            delivered,
            suppress,
        }))
    };

    // Under a recovery policy every fragment is quarantined until the
    // damage intervals are known; under `strict` fragments stream straight
    // into result frames. Quarantines sit behind `Rc<RefCell>` so the
    // checkpoint hook can export them while the run holds the sink borrow.
    let mut quarantines: Vec<Rc<RefCell<Quarantine>>> = Vec::new();
    let mut quarantine_sinks: Vec<SharedQuarantine> = Vec::new();
    let mut streamers: Vec<FragmentFnSink<_>> = Vec::new();
    if recovering {
        quarantines = (0..nq)
            .map(|_| Rc::new(RefCell::new(Quarantine::new())))
            .collect();
        if let Some(d) = durable {
            for (q, frags) in quarantines.iter().zip(d.session.quarantines.iter()) {
                q.borrow_mut().import_fragments(frags.clone());
            }
        }
        quarantine_sinks = quarantines
            .iter()
            .map(|q| SharedQuarantine(Rc::clone(q)))
            .collect();
    } else {
        streamers = names
            .iter()
            .enumerate()
            .map(|(i, name)| frame_sink(name.clone(), writer, i, Rc::clone(&delivery)))
            .collect();
    }
    let sinks: Vec<&mut dyn ResultSink> = if recovering {
        quarantine_sinks
            .iter_mut()
            .map(|s| s as &mut dyn ResultSink)
            .collect()
    } else {
        streamers
            .iter_mut()
            .map(|s| s as &mut dyn ResultSink)
            .collect()
    };

    let mut run = plan.run_engine_with_limits(shared.cfg.engine, sinks, shared.cfg.limits);
    run.set_tracer(shared.trace.tracer.clone());
    if let Some(d) = durable {
        if let Some(snap) = &d.snapshot {
            let mut span = shared.trace.tracer.span("serve.restore");
            span.set_attr("token", d.token.as_str());
            if let Err(e) = run.restore(snap) {
                return EvalOutcome {
                    stats_json: None,
                    error: None,
                    fail: Some(SessionError::new(
                        "io",
                        3,
                        format!("restoring the durable snapshot failed: {e}"),
                    )),
                };
            }
        }
    }
    let mut documents = 0u64;
    let mut error: Option<EvalError> = None;
    loop {
        match reader.next_into(run.store_mut()) {
            Ok(Some(id)) => {
                let end_of_document = run.store().stored(id).kind == StoredKind::EndDocument;
                if let Err(e) = run.try_push_id(id) {
                    error = Some(e);
                    break;
                }
                if end_of_document {
                    documents += 1;
                    // Long-lived connection hygiene: drop the document's
                    // interned symbols and candidate state before the next
                    // document on the same stream.
                    run.reset_session();
                    if let Some(d) = durable {
                        checkpoint(
                            d,
                            &mut run,
                            &reader,
                            &quarantines,
                            &delivery,
                            documents,
                            shared,
                        );
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                // An I/O failure that is really a peer protocol violation
                // is re-classified by the caller via the SourceState.
                error = Some(EvalError::Xml(e));
                break;
            }
        }
    }
    shared
        .stats
        .documents
        .fetch_add(documents, Ordering::Relaxed);

    let exhausted = run.exhausted();
    // Fold this session's determination latency into the server-wide
    // aggregate behind the `T` frame. This must happen while the run is
    // live; `</$>` boundaries already harvested every closed document, so
    // only the tail of a truncated stream is missing here.
    for (_, hist) in run.determination_latency() {
        shared.trace.det_latency.merge(&hist);
    }
    // A malformed or cut-off stream leaves undetermined candidates behind;
    // `finish_full` asserts balance, so an errored run is snapshotted and
    // dropped instead of finished (a resource breach is different: the run
    // drained cleanly and can finish).
    let (stats, transducers) = if matches!(error, Some(EvalError::Xml(_))) {
        let stats = run.stats().clone();
        let transducers = run.transducer_stats().to_vec();
        drop(run);
        (stats, transducers)
    } else {
        run.finish_full()
    };
    shared.stats.absorb_engine(&stats);

    let report = if recovering {
        // A resumed session re-reports the faults recorded before the
        // crash: damage intervals must stay complete for the final drain.
        let mut faults = durable
            .map(|d| d.session.faults.clone())
            .unwrap_or_default();
        faults.extend(reader.take_faults());
        let truncated = faults
            .iter()
            .any(|f| f.kind == spex_xml::FaultKind::Truncated);
        // Faults first, so a client sees why fragments were withheld
        // before the surviving results arrive.
        {
            let mut w = writer.borrow_mut();
            for fault in &faults {
                w.send(FrameKind::Fault, fault_json(fault).as_bytes());
            }
        }
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for (i, (q, name)) in quarantines.iter().zip(&names).enumerate() {
            let mut sink = frame_sink(name.clone(), writer, i, Rc::clone(&delivery));
            let (d, p) = q
                .borrow_mut()
                .drain_into(&faults, shared.cfg.on_truncation, &mut sink);
            delivered += d;
            dropped += p;
        }
        shared
            .stats
            .absorb_faults(&faults, truncated, delivered, dropped);
        Some(RunReport {
            faults,
            truncated,
            results: delivered,
            dropped,
            exhausted,
            stats: stats.clone(),
            transducers: transducers.clone(),
        })
    } else {
        None
    };

    EvalOutcome {
        stats_json: Some(stats_json(&stats, &transducers, report.as_ref())),
        error,
        fail: None,
    }
}

/// Document-boundary checkpoint: snapshot the quiescent run plus the
/// session bookkeeping (faults, quarantines, delivery counts, reader
/// resume point), then durably persist and prune the WAL. All disk
/// failures are absorbed — a failed checkpoint costs replay time on the
/// next resume, never the live session.
fn checkpoint(
    d: &DurableCtx,
    run: &mut spex_core::EngineRun<'_, '_>,
    reader: &Reader<FrameByteSource>,
    quarantines: &[Rc<RefCell<Quarantine>>],
    delivery: &Rc<RefCell<Delivery>>,
    documents: u64,
    shared: &Arc<Shared>,
) {
    let mut span = shared.trace.tracer.span("serve.checkpoint");
    span.set_attr("token", d.token.as_str());
    let mut snap = match run.checkpoint() {
        Ok(snap) => snap,
        // Not quiescent (should not happen at `</$>`) — skip this boundary.
        Err(_) => return,
    };
    let (reader_emitted, position, lt_consumed) = reader.resume_point();
    snap.session = Some(SessionState {
        faults: reader.faults().to_vec(),
        quarantines: quarantines
            .iter()
            .map(|q| q.borrow().export_fragments())
            .collect(),
        delivered: delivery.borrow().delivered.clone(),
        reader_emitted,
        position,
        lt_consumed,
        documents: d.session.documents + documents,
    });
    let bytes = snap.encode();
    let mut log = d.log.borrow_mut();
    let _ = log.sync_for_document();
    let _ = log.write_snapshot(&bytes);
    let _ = log.prune(position.offset);
}

/// One fault as a line of JSON (same field names as the one-shot schema's
/// `first`/`last` entries, plus the action and detail).
fn fault_json(fault: &spex_xml::Fault) -> String {
    format!(
        "{{\"kind\":\"{}\",\"offset\":{},\"line\":{},\"column\":{},\"action\":\"{}\",\"detail\":\"{}\"}}",
        fault.kind.as_str(),
        fault.position.offset,
        fault.position.line,
        fault.position.column,
        fault.action.as_str(),
        spex_core::json_escape(&fault.detail),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_gate_trusts_loopback_peers_only() {
        let lo4: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        let lo6: std::net::SocketAddr = "[::1]:1".parse().unwrap();
        let remote: std::net::SocketAddr = "10.0.0.9:1".parse().unwrap();
        assert!(shutdown_permitted(false, Some(lo4)));
        assert!(shutdown_permitted(false, Some(lo6)));
        assert!(!shutdown_permitted(false, Some(remote)));
        assert!(!shutdown_permitted(false, None));
        assert!(shutdown_permitted(true, Some(remote)));
        assert!(shutdown_permitted(true, None));
    }

    /// A zero-length read must not look like EOF — neither with bytes
    /// still buffered nor with frames still arriving.
    #[test]
    fn zero_length_read_is_not_eof() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = std::net::TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        write_frame(&mut tx, FrameKind::Data, b"<a/>").unwrap();
        tx.flush().unwrap();
        let mut source = FrameByteSource {
            input: BufReader::new(rx),
            max_frame: 1024,
            buf: Vec::new(),
            pos: 0,
            ended: false,
            state: Rc::new(RefCell::new(SourceState::default())),
            log: None,
        };
        // Empty buffer, frame pending: an empty read returns 0 without
        // consuming the frame or flipping the EOF state…
        assert_eq!(source.read(&mut []).unwrap(), 0);
        assert!(!source.ended);
        let mut two = [0u8; 2];
        assert_eq!(source.read(&mut two).unwrap(), 2);
        assert_eq!(&two, b"<a");
        // …and mid-buffer an empty read consumes nothing either.
        assert_eq!(source.read(&mut []).unwrap(), 0);
        assert_eq!(source.read(&mut two).unwrap(), 2);
        assert_eq!(&two, b"/>");
    }
}
