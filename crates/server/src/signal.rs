//! Minimal SIGINT/SIGTERM notification without any signal-handling crate:
//! the handler only sets an atomic flag, which the acceptor loop polls
//! between `accept` attempts. This is the entire graceful-shutdown trigger
//! surface — everything else (drain, join, stats dump) runs in normal
//! thread context.
//!
//! On non-Unix targets installation is a no-op and [`requested`] is always
//! false; the in-band `SHUTDOWN` frame still works everywhere.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        super::REQUESTED.store(true, Ordering::SeqCst);
    }

    #[allow(unsafe_code)]
    pub(super) fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal(2)` with a handler that only stores to an atomic;
        // no allocation, locking or reentrancy in the handler.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Install the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install() {
    #[cfg(unix)]
    imp::install();
}

/// True once SIGINT or SIGTERM has been received.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}
