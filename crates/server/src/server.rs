//! The concurrent server: one acceptor thread (the caller of
//! [`Server::run`]) plus a fixed pool of worker threads, joined by a
//! bounded session queue.
//!
//! Admission control is the queue bound: when `queue_cap` sessions are
//! already waiting, a new connection is answered with a single `BUSY`
//! frame and closed — the server sheds load instead of buffering it (the
//! same philosophy as the engine's `ResourceLimits`: refuse, don't grow).
//!
//! Shutdown is cooperative. `SIGINT`/`SIGTERM` (when watched), the in-band
//! `SHUTDOWN` frame, or [`ServerHandle::shutdown`] all set one flag; the
//! acceptor stops accepting, the workers finish every queued and in-flight
//! session (no session is cut off mid-stream), and [`Server::run`] returns
//! a final [`ServerReport`].

use crate::protocol::{write_frame, FrameKind};
use crate::registry::Registry;
use crate::session;
use crate::signal;
use crate::stats::ServerStats;
use spex_core::{Engine, EngineStats, ResourceLimits, TruncationOutcome};
use spex_trace::{summary_json, AtomicHistogram, JsonlSink, Tracer};
use spex_xml::RecoveryPolicy;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit tests and local use; the CLI
/// maps `spex serve` flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads (= maximum concurrent sessions).
    pub workers: usize,
    /// Maximum sessions waiting for a worker before `BUSY` rejects.
    pub queue_cap: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Per-session engine resource caps.
    pub limits: ResourceLimits,
    /// Execution backend every session runs on: the compiled VM plan
    /// (default) or the interpreter network.
    pub engine: Engine,
    /// Reader-side recovery policy for every session.
    pub recovery: RecoveryPolicy,
    /// Truncation handling for recovery sessions.
    pub on_truncation: TruncationOutcome,
    /// Per-read socket timeout (a stalled client fails its own session
    /// instead of pinning a worker forever). `None` disables.
    pub read_timeout: Option<Duration>,
    /// Per-write socket timeout: a client that stops *reading* while
    /// results stream would otherwise fill the kernel send buffer and
    /// block its worker forever. `None` disables.
    pub write_timeout: Option<Duration>,
    /// Maximum number of compiled plans the registry caches; past the cap
    /// the least-recently-used plan is evicted, so clients registering
    /// ever-varying queries cannot grow server memory without bound.
    /// `0` disables caching entirely (every registration compiles fresh).
    pub max_cached_plans: usize,
    /// Honor the in-band `SHUTDOWN` frame from non-loopback peers. Off by
    /// default: a loopback client can always stop its own server, but a
    /// remote client stopping a shared one is a denial of service.
    pub allow_remote_shutdown: bool,
    /// Poll SIGINT/SIGTERM in the accept loop (the CLI turns this on;
    /// tests drive shutdown through [`ServerHandle`] instead).
    pub watch_signals: bool,
    /// Write a JSONL trace (one record per line, DESIGN.md §13 schema) to
    /// this path: per-session spans and engine records as sessions finish,
    /// server-wide aggregates at shutdown. `None` disables tracing (the
    /// in-memory histograms behind the `T` frame are still maintained —
    /// they cost one atomic increment per *session*, not per event).
    pub trace_jsonl: Option<String>,
    /// Root directory for durable session state (write-ahead input logs +
    /// document-boundary snapshots, see [`crate::durable`] and DESIGN.md
    /// §15). `None` (the default) disables durability: sessions are
    /// in-memory only and the `M` resume frame is refused.
    pub durable_dir: Option<String>,
    /// When the write-ahead log syncs to disk (only meaningful with
    /// `durable_dir`).
    pub fsync: crate::durable::FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            limits: ResourceLimits::default(),
            engine: Engine::default(),
            recovery: RecoveryPolicy::Strict,
            on_truncation: TruncationOutcome::default(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_cached_plans: 64,
            allow_remote_shutdown: false,
            watch_signals: false,
            trace_jsonl: None,
            durable_dir: None,
            fsync: crate::durable::FsyncPolicy::default(),
        }
    }
}

/// The server's observability state: the (possibly disabled) [`Tracer`]
/// every session shares, plus the cross-thread histograms behind the `T`
/// protocol frame. All three histograms are recorded once per session, so
/// they stay cheap enough to keep unconditionally.
pub(crate) struct ServeTrace {
    /// Shared trace handle; disabled unless `ServerConfig::trace_jsonl`.
    pub(crate) tracer: Tracer,
    /// Microseconds each admitted connection waited for a worker.
    pub(crate) admission_wait_us: AtomicHistogram,
    /// Microseconds from a worker picking a session up to its close.
    pub(crate) session_us: AtomicHistogram,
    /// Determination latency (events between a candidate entering the
    /// Output buffer and its condition deciding — the paper's earliness
    /// measure), merged across every session.
    pub(crate) det_latency: AtomicHistogram,
}

impl ServeTrace {
    fn new(tracer: Tracer) -> Self {
        ServeTrace {
            tracer,
            admission_wait_us: AtomicHistogram::new(),
            session_us: AtomicHistogram::new(),
            det_latency: AtomicHistogram::new(),
        }
    }

    /// The `t` frame payload: one JSON object of histogram summaries.
    pub(crate) fn to_json(&self) -> String {
        format!(
            "{{\"admission_wait_us\":{},\"session_us\":{},\"determination_latency\":{}}}",
            summary_json(&self.admission_wait_us.summary()),
            summary_json(&self.session_us.summary()),
            summary_json(&self.det_latency.summary()),
        )
    }

    /// Emit the server-wide aggregates to the tracer (called once, at
    /// shutdown, after the workers have drained).
    fn emit_final(&self, stats: &ServerStats) {
        if !self.tracer.enabled() {
            return;
        }
        let t = &self.tracer;
        for (name, counter) in [
            ("serve.sessions_started", &stats.sessions_started),
            ("serve.sessions_completed", &stats.sessions_completed),
            ("serve.sessions_rejected", &stats.sessions_rejected),
            ("serve.sessions_failed", &stats.sessions_failed),
            ("serve.documents", &stats.documents),
            ("serve.plan_cache_hits", &stats.plan_cache_hits),
            ("serve.plan_cache_misses", &stats.plan_cache_misses),
        ] {
            t.counter(name, counter.load(Ordering::Relaxed));
        }
        t.hist(
            "serve.admission_wait_us",
            &self.admission_wait_us.snapshot(),
            &[],
        );
        t.hist("serve.session_us", &self.session_us.snapshot(), &[]);
        t.hist(
            "serve.determination_latency",
            &self.det_latency.snapshot(),
            &[],
        );
        t.flush();
    }
}

/// State shared by the acceptor, the workers and every session.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Admitted connections with their admission timestamps, so the worker
    /// that picks a session up can record how long it queued.
    pub(crate) queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    pub(crate) wake: Condvar,
    pub(crate) registry: Registry,
    pub(crate) stats: ServerStats,
    pub(crate) trace: ServeTrace,
    /// Monotonic sequence for minting durable session tokens.
    pub(crate) seq: std::sync::atomic::AtomicU64,
}

impl Shared {
    /// Flip the shutdown flag and wake every sleeping worker.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }
}

/// A cloneable remote control for a running server (shutdown + stats),
/// usable from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request a graceful shutdown: stop accepting, drain, return.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Snapshot the server-wide statistics as one-shot-schema JSON.
    pub fn stats_json(&self) -> String {
        self.shared.stats.to_json()
    }
}

/// The final accounting [`Server::run`] returns after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Server statistics in the one-shot `--stats-json` schema (with the
    /// `server` extension object).
    pub stats_json: String,
    /// Sessions accepted and queued.
    pub sessions_started: u64,
    /// Sessions that ran to a clean `END`.
    pub sessions_completed: u64,
    /// Connections rejected with `BUSY`.
    pub sessions_rejected: u64,
    /// Sessions closed early by an error.
    pub sessions_failed: u64,
    /// Documents evaluated across all sessions.
    pub documents: u64,
    /// Aggregated engine statistics across all sessions.
    pub engine: EngineStats,
}

/// A bound-but-not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; the run consumes the calling thread as the acceptor.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket. Nothing is served until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept so the loop can poll the shutdown flag (and
        // signals) without an interruptible syscall dance.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = Registry::with_cap(cfg.max_cached_plans);
        let tracer = match &cfg.trace_jsonl {
            Some(path) => Tracer::to_sink(Arc::new(JsonlSink::create(std::path::Path::new(path))?)),
            None => Tracer::disabled(),
        };
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                cfg,
                shutdown: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                wake: Condvar::new(),
                registry,
                stats: ServerStats::new(),
                trace: ServeTrace::new(tracer),
                seq: std::sync::atomic::AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control valid for this server's lifetime.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested, then drain and report. The
    /// calling thread becomes the acceptor.
    pub fn run(self) -> std::io::Result<ServerReport> {
        if self.shared.cfg.watch_signals {
            signal::install();
        }
        let workers: Vec<_> = (0..self.shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("spex-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread failed")
            })
            .collect();

        loop {
            if self.shared.cfg.watch_signals && signal::requested() {
                self.shared.begin_shutdown();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Sessions do blocking frame reads; only the listener
                    // is non-blocking.
                    let _ = stream.set_nonblocking(false);
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failures (EMFILE, aborted handshake):
                // back off instead of tearing the server down.
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }

        // Graceful drain: stop accepting (listener drops below), let the
        // workers finish every queued and in-flight session.
        drop(self.listener);
        self.shared.wake.notify_all();
        for worker in workers {
            let _ = worker.join();
        }

        let stats = &self.shared.stats;
        self.shared.trace.emit_final(stats);
        Ok(ServerReport {
            stats_json: stats.to_json(),
            sessions_started: stats.sessions_started.load(Ordering::Relaxed),
            sessions_completed: stats.sessions_completed.load(Ordering::Relaxed),
            sessions_rejected: stats.sessions_rejected.load(Ordering::Relaxed),
            sessions_failed: stats.sessions_failed.load(Ordering::Relaxed),
            documents: stats.documents.load(Ordering::Relaxed),
            engine: stats.engine_totals(),
        })
    }

    /// Queue the connection, or shed it with `BUSY` when the queue is full.
    fn admit(&self, mut stream: TcpStream) {
        let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
        if queue.len() >= self.shared.cfg.queue_cap {
            drop(queue);
            self.shared
                .stats
                .sessions_rejected
                .fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(&mut stream, FrameKind::Busy, b"");
            let _ = stream.flush();
            return;
        }
        queue.push_back((stream, Instant::now()));
        drop(queue);
        self.shared
            .stats
            .sessions_started
            .fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_one();
    }
}

/// One worker: pop sessions until shutdown *and* the queue is empty, so a
/// graceful shutdown never abandons an admitted session.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(queue, Duration::from_millis(200))
                    .expect("queue lock poisoned");
                queue = guard;
            }
        };
        let Some((stream, queued_at)) = job else {
            return;
        };
        shared
            .trace
            .admission_wait_us
            .record(queued_at.elapsed().as_micros() as u64);
        // A panicking session must not take its worker (and the server's
        // capacity) down with it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session::run_session(stream, shared)
        }));
        if outcome.is_err() {
            shared.stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}
