//! The concurrent server: an epoll-style reactor thread (the caller of
//! [`Server::run`]) that owns every socket, plus a fixed pool of worker
//! threads that advance session state machines (`reactor`,
//! `session`).
//!
//! Concurrency is no longer bounded by the worker count: an idle
//! connection costs one file descriptor and a few hundred bytes of state,
//! so tens of thousands of mostly-idle sessions coexist with a handful of
//! hot ones. Admission control is the `max_conns` cap (clamped under the
//! process's fd limit): past it a new connection is answered with a single
//! `BUSY` frame and closed — the server sheds load instead of buffering it
//! (the same philosophy as the engine's `ResourceLimits`: refuse, don't
//! grow). A slow *reader* no longer pins a worker either: output buffered
//! past a high watermark suspends the session until the peer catches up,
//! so `BUSY` on the wire means admission overload, while backpressure is
//! invisible flow control.
//!
//! Shutdown is cooperative. `SIGINT`/`SIGTERM` (when watched), the in-band
//! `SHUTDOWN` frame, or [`ServerHandle::shutdown`] all set one flag; the
//! reactor stops accepting, idle connections get a short grace then close,
//! every live session runs to completion (no session is cut off
//! mid-stream), and [`Server::run`] returns a final [`ServerReport`].

use crate::conn::Notifier;
use crate::poll::Poller;
use crate::reactor::{worker_loop, Reactor, WorkerQueue};
use crate::registry::Registry;
use crate::signal;
use crate::stats::ServerStats;
use spex_core::{Engine, EngineStats, ResourceLimits, TruncationOutcome};
use spex_trace::{summary_json, AtomicHistogram, JsonlSink, Tracer};
use spex_xml::{RecoveryPolicy, ScannerKind};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs. The defaults suit tests and local use; the CLI
/// maps `spex serve` flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads advancing session machines (CPU-bound concurrency;
    /// connection concurrency is `max_conns`).
    pub workers: usize,
    /// Legacy knob from the thread-per-session server, where it bounded
    /// the admission queue. The reactor has no admission queue — ready
    /// sessions wait in per-worker scheduling queues without limit, and
    /// admission control is `max_conns` — so this field is accepted for
    /// compatibility but no longer sheds load.
    pub queue_cap: usize,
    /// Maximum concurrent connections; past it new connections are shed
    /// with `BUSY`. Clamped at runtime under the process's soft fd limit.
    pub max_conns: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Per-session engine resource caps.
    pub limits: ResourceLimits,
    /// Execution backend every session runs on: the compiled VM plan
    /// (default) or the interpreter network.
    pub engine: Engine,
    /// Reader-side recovery policy for every session.
    pub recovery: RecoveryPolicy,
    /// Byte scanner every session's reader runs: the SWAR structural fast
    /// path (default) or the byte-at-a-time classic oracle (DESIGN.md §18).
    pub scanner: ScannerKind,
    /// Truncation handling for recovery sessions.
    pub on_truncation: TruncationOutcome,
    /// How long a session waiting for input tolerates no bytes at all
    /// before it fails (a stalled client fails its own session instead of
    /// holding server state forever). `None` disables.
    pub read_timeout: Option<Duration>,
    /// Writability deadline: how long a peer may accept *no bytes* of
    /// pending output before the connection is closed. Under partial
    /// writes the clock resets on every accepted byte, so a slow-but-live
    /// reader is never cut off. `None` disables.
    pub write_timeout: Option<Duration>,
    /// Idle-connection reaping: a connection that completes no frame for
    /// this long is closed. The clock is *completed frames*, so a
    /// slowloris peer trickling single bytes through a partial frame is
    /// reaped all the same. `None` (the default) disables.
    pub idle_timeout: Option<Duration>,
    /// Maximum number of compiled plans the registry caches; past the cap
    /// the least-recently-used plan is evicted, so clients registering
    /// ever-varying queries cannot grow server memory without bound.
    /// `0` disables caching entirely (every registration compiles fresh).
    pub max_cached_plans: usize,
    /// Honor the in-band `SHUTDOWN` frame from non-loopback peers. Off by
    /// default: a loopback client can always stop its own server, but a
    /// remote client stopping a shared one is a denial of service.
    pub allow_remote_shutdown: bool,
    /// Poll SIGINT/SIGTERM in the reactor loop (the CLI turns this on;
    /// tests drive shutdown through [`ServerHandle`] instead).
    pub watch_signals: bool,
    /// Write a JSONL trace (one record per line, DESIGN.md §13 schema) to
    /// this path: per-session spans and engine records as sessions finish,
    /// server-wide aggregates at shutdown. `None` disables tracing (the
    /// in-memory histograms behind the `T` frame are still maintained —
    /// they cost one atomic increment per *session*, not per event).
    pub trace_jsonl: Option<String>,
    /// Root directory for durable session state (write-ahead input logs +
    /// document-boundary snapshots, see [`crate::durable`] and DESIGN.md
    /// §15). `None` (the default) disables durability: sessions are
    /// in-memory only and the `M` resume frame is refused.
    pub durable_dir: Option<String>,
    /// When the write-ahead log syncs to disk (only meaningful with
    /// `durable_dir`).
    pub fsync: crate::durable::FsyncPolicy,
    /// Standing queries preloaded at startup (the CLI's `--queries FILE`).
    /// They are combined and cached in the plan registry before the first
    /// connection, and a session that sends `DATA`/`END` without
    /// registering any query of its own is served this set instead of
    /// being refused. Empty (the default) disables the fallback.
    pub preload_queries: Vec<(String, spex_query::Rpeq)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            max_conns: 16384,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            limits: ResourceLimits::default(),
            engine: Engine::default(),
            recovery: RecoveryPolicy::Strict,
            scanner: ScannerKind::default(),
            on_truncation: TruncationOutcome::default(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            idle_timeout: None,
            max_cached_plans: 64,
            allow_remote_shutdown: false,
            watch_signals: false,
            trace_jsonl: None,
            durable_dir: None,
            fsync: crate::durable::FsyncPolicy::default(),
            preload_queries: Vec::new(),
        }
    }
}

/// The server's observability state: the (possibly disabled) [`Tracer`]
/// every session shares, plus the cross-thread histograms and scheduler
/// counters behind the `T` protocol frame. The per-session histograms are
/// recorded once per session, the scheduler gauges once per scheduling
/// decision (an atomic increment), so they stay cheap enough to keep
/// unconditionally.
pub(crate) struct ServeTrace {
    /// Shared trace handle; disabled unless `ServerConfig::trace_jsonl`.
    pub(crate) tracer: Tracer,
    /// Microseconds each session waited in a ready queue before its
    /// machine's first advance.
    pub(crate) admission_wait_us: AtomicHistogram,
    /// Microseconds from accept to session close.
    pub(crate) session_us: AtomicHistogram,
    /// Determination latency (events between a candidate entering the
    /// Output buffer and its condition deciding — the paper's earliness
    /// measure), merged across every session.
    pub(crate) det_latency: AtomicHistogram,
    /// Microseconds from accept to the first complete inbound frame.
    pub(crate) accept_to_first_frame_us: AtomicHistogram,
    /// Ready-queue depth observed at each enqueue.
    pub(crate) ready_depth: AtomicHistogram,
    /// Scheduling slices handed out across all workers.
    pub(crate) slices: AtomicU64,
    /// Slices where the per-tenant round-robin switched to a different
    /// peer than the previous slice served.
    pub(crate) rotations: AtomicU64,
}

impl ServeTrace {
    fn new(tracer: Tracer) -> Self {
        ServeTrace {
            tracer,
            admission_wait_us: AtomicHistogram::new(),
            session_us: AtomicHistogram::new(),
            det_latency: AtomicHistogram::new(),
            accept_to_first_frame_us: AtomicHistogram::new(),
            ready_depth: AtomicHistogram::new(),
            slices: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        }
    }

    /// The `t` frame payload: one JSON object of histogram summaries and
    /// scheduler counters. New keys append after the original three, so
    /// clients reading the old shape keep working.
    pub(crate) fn to_json(&self) -> String {
        format!(
            "{{\"admission_wait_us\":{},\"session_us\":{},\"determination_latency\":{},\
             \"accept_to_first_frame_us\":{},\"ready_depth\":{},\
             \"scheduler\":{{\"slices\":{},\"rotations\":{}}}}}",
            summary_json(&self.admission_wait_us.summary()),
            summary_json(&self.session_us.summary()),
            summary_json(&self.det_latency.summary()),
            summary_json(&self.accept_to_first_frame_us.summary()),
            summary_json(&self.ready_depth.summary()),
            self.slices.load(Ordering::Relaxed),
            self.rotations.load(Ordering::Relaxed),
        )
    }

    /// Emit the server-wide aggregates to the tracer (called once, at
    /// shutdown, after the workers have drained).
    fn emit_final(&self, stats: &ServerStats) {
        if !self.tracer.enabled() {
            return;
        }
        let t = &self.tracer;
        for (name, counter) in [
            ("serve.sessions_started", &stats.sessions_started),
            ("serve.sessions_completed", &stats.sessions_completed),
            ("serve.sessions_rejected", &stats.sessions_rejected),
            ("serve.sessions_failed", &stats.sessions_failed),
            ("serve.documents", &stats.documents),
            ("serve.plan_cache_hits", &stats.plan_cache_hits),
            ("serve.plan_cache_misses", &stats.plan_cache_misses),
        ] {
            t.counter(name, counter.load(Ordering::Relaxed));
        }
        t.counter(
            "serve.scheduler_slices",
            self.slices.load(Ordering::Relaxed),
        );
        t.counter(
            "serve.scheduler_rotations",
            self.rotations.load(Ordering::Relaxed),
        );
        t.hist(
            "serve.admission_wait_us",
            &self.admission_wait_us.snapshot(),
            &[],
        );
        t.hist("serve.session_us", &self.session_us.snapshot(), &[]);
        t.hist(
            "serve.determination_latency",
            &self.det_latency.snapshot(),
            &[],
        );
        t.hist(
            "serve.accept_to_first_frame_us",
            &self.accept_to_first_frame_us.snapshot(),
            &[],
        );
        t.hist("serve.ready_depth", &self.ready_depth.snapshot(), &[]);
        t.flush();
    }
}

/// State shared by the reactor, the workers and every session.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) registry: Registry,
    pub(crate) stats: ServerStats,
    pub(crate) trace: ServeTrace,
    /// Monotonic sequence for minting durable session tokens.
    pub(crate) seq: AtomicU64,
    /// Worker → reactor command channel (and the reactor's waker).
    pub(crate) notifier: Arc<Notifier>,
    /// Per-worker ready queues; a connection is pinned to
    /// `workers[conn.worker]` for life.
    pub(crate) workers: Vec<Arc<WorkerQueue>>,
}

impl Shared {
    /// Flip the shutdown flag and wake the reactor.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.notifier.wake();
    }
}

/// A cloneable remote control for a running server (shutdown + stats),
/// usable from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request a graceful shutdown: stop accepting, drain, return.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Snapshot the server-wide statistics as one-shot-schema JSON.
    pub fn stats_json(&self) -> String {
        self.shared.stats.to_json()
    }
}

/// The final accounting [`Server::run`] returns after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Server statistics in the one-shot `--stats-json` schema (with the
    /// `server` extension object).
    pub stats_json: String,
    /// Sessions accepted (admitted under the `max_conns` cap).
    pub sessions_started: u64,
    /// Sessions that ran to a clean `END`.
    pub sessions_completed: u64,
    /// Connections rejected with `BUSY`.
    pub sessions_rejected: u64,
    /// Sessions closed early by an error.
    pub sessions_failed: u64,
    /// Documents evaluated across all sessions.
    pub documents: u64,
    /// Aggregated engine statistics across all sessions.
    pub engine: EngineStats,
}

/// A bound-but-not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; the run consumes the calling thread as the reactor.
pub struct Server {
    listener: TcpListener,
    poller: Poller,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket and the readiness poller. Nothing is served
    /// until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Everything is nonblocking under the reactor, the listener
        // included.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let notifier = Arc::new(Notifier::new(poller.waker()));
        let mut cfg = cfg;
        let registry = Registry::with_cap(cfg.max_cached_plans);
        if !cfg.preload_queries.is_empty() {
            // Canonicalize once so sessions adopting the standing set get
            // the exact cached plan, then compile it up front — a bad
            // standing query fails startup, not the first client.
            cfg.preload_queries = spex_combine::canonicalize_registrations(&cfg.preload_queries);
            registry.get_or_compile(&cfg.preload_queries).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("preloaded query set does not compile: {e}"),
                )
            })?;
        }
        let tracer = match &cfg.trace_jsonl {
            Some(path) => Tracer::to_sink(Arc::new(JsonlSink::create(std::path::Path::new(path))?)),
            None => Tracer::disabled(),
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| Arc::new(WorkerQueue::new()))
            .collect();
        Ok(Server {
            listener,
            poller,
            addr,
            shared: Arc::new(Shared {
                cfg,
                shutdown: AtomicBool::new(false),
                registry,
                stats: ServerStats::new(),
                trace: ServeTrace::new(tracer),
                seq: AtomicU64::new(0),
                notifier,
                workers,
            }),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control valid for this server's lifetime.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested, then drain and report. The
    /// calling thread becomes the reactor.
    pub fn run(self) -> std::io::Result<ServerReport> {
        if self.shared.cfg.watch_signals {
            signal::install();
        }
        let workers: Vec<_> = (0..self.shared.workers.len())
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("spex-serve-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawning a worker thread failed")
            })
            .collect();

        let reactor = Reactor::new(Arc::clone(&self.shared), self.poller, self.listener)?;
        // The reactor returns once shutdown was requested and every
        // connection has drained — at that point every machine has either
        // finished or sits in a worker queue one advance from finishing,
        // so closing the queues lets the workers drain and exit.
        reactor.run();
        for queue in &self.shared.workers {
            queue.close();
        }
        for worker in workers {
            let _ = worker.join();
        }

        let stats = &self.shared.stats;
        self.shared.trace.emit_final(stats);
        Ok(ServerReport {
            stats_json: stats.to_json(),
            sessions_started: stats.sessions_started.load(Ordering::Relaxed),
            sessions_completed: stats.sessions_completed.load(Ordering::Relaxed),
            sessions_rejected: stats.sessions_rejected.load(Ordering::Relaxed),
            sessions_failed: stats.sessions_failed.load(Ordering::Relaxed),
            documents: stats.documents.load(Ordering::Relaxed),
            engine: stats.engine_totals(),
        })
    }
}
