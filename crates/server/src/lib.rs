//! spex-serve: a concurrent streaming query server over shared SPEX
//! transducer networks.
//!
//! The one-shot pipeline (parse → compile → stream → results) becomes a
//! long-running service: clients connect over TCP, register named rpeq
//! queries, stream XML documents in `DATA` frames, and receive result
//! fragments progressively — the paper's progressive evaluation, per
//! connection. Compiled query plans are cached server-wide (see
//! [`Registry`]): sessions registering structurally equal query sets share
//! one [`spex_core::multi::SharedQuerySet`], so the compilation cost of a
//! popular query set is paid once.
//!
//! The crate is std-only (the workspace vendors no async runtime): a
//! single reactor thread owns every socket through a raw readiness poller
//! (epoll on Linux), and sessions are nonblocking state machines advanced
//! by a fixed pool of worker threads — so 10k+ mostly-idle connections
//! cost file descriptors, not threads. The engine's `Run` is intentionally
//! single-threaded (`Rc`-backed interning); concurrency comes from one run
//! per session, pinned to one worker, not from sharing a run.
//!
//! Layers:
//! - [`protocol`]: the length-prefixed frame grammar and codecs, including
//!   the incremental [`FrameDecoder`] the reactor path decodes with.
//! - [`registry`]: the compiled-plan cache.
//! - [`server`] / `reactor` / `session`: the event loop and per-tenant
//!   scheduler, and the per-session state machine over the zero-copy
//!   reader path (`poll` is the readiness backend, `scan` the event-
//!   horizon prescanner, `conn` the shared per-connection buffers).
//! - [`stats`]: server-wide statistics in the one-shot `--stats-json`
//!   schema.
//! - [`client`]: a small blocking client for tests, benches and examples.
//!
//! The wire protocol is normatively specified in `crates/server/PROTOCOL.md`
//! (frame grammar, error codes, versioning, a worked byte-level session);
//! DESIGN.md §12 covers the architecture and DESIGN.md §13 the trace
//! records behind `--trace-jsonl` and the `T`/`t` frames.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod durable;
mod poll;
pub mod protocol;
mod reactor;
pub mod registry;
mod scan;
pub mod server;
mod session;
pub mod signal;
pub mod stats;

pub use client::{Client, SessionTranscript};
pub use durable::{FsyncPolicy, RecoveredSession, SessionLog};
pub use poll::soft_fd_limit;
pub use protocol::{
    error_payload, read_frame, result_payload, split_result, write_frame, Frame, FrameDecoder,
    FrameKind, ProtocolError, ReadError, DEFAULT_MAX_FRAME,
};
pub use registry::{Registry, DEFAULT_PLAN_CAP};
pub use server::{Server, ServerConfig, ServerHandle, ServerReport};
pub use stats::{FaultTotals, ServerStats};
