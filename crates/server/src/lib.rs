//! spex-serve: a concurrent streaming query server over shared SPEX
//! transducer networks.
//!
//! The one-shot pipeline (parse → compile → stream → results) becomes a
//! long-running service: clients connect over TCP, register named rpeq
//! queries, stream XML documents in `DATA` frames, and receive result
//! fragments progressively — the paper's progressive evaluation, per
//! connection. Compiled query plans are cached server-wide (see
//! [`Registry`]): sessions registering structurally equal query sets share
//! one [`spex_core::multi::SharedQuerySet`], so the compilation cost of a
//! popular query set is paid once.
//!
//! The crate is std-only (the workspace vendors no async runtime): a
//! non-blocking acceptor plus a fixed pool of blocking worker threads,
//! with a bounded queue as admission control. The engine's `Run` is
//! intentionally single-threaded (`Rc`-backed interning); concurrency
//! comes from one run per session, not from sharing a run.
//!
//! Layers:
//! - [`protocol`]: the length-prefixed frame grammar and codecs.
//! - [`registry`]: the compiled-plan cache.
//! - [`server`] / `session`: accept loop, worker pool, per-session frame
//!   loop over the zero-copy reader path.
//! - [`stats`]: server-wide statistics in the one-shot `--stats-json`
//!   schema.
//! - [`client`]: a small blocking client for tests, benches and examples.
//!
//! The wire protocol is normatively specified in `crates/server/PROTOCOL.md`
//! (frame grammar, error codes, versioning, a worked byte-level session);
//! DESIGN.md §12 covers the architecture and DESIGN.md §13 the trace
//! records behind `--trace-jsonl` and the `T`/`t` frames.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod durable;
pub mod protocol;
pub mod registry;
pub mod server;
mod session;
pub mod signal;
pub mod stats;

pub use client::{Client, SessionTranscript};
pub use durable::{FsyncPolicy, RecoveredSession, SessionLog};
pub use protocol::{
    error_payload, read_frame, result_payload, split_result, write_frame, Frame, FrameKind,
    ProtocolError, ReadError, DEFAULT_MAX_FRAME,
};
pub use registry::{Registry, DEFAULT_PLAN_CAP};
pub use server::{Server, ServerConfig, ServerHandle, ServerReport};
pub use stats::{FaultTotals, ServerStats};
