//! Durable session state: a per-session write-ahead log of input frames
//! plus an atomically-replaced snapshot of engine state, so a killed
//! server (or dropped connection) can resume a session with byte-identical
//! continuation output.
//!
//! Layout under the configured durable root (`--durable-dir`):
//!
//! ```text
//! <root>/<token>/
//!     queries.txt                 one `name=expr` line per registered query
//!     wal-00000000000000000000.log  input segments; the filename encodes the
//!     wal-00000000000001048576.log  total payload byte offset at which the
//!     ...                           segment starts
//!     snapshot.bin                latest quiescent-point snapshot (optional)
//! ```
//!
//! Each WAL record is `len: u32 LE` + `crc32: u32 LE` (over kind byte and
//! payload) + `kind: u8` + payload. `kind` is [`REC_DATA`] for a data frame
//! payload or [`REC_END`] for the end-of-stream marker (empty payload).
//! Recovery takes the *longest valid prefix*: a torn or corrupted record
//! ends its segment, and replay continues into the next segment only when
//! that segment's start offset equals the bytes recovered so far — a
//! resumed session always opens a fresh segment at the recovered total, so
//! a torn tail can never be mistaken for the live end of the log.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Rotate to a new WAL segment once the current one holds this many payload
/// bytes (checked after each append, so a single oversized record still
/// lands in one segment).
const SEGMENT_BYTES: u64 = 1024 * 1024;

/// Userspace write buffer on the active segment. Appends are coalesced into
/// buffer-sized `write` calls; every fsync point (and rotation) flushes the
/// buffer first, so the durability guarantees of each [`FsyncPolicy`] are
/// unchanged — only the per-append syscall cost goes away.
const SEGMENT_BUF: usize = 64 * 1024;

/// WAL record kind: the payload of one `Data` frame.
pub const REC_DATA: u8 = 1;
/// WAL record kind: the client ended its input stream (empty payload).
pub const REC_END: u8 = 2;

/// When the session log calls `fsync` on the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended record — maximal durability, slowest.
    Always,
    /// Sync at document boundaries (just before a snapshot is taken) and
    /// at end-of-stream. The default: a crash loses at most the tail of
    /// the in-flight document, which the client still holds.
    #[default]
    OnDocument,
    /// Never sync explicitly; rely on the OS flushing dirty pages. The
    /// cheapest policy, used by the WAL-overhead benchmark.
    Never,
}

impl FsyncPolicy {
    /// Stable textual form (CLI flag value).
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnDocument => "document",
            FsyncPolicy::Never => "never",
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "document" | "on-document" => Ok(FsyncPolicy::OnDocument),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy `{other}` (expected always, document, or never)"
            )),
        }
    }
}

/// CRC-32 (IEEE) lookup tables for the slicing-by-16 variant: `TABLES[0]`
/// is the classic byte-at-a-time table, `TABLES[k]` advances a byte `k`
/// positions further. The WAL checksums every input byte on the hot path,
/// so the per-byte cost is part of the gated append overhead
/// (`harness crash-bench`).
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Incremental CRC-32 (IEEE) — same polynomial as the snapshot codec, kept
/// local so the WAL format is self-contained. Incremental so a record's
/// checksum can cover the kind byte plus the payload without concatenating
/// them first.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, mut data: &[u8]) {
        #[inline(always)]
        fn word(data: &[u8], at: usize) -> u32 {
            u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
        }
        #[inline(always)]
        fn fold(t: usize, w: u32) -> u32 {
            CRC_TABLES[t + 3][(w & 0xFF) as usize]
                ^ CRC_TABLES[t + 2][((w >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[t + 1][((w >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[t][(w >> 24) as usize]
        }
        let mut c = self.0;
        while data.len() >= 16 {
            c = fold(12, word(data, 0) ^ c)
                ^ fold(8, word(data, 4))
                ^ fold(4, word(data, 8))
                ^ fold(0, word(data, 12));
            data = &data[16..];
        }
        for &b in data {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 over `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// True if `token` is safe to use as a directory name under the durable
/// root: non-empty, at most 64 bytes, lowercase alphanumerics and dashes
/// only. Rejects anything that could traverse out of the root.
pub fn valid_token(token: &str) -> bool {
    !token.is_empty()
        && token.len() <= 64
        && token
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

/// Mint a fresh session token from a server-wide sequence number and the
/// wall clock, e.g. `s42-1754700000123456789`. Unique per server process
/// (the sequence) and overwhelmingly unique across restarts (the clock).
pub fn new_token(seq: u64) -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("s{seq}-{nanos}")
}

/// Segment filename for the segment whose first payload byte is `start`.
fn segment_name(start: u64) -> String {
    format!("wal-{start:020}.log")
}

/// Everything read back from a session's durable directory at resume time.
#[derive(Debug)]
pub struct RecoveredSession {
    /// Registered queries, in registration order, as `(name, expression)`.
    pub queries: Vec<(String, String)>,
    /// The latest snapshot bytes, if a snapshot was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// The full recovered WAL payload (every valid data record,
    /// concatenated in order).
    pub wal: Vec<u8>,
    /// True if the WAL records that the client already ended its stream.
    pub ended: bool,
}

/// A live per-session write-ahead log rooted at `<root>/<token>/`.
///
/// All appends go through [`SessionLog::append_data`] /
/// [`SessionLog::append_end`] *before* the engine consumes the bytes, so
/// any input the engine has seen is re-derivable from disk.
#[derive(Debug)]
pub struct SessionLog {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment: BufWriter<File>,
    /// First payload byte offset of the active segment.
    segment_start: u64,
    /// Payload bytes appended to the active segment so far.
    segment_bytes: u64,
    /// Total payload bytes in the log (across all segments).
    total: u64,
    ended: bool,
    /// Raw bytes written to WAL segments (records incl. headers) — the
    /// `wal.bytes` trace counter.
    wal_bytes: u64,
}

impl SessionLog {
    /// Create a fresh session directory and its first WAL segment, writing
    /// `queries.txt` so the session can be re-registered at resume.
    pub fn create(
        root: &Path,
        token: &str,
        queries: &[(String, String)],
        fsync: FsyncPolicy,
    ) -> io::Result<Self> {
        let dir = root.join(token);
        fs::create_dir_all(&dir)?;
        let mut qf = File::create(dir.join("queries.txt"))?;
        for (name, expr) in queries {
            writeln!(qf, "{name}={expr}")?;
        }
        qf.sync_all()?;
        let segment = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(dir.join(segment_name(0)))?;
        Ok(SessionLog {
            dir,
            fsync,
            segment: BufWriter::with_capacity(SEGMENT_BUF, segment),
            segment_start: 0,
            segment_bytes: 0,
            total: 0,
            ended: false,
            wal_bytes: 0,
        })
    }

    /// Reopen the log of a recovered session for further appends. A *new*
    /// segment is started at `total` (truncating any torn segment of the
    /// same name), which is what makes torn tails unambiguous: replay never
    /// continues past a valid prefix into bytes a previous incarnation
    /// wrote after it.
    pub fn append_after(
        root: &Path,
        token: &str,
        total: u64,
        ended: bool,
        fsync: FsyncPolicy,
    ) -> io::Result<Self> {
        let dir = root.join(token);
        let segment = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(dir.join(segment_name(total)))?;
        Ok(SessionLog {
            dir,
            fsync,
            segment: BufWriter::with_capacity(SEGMENT_BUF, segment),
            segment_start: total,
            segment_bytes: 0,
            total,
            ended,
            wal_bytes: 0,
        })
    }

    /// Total payload bytes recorded (parse offset of the next input byte).
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Raw segment bytes written by this handle (headers included).
    pub fn wal_bytes_written(&self) -> u64 {
        self.wal_bytes
    }

    /// True once [`SessionLog::append_end`] has been recorded.
    pub fn ended(&self) -> bool {
        self.ended
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        let mut crc = Crc32::new();
        crc.update(&[kind]);
        crc.update(payload);
        let mut header = [0u8; 9];
        header[..4].copy_from_slice(&((1 + payload.len()) as u32).to_le_bytes());
        header[4..8].copy_from_slice(&crc.finish().to_le_bytes());
        header[8] = kind;
        self.segment.write_all(&header)?;
        self.segment.write_all(payload)?;
        self.wal_bytes += (header.len() + payload.len()) as u64;
        self.segment_bytes += payload.len() as u64;
        self.total += payload.len() as u64;
        if self.fsync == FsyncPolicy::Always {
            self.segment.flush()?;
            self.segment.get_ref().sync_data()?;
        }
        if self.segment_bytes >= SEGMENT_BYTES {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal the finished segment before opening the next one — except
        // under `Never`, where durability is explicitly best-effort and a
        // rotation must not smuggle an fsync onto the hot path.
        self.segment.flush()?;
        if self.fsync != FsyncPolicy::Never {
            self.segment.get_ref().sync_data()?;
        }
        self.segment_start = self.total;
        self.segment_bytes = 0;
        let segment = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(self.dir.join(segment_name(self.segment_start)))?;
        self.segment = BufWriter::with_capacity(SEGMENT_BUF, segment);
        Ok(())
    }

    /// Append one data-frame payload. Must be called before the engine
    /// consumes the bytes (write-*ahead*).
    pub fn append_data(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_record(REC_DATA, payload)
    }

    /// Record the client's end-of-stream marker.
    pub fn append_end(&mut self) -> io::Result<()> {
        self.append_record(REC_END, &[])?;
        self.ended = true;
        // Always hand the END record to the OS — even under `Never` a clean
        // process exit should leave a complete log on disk.
        self.segment.flush()?;
        if self.fsync != FsyncPolicy::Never {
            self.segment.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Document-boundary sync point: under [`FsyncPolicy::OnDocument`] (and
    /// `Always`) the active segment is flushed to disk, so the snapshot
    /// about to be written never refers to WAL bytes that could vanish.
    pub fn sync_for_document(&mut self) -> io::Result<()> {
        self.segment.flush()?;
        if self.fsync != FsyncPolicy::Never {
            self.segment.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Atomically replace `snapshot.bin` with `bytes` (write to a temp file
    /// in the same directory, sync, rename). Under [`FsyncPolicy::Never`]
    /// the sync is skipped like every other one: the rename still keeps the
    /// swap atomic, durability is best-effort by choice.
    pub fn write_snapshot(&self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if self.fsync != FsyncPolicy::Never {
            f.sync_all()?;
        }
        drop(f);
        fs::rename(&tmp, self.dir.join("snapshot.bin"))
    }

    /// Remove closed WAL segments that end at or before `offset` (the
    /// parse offset the latest snapshot resumes from). The active segment
    /// is never pruned.
    pub fn prune(&self, offset: u64) -> io::Result<()> {
        for (start, path) in list_segments(&self.dir)? {
            if start >= self.segment_start {
                continue; // active (or later) segment
            }
            // A closed segment covers [start, next_start). It is safe to
            // remove only if everything it holds is at or before `offset`,
            // i.e. the *next* segment starts at or before `offset`.
            let next_start = next_segment_start(&self.dir, start)?;
            if let Some(next) = next_start {
                if next <= offset {
                    fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }
}

/// All WAL segments in `dir`, sorted by their start offset.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("wal-") {
            if let Some(digits) = rest.strip_suffix(".log") {
                if let Ok(start) = digits.parse::<u64>() {
                    segments.push((start, entry.path()));
                }
            }
        }
    }
    segments.sort_by_key(|(s, _)| *s);
    Ok(segments)
}

/// Start offset of the segment that follows the one starting at `start`,
/// if any.
fn next_segment_start(dir: &Path, start: u64) -> io::Result<Option<u64>> {
    let segments = list_segments(dir)?;
    Ok(segments
        .iter()
        .map(|(s, _)| *s)
        .filter(|s| *s > start)
        .min())
}

/// Scan one segment file, appending every valid record's payload to `out`.
/// Returns `(payload_bytes, ended, clean)`: `clean` is false if the scan
/// stopped at a torn or corrupted record (payload bytes before the tear are
/// still recovered).
fn scan_segment(path: &Path, out: &mut Vec<u8>) -> io::Result<(u64, bool, bool)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut pos = 0usize;
    let mut payload_bytes = 0u64;
    let mut ended = false;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len) {
            Some(e) if e <= bytes.len() && len >= 1 => e,
            _ => return Ok((payload_bytes, ended, false)), // torn tail
        };
        let body = &bytes[body_start..body_end];
        if crc32(body) != crc {
            return Ok((payload_bytes, ended, false)); // corrupted record
        }
        match body[0] {
            REC_DATA => {
                out.extend_from_slice(&body[1..]);
                payload_bytes += (len - 1) as u64;
            }
            REC_END => ended = true,
            _ => return Ok((payload_bytes, ended, false)), // unknown kind
        }
        pos = body_end;
    }
    // Trailing partial header (< 8 bytes) is a torn tail too, but the
    // records before it are all valid.
    Ok((payload_bytes, ended, pos == bytes.len()))
}

/// Read back everything the durable directory holds for `token`: queries,
/// the latest snapshot (if any), and the longest valid WAL prefix.
/// Returns `Ok(None)` if no such session directory exists.
pub fn recover(root: &Path, token: &str) -> io::Result<Option<RecoveredSession>> {
    let dir = root.join(token);
    if !dir.is_dir() {
        return Ok(None);
    }
    let queries_text = fs::read_to_string(dir.join("queries.txt"))?;
    let mut queries = Vec::new();
    for line in queries_text.lines() {
        if let Some((name, expr)) = line.split_once('=') {
            queries.push((name.to_string(), expr.to_string()));
        }
    }
    let snapshot = fs::read(dir.join("snapshot.bin")).ok();
    let segments = list_segments(&dir)?;
    let mut wal = Vec::new();
    // After pruning, the earliest retained segment may start past 0; the
    // recovered WAL then covers [first_start, total) and the caller maps
    // offsets via [`recovered_wal_start`].
    let mut total = segments.first().map(|(s, _)| *s).unwrap_or(0);
    let mut ended = false;
    for (start, path) in segments {
        if start != total {
            break; // gap or duplicate: stop at the valid prefix
        }
        let (payload, seg_ended, _clean) = scan_segment(&path, &mut wal)?;
        total += payload;
        ended |= seg_ended;
        if ended {
            break; // END is always the last record
        }
        // A torn tail does NOT end the scan by itself: a resumed session
        // opens a fresh segment named by the recovered total, so the
        // `start != total` gate above is what distinguishes "torn final
        // segment" (no successor at `total` → loop ends) from "torn
        // mid-log segment followed by a resume's continuation".
    }
    // If pruning removed early segments, `wal` holds only bytes from the
    // first remaining segment onward — but then a snapshot at or past that
    // segment's start exists, so resume never needs the pruned bytes.
    // Callers slice `wal` relative to the first retained segment's start.
    Ok(Some(RecoveredSession {
        queries,
        snapshot,
        wal,
        ended,
    }))
}

/// Parse offset of the first byte held in the recovered WAL — the start
/// offset of the earliest retained segment (0 unless pruning ran).
pub fn recovered_wal_start(root: &Path, token: &str) -> io::Result<u64> {
    let segments = list_segments(&root.join(token))?;
    Ok(segments.first().map(|(s, _)| *s).unwrap_or(0))
}

/// Remove a session's durable directory entirely (clean session end).
pub fn remove(root: &Path, token: &str) -> io::Result<()> {
    let dir = root.join(token);
    if dir.is_dir() {
        fs::remove_dir_all(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spex-durable-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn queries() -> Vec<(String, String)> {
        vec![("q".to_string(), "a.b".to_string())]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value, plus lengths that exercise both
        // the slicing-by-8 fast path and the byte-at-a-time tail.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let long: Vec<u8> = (0..1021u32).map(|i| (i % 251) as u8).collect();
        let mut slow = 0xFFFF_FFFFu32;
        for &b in &long {
            slow = CRC_TABLES[0][((slow ^ b as u32) & 0xFF) as usize] ^ (slow >> 8);
        }
        assert_eq!(crc32(&long), slow ^ 0xFFFF_FFFF);
        // Incremental updates across an arbitrary split agree with one-shot.
        let mut inc = Crc32::new();
        inc.update(&long[..13]);
        inc.update(&long[13..]);
        assert_eq!(inc.finish(), crc32(&long));
    }

    #[test]
    fn wal_round_trips_payloads_and_end() {
        let root = temp_root("roundtrip");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        log.append_data(b"<a>").unwrap();
        log.append_data(b"<b/></a>").unwrap();
        log.append_end().unwrap();
        assert_eq!(log.total_bytes(), 11);
        assert!(log.ended());
        drop(log);
        let rec = recover(&root, "t1").unwrap().expect("session exists");
        assert_eq!(rec.queries, queries());
        assert_eq!(rec.wal, b"<a><b/></a>");
        assert!(rec.ended);
        assert!(rec.snapshot.is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_recovers_longest_valid_prefix() {
        let root = temp_root("torn");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        log.append_data(b"<a>good</a>").unwrap();
        drop(log);
        // Simulate a crash mid-write: append a record header that promises
        // more bytes than exist.
        let seg = root.join("t1").join(segment_name(0));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();
        drop(f);
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.wal, b"<a>good</a>");
        assert!(!rec.ended);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_crc_ends_the_segment() {
        let root = temp_root("crc");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        log.append_data(b"first").unwrap();
        log.append_data(b"second").unwrap();
        drop(log);
        // Flip a byte inside the second record's payload.
        let seg = root.join("t1").join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.wal, b"first");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_opens_fresh_segment_past_torn_tail() {
        let root = temp_root("resume");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        log.append_data(b"alpha").unwrap();
        drop(log);
        // Torn garbage after the valid record.
        let seg = root.join("t1").join(segment_name(0));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[9, 0, 0, 0]).unwrap();
        drop(f);
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.wal, b"alpha");
        // Resume appends from the recovered total (5): a new segment.
        let mut log = SessionLog::append_after(&root, "t1", 5, false, FsyncPolicy::Never).unwrap();
        log.append_data(b"-beta").unwrap();
        drop(log);
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.wal, b"alpha-beta");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn segments_rotate_and_recover_in_order() {
        let root = temp_root("rotate");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        let chunk = vec![b'x'; 700 * 1024];
        log.append_data(&chunk).unwrap(); // < 1 MiB, stays in segment 0
        log.append_data(&chunk).unwrap(); // crosses 1 MiB, rotates after
        log.append_data(b"tail").unwrap(); // lands in segment at 1400 KiB
        drop(log);
        let segs = list_segments(&root.join("t1")).unwrap();
        assert_eq!(segs.len(), 2, "one rotation expected");
        assert_eq!(segs[1].0, 1400 * 1024);
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.wal.len(), 1400 * 1024 + 4);
        assert!(rec.wal.ends_with(b"tail"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_is_atomic_and_prune_keeps_needed_segments() {
        let root = temp_root("prune");
        let mut log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        let chunk = vec![b'y'; 1024 * 1024];
        log.append_data(&chunk).unwrap(); // fills segment 0, rotates
        log.append_data(b"doc2").unwrap();
        log.write_snapshot(b"SNAPSHOT").unwrap();
        // Snapshot taken at offset 1 MiB + 4: segment 0 (ends at 1 MiB) is
        // fully covered and prunable.
        log.prune(1024 * 1024 + 4).unwrap();
        drop(log);
        let segs = list_segments(&root.join("t1")).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 1024 * 1024);
        let rec = recover(&root, "t1").unwrap().unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"SNAPSHOT"[..]));
        // Recovered WAL now starts at the retained segment's offset.
        assert_eq!(recovered_wal_start(&root, "t1").unwrap(), 1024 * 1024);
        assert_eq!(rec.wal, b"doc2");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tokens_validate_and_mint() {
        assert!(valid_token("s1-123"));
        assert!(valid_token("abc-def-0"));
        assert!(!valid_token(""));
        assert!(!valid_token("../escape"));
        assert!(!valid_token("UPPER"));
        assert!(!valid_token("has space"));
        assert!(!valid_token(&"x".repeat(65)));
        let t = new_token(7);
        assert!(valid_token(&t), "minted token must validate: {t}");
        assert!(t.starts_with("s7-"));
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!(
            "document".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::OnDocument
        );
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::OnDocument);
        assert_eq!(FsyncPolicy::OnDocument.to_string(), "document");
    }

    #[test]
    fn remove_deletes_session_dir() {
        let root = temp_root("remove");
        let log = SessionLog::create(&root, "t1", &queries(), FsyncPolicy::Never).unwrap();
        drop(log);
        assert!(root.join("t1").is_dir());
        remove(&root, "t1").unwrap();
        assert!(!root.join("t1").exists());
        assert!(recover(&root, "t1").unwrap().is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
