//! A tiny std-only readiness poller behind the reactor.
//!
//! The workspace vendors no async runtime and no `libc` crate, so the
//! reactor talks to the kernel's readiness APIs directly: `epoll(7)` on
//! Linux (O(ready) wakeups, the only backend that makes 10k+ connections
//! cheap), `poll(2)` on other unix systems, and a degraded timed-tick
//! backend everywhere else (every registered token reports ready each
//! tick; level-triggered callers stay correct, just busier). Both unix
//! backends are raw `extern "C"` declarations against the platform libc
//! that `std` already links — the same zero-dependency stance as
//! [`crate::signal`].
//!
//! The poller is level-triggered: a token keeps reporting ready while the
//! condition holds, so a caller that does not fully drain a socket is
//! woken again instead of hanging. Cross-thread wakeups go through a
//! [`Waker`] (a nonblocking [`std::os::unix::net::UnixStream`] pair on
//! unix; a flag on the fallback), which surfaces as a readable event on
//! the reserved [`WAKE_TOKEN`].

/// Token reserved for the cross-thread [`Waker`]; never used for a
/// connection or listener registration.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Reading would make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing would make progress.
    pub writable: bool,
}

/// Interest set for a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Watch for readability.
    pub read: bool,
    /// Watch for writability.
    pub write: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

#[cfg(unix)]
pub(crate) use imp::{fd_of, fd_of_listener, Poller, Waker};

#[cfg(not(unix))]
pub(crate) use fallback::{fd_of, fd_of_listener, Poller, Waker};

#[cfg(unix)]
mod imp {
    use super::{Interest, PollEvent, WAKE_TOKEN};
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    /// The raw fd of a connection socket, as the poller's registration key.
    pub(crate) fn fd_of(stream: &std::net::TcpStream) -> RawFd {
        stream.as_raw_fd()
    }

    /// The raw fd of the listening socket.
    pub(crate) fn fd_of_listener(listener: &std::net::TcpListener) -> RawFd {
        listener.as_raw_fd()
    }

    /// Cross-thread wakeup handle: writing one byte makes the poller's
    /// current (or next) wait return with a readable [`WAKE_TOKEN`] event.
    /// The socketpair is nonblocking; a full pipe means a wakeup is already
    /// pending, which is exactly as good as another one.
    #[derive(Clone)]
    pub(crate) struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    #[cfg(target_os = "linux")]
    mod backend {
        use super::super::{Interest, PollEvent, WAKE_TOKEN};
        use std::io;
        use std::os::unix::io::RawFd;
        use std::time::Duration;

        const EPOLL_CTL_ADD: i32 = 1;
        const EPOLL_CTL_DEL: i32 = 2;
        const EPOLL_CTL_MOD: i32 = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;
        const EPOLL_CLOEXEC: i32 = 0o2000000;

        /// Matches the kernel's `struct epoll_event` ABI on every Linux
        /// target: x86-64 packs it to 12 bytes, which `repr(C, packed)`
        /// reproduces (and on other architectures the layout is identical
        /// because both fields are naturally ordered).
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        // SAFETY contract for the declarations: these are the documented
        // Linux syscall wrappers from the libc that std already links; the
        // signatures match epoll_create1(2)/epoll_ctl(2)/epoll_wait(2)/
        // close(2).
        #[allow(unsafe_code)]
        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        fn last_error() -> io::Error {
            io::Error::last_os_error()
        }

        /// The Linux backend: one epoll instance, tokens carried in
        /// `epoll_data`.
        pub(crate) struct Selector {
            epfd: i32,
            buf: Vec<EpollEvent>,
        }

        impl Selector {
            pub(crate) fn new() -> io::Result<Selector> {
                // SAFETY: epoll_create1 takes a flag word and returns a new
                // fd or -1; no pointers are involved.
                #[allow(unsafe_code)]
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(last_error());
                }
                Ok(Selector {
                    epfd,
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                })
            }

            fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
                let mut ev = EpollEvent {
                    events: {
                        let mut e = EPOLLRDHUP;
                        if interest.read {
                            e |= EPOLLIN;
                        }
                        if interest.write {
                            e |= EPOLLOUT;
                        }
                        e
                    },
                    data: token,
                };
                // SAFETY: `ev` is a valid, initialized epoll_event for the
                // duration of the call; the kernel copies it and keeps no
                // reference past return.
                #[allow(unsafe_code)]
                let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
                if rc < 0 {
                    return Err(last_error());
                }
                Ok(())
            }

            pub(crate) fn register(
                &mut self,
                fd: RawFd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, token, interest)
            }

            pub(crate) fn reregister(
                &mut self,
                fd: RawFd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, token, interest)
            }

            pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
                let mut ev = EpollEvent { events: 0, data: 0 };
                // SAFETY: a non-null event pointer is required pre-2.6.9;
                // otherwise as `ctl` above.
                #[allow(unsafe_code)]
                let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
                if rc < 0 {
                    return Err(last_error());
                }
                Ok(())
            }

            pub(crate) fn wait(
                &mut self,
                timeout: Option<Duration>,
                out: &mut Vec<PollEvent>,
            ) -> io::Result<()> {
                let ms = timeout
                    .map(|t| t.as_millis().min(i32::MAX as u128) as i32)
                    .unwrap_or(-1);
                // SAFETY: `buf` is a live, writable array of `buf.len()`
                // initialized epoll_events; the kernel writes at most that
                // many entries and returns the count.
                #[allow(unsafe_code)]
                let n = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms)
                };
                if n < 0 {
                    let e = last_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for ev in &self.buf[..n as usize] {
                    let events = ev.events;
                    let hup = events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                    out.push(PollEvent {
                        token: ev.data,
                        // Errors and hangups surface as readability: the
                        // next read reports the error or EOF.
                        readable: events & EPOLLIN != 0 || hup,
                        writable: events & EPOLLOUT != 0 || events & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                if n as usize == self.buf.len() && self.buf.len() < 16 * 1024 {
                    let grow = self.buf.len() * 2;
                    self.buf.resize(grow, EpollEvent { events: 0, data: 0 });
                }
                Ok(())
            }
        }

        impl Drop for Selector {
            fn drop(&mut self) {
                // SAFETY: closing an fd this struct exclusively owns.
                #[allow(unsafe_code)]
                unsafe {
                    close(self.epfd);
                }
            }
        }

        pub(crate) const WAKE: u64 = WAKE_TOKEN;
    }

    #[cfg(not(target_os = "linux"))]
    mod backend {
        use super::super::{Interest, PollEvent, WAKE_TOKEN};
        use std::io;
        use std::os::unix::io::RawFd;
        use std::time::Duration;

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;

        /// Matches `struct pollfd` from poll(2) on every unix.
        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }

        // SAFETY contract: the documented poll(2) wrapper from the libc
        // std already links.
        #[allow(unsafe_code)]
        extern "C" {
            fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        }

        /// The portable unix backend: a rebuilt pollfd array per wait.
        /// O(registered) per call, which is fine for the test-scale use
        /// this backend sees; Linux (the deployment target) uses epoll.
        pub(crate) struct Selector {
            regs: Vec<(RawFd, u64, Interest)>,
        }

        impl Selector {
            pub(crate) fn new() -> io::Result<Selector> {
                Ok(Selector { regs: Vec::new() })
            }

            pub(crate) fn register(
                &mut self,
                fd: RawFd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.regs.push((fd, token, interest));
                Ok(())
            }

            pub(crate) fn reregister(
                &mut self,
                fd: RawFd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                if let Some(slot) = self.regs.iter_mut().find(|(f, _, _)| *f == fd) {
                    *slot = (fd, token, interest);
                    Ok(())
                } else {
                    self.register(fd, token, interest)
                }
            }

            pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
                self.regs.retain(|(f, _, _)| *f != fd);
                Ok(())
            }

            pub(crate) fn wait(
                &mut self,
                timeout: Option<Duration>,
                out: &mut Vec<PollEvent>,
            ) -> io::Result<()> {
                let mut fds: Vec<PollFd> = self
                    .regs
                    .iter()
                    .map(|(fd, _, i)| PollFd {
                        fd: *fd,
                        events: {
                            let mut e = 0i16;
                            if i.read {
                                e |= POLLIN;
                            }
                            if i.write {
                                e |= POLLOUT;
                            }
                            e
                        },
                        revents: 0,
                    })
                    .collect();
                let ms = timeout
                    .map(|t| t.as_millis().min(i32::MAX as u128) as i32)
                    .unwrap_or(-1);
                // SAFETY: `fds` is a live, writable array of exactly
                // `fds.len()` initialized pollfds for the duration of the
                // call.
                #[allow(unsafe_code)]
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for (slot, (_, token, _)) in fds.iter().zip(&self.regs) {
                    if slot.revents == 0 {
                        continue;
                    }
                    let hup = slot.revents & (POLLERR | POLLHUP) != 0;
                    out.push(PollEvent {
                        token: *token,
                        readable: slot.revents & POLLIN != 0 || hup,
                        writable: slot.revents & POLLOUT != 0 || hup,
                    });
                }
                Ok(())
            }
        }

        pub(crate) const WAKE: u64 = WAKE_TOKEN;
    }

    /// The unix poller: a platform selector plus the waker socketpair
    /// (registered under [`WAKE_TOKEN`]).
    pub(crate) struct Poller {
        selector: backend::Selector,
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            wake_rx.set_nonblocking(true)?;
            let mut selector = backend::Selector::new()?;
            selector.register(wake_rx.as_raw_fd(), backend::WAKE, Interest::READ)?;
            Ok(Poller {
                selector,
                wake_rx,
                wake_tx: Arc::new(wake_tx),
            })
        }

        pub(crate) fn waker(&self) -> Waker {
            Waker {
                tx: Arc::clone(&self.wake_tx),
            }
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.selector.register(fd, token, interest)
        }

        pub(crate) fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.selector.reregister(fd, token, interest)
        }

        pub(crate) fn deregister(&mut self, fd: RawFd, _token: u64) -> io::Result<()> {
            self.selector.deregister(fd)
        }

        /// Wait for readiness; wake events are drained internally and
        /// reported (deduplicated) as one [`WAKE_TOKEN`] entry.
        pub(crate) fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            self.selector.wait(timeout, out)?;
            let mut woke = false;
            out.retain(|ev| {
                if ev.token == WAKE_TOKEN {
                    woke = true;
                    false
                } else {
                    true
                }
            });
            if woke {
                let mut sink = [0u8; 64];
                while let Ok(n) = (&self.wake_rx).read(&mut sink) {
                    if n < sink.len() {
                        break;
                    }
                }
                out.push(PollEvent {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod fallback {
    use super::{Interest, PollEvent, WAKE_TOKEN};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Registration key placeholder on platforms without raw fds.
    pub(crate) type RawFd = i32;

    pub(crate) fn fd_of(_stream: &std::net::TcpStream) -> RawFd {
        0
    }

    pub(crate) fn fd_of_listener(_listener: &std::net::TcpListener) -> RawFd {
        0
    }

    #[derive(Clone)]
    pub(crate) struct Waker {
        flag: Arc<AtomicBool>,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            self.flag.store(true, Ordering::Release);
        }
    }

    /// Degraded timed-tick poller: every registered token reports ready
    /// each tick. Level-triggered callers stay correct (nonblocking I/O
    /// simply returns `WouldBlock`), at a fixed polling cost.
    pub(crate) struct Poller {
        regs: Vec<(u64, Interest)>,
        flag: Arc<AtomicBool>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                regs: Vec::new(),
                flag: Arc::new(AtomicBool::new(false)),
            })
        }

        pub(crate) fn waker(&self) -> Waker {
            Waker {
                flag: Arc::clone(&self.flag),
            }
        }

        pub(crate) fn register(
            &mut self,
            _fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.regs.push((token, interest));
            Ok(())
        }

        pub(crate) fn reregister(
            &mut self,
            _fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            if let Some(slot) = self.regs.iter_mut().find(|(t, _)| *t == token) {
                slot.1 = interest;
            } else {
                self.regs.push((token, interest));
            }
            Ok(())
        }

        pub(crate) fn deregister(&mut self, _fd: RawFd, token: u64) -> io::Result<()> {
            self.regs.retain(|(t, _)| *t != token);
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            let tick = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            std::thread::sleep(tick);
            if self.flag.swap(false, Ordering::Acquire) {
                out.push(PollEvent {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                });
            }
            for (token, interest) in &self.regs {
                out.push(PollEvent {
                    token: *token,
                    readable: interest.read,
                    writable: interest.write,
                });
            }
            Ok(())
        }
    }
}

/// Parse the soft open-files limit from `/proc/self/limits` (Linux), as a
/// conservative connection-count clamp; `None` when unavailable.
pub fn soft_fd_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Max open files") {
            let soft = rest.split_whitespace().next()?;
            if soft == "unlimited" {
                return Some(u64::MAX);
            }
            return soft.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// The selector reports a listener readable once a peer connects, and
    /// a connection readable once bytes arrive — the reactor's two load-
    /// bearing readiness signals.
    #[test]
    fn poller_reports_accept_and_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(fd_of_listener(&listener), 1, Interest::READ)
            .unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events
            .iter()
            .any(|e: &PollEvent| e.token == 1 && e.readable)
        {
            assert!(std::time::Instant::now() < deadline, "accept never ready");
            events.clear();
            poller
                .wait(Some(Duration::from_millis(100)), &mut events)
                .unwrap();
        }
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller
            .register(fd_of(&accepted), 2, Interest::READ)
            .unwrap();

        client.write_all(b"ping").unwrap();
        events.clear();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events
            .iter()
            .any(|e: &PollEvent| e.token == 2 && e.readable)
        {
            assert!(std::time::Instant::now() < deadline, "read never ready");
            events.clear();
            poller
                .wait(Some(Duration::from_millis(100)), &mut events)
                .unwrap();
        }
        poller.deregister(fd_of(&accepted), 2).unwrap();
    }

    /// A waker fired from another thread interrupts an otherwise idle wait.
    #[test]
    fn waker_interrupts_an_idle_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        let deadline = started + Duration::from_secs(5);
        while !events.iter().any(|e: &PollEvent| e.token == WAKE_TOKEN) {
            assert!(std::time::Instant::now() < deadline, "wake never arrived");
            events.clear();
            poller
                .wait(Some(Duration::from_millis(200)), &mut events)
                .unwrap();
        }
        handle.join().unwrap();
    }
}
