//! Shared per-connection state between the reactor (which owns the
//! socket) and the worker that runs the connection's session machine.
//!
//! The reactor is the only thread that touches the socket: it shovels
//! received bytes into the [`Inbox`] and flushes the [`Outbound`] buffer
//! when the socket is writable. The session machine, pinned to one worker,
//! decodes frames out of the inbox and appends frames to the outbound
//! buffer; neither side ever blocks on the other — coordination is a pair
//! of small mutex-guarded buffers, a condvar (for the machine's bounded
//! blocking fallback), and a few atomics.

use crate::poll::Waker;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Pause socket reads once this many undecoded bytes sit in the inbox;
/// the sender is backpressured through TCP instead of server memory.
pub(crate) const INBOX_HIGH: usize = 1 << 20;
/// Resume socket reads once the machine drained the inbox below this.
pub(crate) const INBOX_LOW: usize = 64 * 1024;
/// Suspend a session once this many unsent bytes are buffered outbound;
/// it resumes when the peer has read enough (writability backpressure).
pub(crate) const OUT_HIGH: usize = 256 * 1024;
/// Resume a write-suspended session below this outbound backlog.
pub(crate) const OUT_LOW: usize = 64 * 1024;

/// `Conn::needs` bit: the machine is suspended until input arrives.
pub(crate) const WANT_INPUT: u8 = 1;
/// `Conn::needs` bit: the machine is suspended until the outbound buffer
/// drains below [`OUT_LOW`].
pub(crate) const WANT_WRITE: u8 = 2;

/// Bytes received but not yet decoded, plus the input-side termination
/// state.
#[derive(Default)]
pub(crate) struct Inbox {
    pub(crate) buf: Vec<u8>,
    /// Peer sent EOF (orderly shutdown of its write half).
    pub(crate) ended: bool,
    /// Socket error, or a deadline the reactor imposed (`TimedOut`).
    pub(crate) error: Option<std::io::ErrorKind>,
    /// The reactor disarmed read interest at the [`INBOX_HIGH`] watermark;
    /// the drainer must request a sync once it falls below [`INBOX_LOW`].
    pub(crate) paused: bool,
}

/// Bytes queued toward the socket.
#[derive(Default)]
pub(crate) struct Outbound {
    pub(crate) buf: Vec<u8>,
    /// Prefix of `buf` already written to the socket.
    pub(crate) pos: usize,
    /// Sticky write failure: further frames are dropped, the session
    /// outcome is decided by the input side (or the reactor's deadline).
    pub(crate) dead: bool,
}

impl Outbound {
    /// Unsent byte count.
    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reclaim the written prefix once it dominates the buffer.
    pub(crate) fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// One connection's shared state. The reactor holds the socket and one
/// `Arc<Conn>`; the pinned worker's session machine holds another.
pub(crate) struct Conn {
    /// Reactor token, unique for the server's lifetime.
    pub(crate) id: u64,
    /// Peer address (the per-tenant fairness key is its IP).
    pub(crate) peer: Option<SocketAddr>,
    /// Index of the worker this connection is pinned to.
    pub(crate) worker: usize,
    pub(crate) accepted_at: Instant,
    pub(crate) inbox: Mutex<Inbox>,
    /// Signaled on every inbox append and termination-state change, for
    /// the eval source's bounded blocking fallback.
    pub(crate) inbox_ready: Condvar,
    pub(crate) outbound: Mutex<Outbound>,
    /// [`WANT_INPUT`] / [`WANT_WRITE`]: why the machine is suspended.
    pub(crate) needs: AtomicU8,
    /// Already sitting in its worker's ready queue (dedupe).
    pub(crate) queued: AtomicBool,
    /// A session machine exists (first bytes were seen).
    pub(crate) started: AtomicBool,
    /// The machine finished; the reactor flushes outbound, then closes.
    pub(crate) done: AtomicBool,
    /// The reactor hard-closed the connection (write deadline, shutdown);
    /// the machine short-circuits to `Failed`.
    pub(crate) killed: AtomicBool,
    /// Milliseconds after `accepted_at` of the last *completed* frame
    /// (u64::MAX = none yet) — the idle-reaping clock: a slowloris peer
    /// trickling bytes that never finish a frame does not refresh it.
    pub(crate) last_frame_ms: AtomicU64,
    /// When the connection first became runnable (first bytes), for the
    /// admission-wait histogram; taken by the worker on first pop.
    pub(crate) first_ready: Mutex<Option<Instant>>,
}

impl Conn {
    pub(crate) fn new(id: u64, peer: Option<SocketAddr>, worker: usize) -> Conn {
        Conn {
            id,
            peer,
            worker,
            accepted_at: Instant::now(),
            inbox: Mutex::new(Inbox::default()),
            inbox_ready: Condvar::new(),
            outbound: Mutex::new(Outbound::default()),
            needs: AtomicU8::new(0),
            queued: AtomicBool::new(false),
            started: AtomicBool::new(false),
            done: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            last_frame_ms: AtomicU64::new(u64::MAX),
            first_ready: Mutex::new(None),
        }
    }

    /// Append one frame to the outbound buffer (dropped after a sticky
    /// write failure, like the old blocking `FrameWriter`). The reactor
    /// learns about the new bytes at the next sync.
    pub(crate) fn send_frame(&self, kind: crate::protocol::FrameKind, payload: &[u8]) {
        let mut out = self.outbound.lock().expect("outbound lock poisoned");
        if out.dead {
            return;
        }
        out.buf.push(kind.byte());
        out.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.buf.extend_from_slice(payload);
    }

    /// Unsent outbound bytes.
    pub(crate) fn outbound_pending(&self) -> usize {
        self.outbound
            .lock()
            .expect("outbound lock poisoned")
            .pending()
    }

    /// Record a completed inbound frame, refreshing the idle clock.
    /// Returns whether this was the connection's *first* complete frame
    /// (for the accept-to-first-frame histogram).
    pub(crate) fn note_frame_complete(&self) -> bool {
        let ms = self.accepted_at.elapsed().as_millis() as u64;
        self.last_frame_ms.swap(ms, Ordering::Relaxed) == u64::MAX
    }

    /// After draining the inbox: if the reactor had paused reads at the
    /// high watermark, ask it to reconcile (and re-arm) this connection.
    pub(crate) fn note_inbox_drained(&self, notifier: &Notifier) {
        let paused = {
            let inbox = self.inbox.lock().expect("inbox lock poisoned");
            inbox.paused && inbox.buf.len() < INBOX_LOW
        };
        if paused {
            notifier.sync(self.id);
        }
    }
}

/// The worker→reactor command channel: connection ids whose shared state
/// changed (new outbound bytes, a drained inbox, a finished machine). The
/// reactor drains it after every poll wakeup and reconciles each listed
/// connection against its socket interest set.
pub(crate) struct Notifier {
    cmds: Mutex<Vec<u64>>,
    waker: Waker,
}

impl Notifier {
    pub(crate) fn new(waker: Waker) -> Notifier {
        Notifier {
            cmds: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Ask the reactor to reconcile connection `id`.
    pub(crate) fn sync(&self, id: u64) {
        let mut cmds = self.cmds.lock().expect("cmd lock poisoned");
        let wake = cmds.is_empty();
        cmds.push(id);
        drop(cmds);
        if wake {
            self.waker.wake();
        }
    }

    /// Wake the reactor without a specific connection (shutdown).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    pub(crate) fn drain(&self, into: &mut Vec<u64>) {
        let mut cmds = self.cmds.lock().expect("cmd lock poisoned");
        into.append(&mut cmds);
    }
}
