//! The reactor: one thread that owns every socket and does nothing but
//! byte shoveling — accept, nonblocking reads into per-connection inboxes,
//! outbound-buffer flushes, deadlines, close. All protocol work happens in
//! [`SessionMachine`]s on the worker pool; the two sides meet only in the
//! [`Conn`] buffers and a handful of atomics.
//!
//! ## Scheduling
//!
//! A connection becomes *ready* when its first bytes arrive, when input
//! lands while its machine is suspended on [`WANT_INPUT`], or when the
//! outbound backlog drains below [`OUT_LOW`] while it is suspended on
//! [`WANT_WRITE`]. Ready connections are enqueued to the worker they are
//! pinned to (connection id modulo pool size — the engine run is not
//! `Send`, so a machine never migrates). Each worker's queue is fair *per
//! tenant*: connections are bucketed by peer IP and buckets are served
//! round-robin, so one tenant opening a thousand hot connections cannot
//! starve another tenant's single session; within its slice a machine is
//! bounded to a fixed event budget before it is rotated to the back.
//!
//! ## Suspend/resume protocol
//!
//! The worker, after a machine reports `NeedInput`/`NeedWrite`, sets the
//! matching `Conn::needs` bit and *re-checks* the condition; the reactor,
//! on the matching edge, *clears* the bit and enqueues if it was set.
//! Whichever side loses the race still observes the other's write, so a
//! wakeup is never lost.
//!
//! ## Deadlines
//!
//! A binary heap of `(instant, conn, kind)` with lazy re-validation: each
//! entry is checked against the connection's authoritative clock when it
//! pops, and pushed back if the clock moved. Read deadlines re-arm on any
//! ingress; idle deadlines re-arm only on a *completed* frame (so a
//! slowloris peer trickling single bytes is reaped); write deadlines fire
//! when the peer accepts no bytes for the whole window while output is
//! pending.

use crate::conn::{Conn, INBOX_HIGH, INBOX_LOW, OUT_LOW, WANT_INPUT, WANT_WRITE};
use crate::poll::{fd_of, fd_of_listener, soft_fd_limit, Interest, Poller, WAKE_TOKEN};
use crate::server::Shared;
use crate::session::{Advance, SessionEnd, SessionMachine};
use crate::signal;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The listener's poll token; connection ids start at 1.
const LISTENER_TOKEN: u64 = 0;

/// How long a rejected (`BUSY`) or drain-abandoned connection may take to
/// flush before it is dropped.
const GRACE: Duration = Duration::from_millis(250);

/// File descriptors reserved for everything that is not a connection
/// (listener, waker pair, trace sink, durable logs, stdio).
const FD_HEADROOM: u64 = 64;

/// Fairness bucket for peers with no resolvable address.
const NO_PEER: IpAddr = IpAddr::V4(Ipv4Addr::UNSPECIFIED);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DlKind {
    Read,
    Idle,
    Write,
    Grace,
}

/// Reactor-side state for one registered socket.
struct Active {
    conn: Arc<Conn>,
    stream: TcpStream,
    interest: Interest,
    /// Last time any bytes arrived (the read-deadline clock).
    last_ingress: Instant,
    /// Set while a nonempty outbound buffer is making no progress (the
    /// write-deadline clock); cleared on any accepted byte.
    write_stall_since: Option<Instant>,
    /// A `BUSY` shed: flush the one frame, then close. Never a machine.
    reject: bool,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Active>,
    deadlines: BinaryHeap<Reverse<(Instant, u64, DlKind)>>,
    next_id: u64,
    /// Effective concurrent-connection cap: `cfg.max_conns` clamped under
    /// the process's soft fd limit.
    max_conns: usize,
    draining: bool,
    /// Scratch buffers reused across iterations.
    events: Vec<crate::poll::PollEvent>,
    cmds: Vec<u64>,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<Shared>,
        poller: Poller,
        listener: TcpListener,
    ) -> std::io::Result<Reactor> {
        let mut poller = poller;
        poller.register(fd_of_listener(&listener), LISTENER_TOKEN, Interest::READ)?;
        let mut max_conns = shared.cfg.max_conns.max(1);
        if let Some(limit) = soft_fd_limit() {
            let usable = limit.saturating_sub(FD_HEADROOM).max(8) as usize;
            max_conns = max_conns.min(usable);
        }
        Ok(Reactor {
            shared,
            poller,
            listener: Some(listener),
            conns: HashMap::new(),
            deadlines: BinaryHeap::new(),
            next_id: 1,
            max_conns,
            draining: false,
            events: Vec::new(),
            cmds: Vec::new(),
        })
    }

    /// Shovel bytes until shutdown is requested and every connection has
    /// drained. Never returns early on transient I/O errors.
    pub(crate) fn run(mut self) {
        loop {
            if self.shared.cfg.watch_signals && signal::requested() {
                self.shared.begin_shutdown();
            }
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.start_drain();
            }
            if self.draining && self.conns.is_empty() {
                return;
            }
            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            events.clear();
            if self.poller.wait(Some(timeout), &mut events).is_err() {
                // A failed wait (EBADF from a torn-down fd, say) must not
                // spin the thread; back off and retry.
                std::thread::sleep(Duration::from_millis(1));
            }
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => {}
                    id => {
                        if ev.readable {
                            self.read_ready(id);
                        }
                        if ev.writable {
                            self.flush(id);
                        }
                    }
                }
            }
            self.events = events;
            self.drain_notifier();
            self.fire_deadlines();
        }
    }

    fn next_timeout(&mut self) -> Duration {
        let cap = Duration::from_millis(100);
        match self.deadlines.peek() {
            Some(Reverse((when, _, _))) => when.saturating_duration_since(Instant::now()).min(cap),
            None => cap,
        }
    }

    fn arm(&mut self, when: Instant, id: u64, kind: DlKind) {
        self.deadlines.push(Reverse((when, id, kind)));
    }

    // --- Accept ----------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if self.conns.len() >= self.max_conns {
                        self.reject(stream, Some(peer));
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    let worker = id as usize % self.shared.workers.len();
                    let conn = Arc::new(Conn::new(id, Some(peer), worker));
                    if self
                        .poller
                        .register(fd_of(&stream), id, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    let now = Instant::now();
                    if let Some(t) = self.shared.cfg.read_timeout {
                        self.arm(now + t, id, DlKind::Read);
                    }
                    if let Some(t) = self.shared.cfg.idle_timeout {
                        self.arm(now + t, id, DlKind::Idle);
                    }
                    self.conns.insert(
                        id,
                        Active {
                            conn,
                            stream,
                            interest: Interest::READ,
                            last_ingress: now,
                            write_stall_since: None,
                            reject: false,
                        },
                    );
                    self.shared
                        .stats
                        .sessions_started
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failures (EMFILE, aborted handshake):
                // skip, the next readiness report retries.
                Err(_) => return,
            }
        }
    }

    /// Shed a connection with a single `BUSY` frame. The frame usually
    /// fits the socket buffer of a fresh connection; if it does not, the
    /// socket is registered for writability under a short grace deadline.
    fn reject(&mut self, stream: TcpStream, peer: Option<std::net::SocketAddr>) {
        self.shared
            .stats
            .sessions_rejected
            .fetch_add(1, Ordering::Relaxed);
        let id = self.next_id;
        self.next_id += 1;
        let conn = Arc::new(Conn::new(id, peer, 0));
        conn.send_frame(crate::protocol::FrameKind::Busy, b"");
        let active = Active {
            conn,
            stream,
            interest: Interest {
                read: false,
                write: true,
            },
            last_ingress: Instant::now(),
            write_stall_since: None,
            reject: true,
        };
        self.conns.insert(id, active);
        self.flush(id);
        if self.conns.contains_key(&id) {
            let registered = {
                let active = &self.conns[&id];
                self.poller
                    .register(
                        fd_of(&active.stream),
                        id,
                        Interest {
                            read: false,
                            write: true,
                        },
                    )
                    .is_ok()
            };
            if registered {
                self.arm(Instant::now() + GRACE, id, DlKind::Grace);
            } else {
                self.conns.remove(&id);
            }
        }
    }

    // --- Socket I/O ------------------------------------------------------

    fn read_ready(&mut self, id: u64) {
        let Some(active) = self.conns.get_mut(&id) else {
            return;
        };
        if active.reject {
            // Anything the peer sends after a BUSY is discarded; a hangup
            // shows up as the flush failing.
            let mut sink = [0u8; 4096];
            while matches!(active.stream.read(&mut sink), Ok(n) if n > 0) {}
            return;
        }
        let mut buf = [0u8; 32 * 1024];
        let mut ingress = false;
        loop {
            let full = {
                let inbox = active.conn.inbox.lock().expect("inbox lock poisoned");
                inbox.ended || inbox.error.is_some() || inbox.buf.len() >= INBOX_HIGH
            };
            if full {
                break;
            }
            match active.stream.read(&mut buf) {
                Ok(0) => {
                    active.conn.inbox.lock().expect("inbox lock poisoned").ended = true;
                    ingress = true;
                    break;
                }
                Ok(n) => {
                    let mut inbox = active.conn.inbox.lock().expect("inbox lock poisoned");
                    inbox.buf.extend_from_slice(&buf[..n]);
                    if inbox.buf.len() >= INBOX_HIGH {
                        // Backpressure the sender through TCP: stop
                        // reading until the machine drains the inbox.
                        inbox.paused = true;
                    }
                    ingress = true;
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let mut inbox = active.conn.inbox.lock().expect("inbox lock poisoned");
                    if inbox.error.is_none() {
                        inbox.error = Some(e.kind());
                    }
                    ingress = true;
                    break;
                }
            }
        }
        if ingress {
            active.last_ingress = Instant::now();
            self.on_ingress(id);
        }
        self.update_interest(id);
    }

    /// React to new inbox content: wake the blocking-fallback waiter, spin
    /// up the session (first bytes), or resume a machine suspended on
    /// input. Machine-less terminations (a probe that connected and hung
    /// up without a byte) are settled here — the only sessions the reactor
    /// itself counts.
    fn on_ingress(&mut self, id: u64) {
        let Some(active) = self.conns.get(&id) else {
            return;
        };
        let conn = Arc::clone(&active.conn);
        conn.inbox_ready.notify_all();
        let (empty, ended, errored) = {
            let inbox = conn.inbox.lock().expect("inbox lock poisoned");
            (inbox.buf.is_empty(), inbox.ended, inbox.error.is_some())
        };
        if !conn.started.load(Ordering::Acquire) {
            if !empty {
                if !conn.started.swap(true, Ordering::AcqRel) {
                    *conn.first_ready.lock().expect("first_ready lock poisoned") =
                        Some(Instant::now());
                    self.enqueue(&conn);
                }
            } else if errored {
                self.close(id, Some(SessionEnd::Failed));
            } else if ended {
                self.close(id, Some(SessionEnd::Completed));
            }
            return;
        }
        if (!empty || ended || errored)
            && conn.needs.fetch_and(!WANT_INPUT, Ordering::AcqRel) & WANT_INPUT != 0
        {
            self.enqueue(&conn);
        }
    }

    /// Flush the outbound buffer toward the socket; track write-stall
    /// time, resume write-suspended machines under the low watermark, and
    /// close once a finished session has fully drained.
    fn flush(&mut self, id: u64) {
        let Some(active) = self.conns.get_mut(&id) else {
            return;
        };
        let conn = Arc::clone(&active.conn);
        // Snapshot `done` *before* the write loop: the worker appends every
        // final frame before its `done.store(Release)`, so observing `done`
        // here (Acquire) guarantees those frames are already visible to the
        // flush below. Loading it after draining would race — the worker
        // could append the session's closing frames between our last write
        // and the load, and we would close with them still buffered.
        let done = conn.done.load(Ordering::Acquire);
        let mut progressed = false;
        let pending = {
            let mut out = conn.outbound.lock().expect("outbound lock poisoned");
            while out.pending() > 0 && !out.dead {
                match active.stream.write(&out.buf[out.pos..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        out.pos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Sticky write failure: drop everything queued and
                        // everything yet to be queued; the session outcome
                        // is decided by the input side.
                        out.dead = true;
                        out.pos = out.buf.len();
                        progressed = true;
                    }
                }
            }
            out.compact();
            out.pending()
        };
        if pending == 0 || progressed {
            active.write_stall_since = None;
        } else if active.write_stall_since.is_none() {
            if let Some(t) = self.shared.cfg.write_timeout {
                let now = Instant::now();
                active.write_stall_since = Some(now);
                self.arm(now + t, id, DlKind::Write);
            }
        }
        if pending <= OUT_LOW
            && conn.needs.fetch_and(!WANT_WRITE, Ordering::AcqRel) & WANT_WRITE != 0
        {
            self.enqueue(&conn);
        }
        if pending == 0 {
            let reject = self.conns.get(&id).map(|a| a.reject).unwrap_or(false);
            if reject {
                self.close(id, None);
                return;
            }
            if done {
                // The worker already counted this session.
                self.close(id, None);
                return;
            }
        }
        self.update_interest(id);
    }

    /// Reconcile the poller's interest set with the connection's state:
    /// read while the inbox is open and under its watermark, write while
    /// output is pending.
    fn update_interest(&mut self, id: u64) {
        let Some(active) = self.conns.get_mut(&id) else {
            return;
        };
        let want_read = if active.reject {
            false
        } else {
            let inbox = active.conn.inbox.lock().expect("inbox lock poisoned");
            !inbox.ended && inbox.error.is_none() && !inbox.paused
        };
        let want_write = active.conn.outbound_pending() > 0;
        let desired = Interest {
            read: want_read,
            write: want_write,
        };
        if desired != active.interest {
            active.interest = desired;
            let _ = self.poller.reregister(fd_of(&active.stream), id, desired);
        }
    }

    fn enqueue(&self, conn: &Arc<Conn>) {
        let depth = self.shared.workers[conn.worker].push(Arc::clone(conn));
        if let Some(depth) = depth {
            self.shared.trace.ready_depth.record(depth as u64);
        }
    }

    /// Drop the connection. `count` settles machine-less sessions; worker-
    /// counted sessions pass `None`.
    fn close(&mut self, id: u64, count: Option<SessionEnd>) {
        let Some(active) = self.conns.remove(&id) else {
            return;
        };
        let _ = self.poller.deregister(fd_of(&active.stream), id);
        match count {
            Some(SessionEnd::Completed) => {
                self.shared
                    .stats
                    .sessions_completed
                    .fetch_add(1, Ordering::Relaxed);
            }
            Some(SessionEnd::Failed) => {
                self.shared
                    .stats
                    .sessions_failed
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
    }

    /// Hard-close with a live machine: mark the connection killed so the
    /// machine short-circuits to `Failed`, wake every waiter, drop the
    /// socket now.
    fn kill(&mut self, id: u64) {
        let Some(active) = self.conns.get(&id) else {
            return;
        };
        let conn = Arc::clone(&active.conn);
        conn.killed.store(true, Ordering::Release);
        {
            let mut inbox = conn.inbox.lock().expect("inbox lock poisoned");
            if inbox.error.is_none() {
                inbox.error = Some(std::io::ErrorKind::TimedOut);
            }
        }
        conn.inbox_ready.notify_all();
        if conn.needs.fetch_and(0, Ordering::AcqRel) & (WANT_INPUT | WANT_WRITE) != 0 {
            self.enqueue(&conn);
        }
        self.close(id, None);
    }

    // --- Worker notifications --------------------------------------------

    fn drain_notifier(&mut self) {
        let mut ids = std::mem::take(&mut self.cmds);
        self.shared.notifier.drain(&mut ids);
        for id in ids.drain(..) {
            self.reconcile(id);
        }
        self.cmds = ids;
    }

    /// A worker changed this connection's shared state: flush any new
    /// output (which also handles close-when-done), and resume reading if
    /// the machine drained a paused inbox below the low watermark.
    fn reconcile(&mut self, id: u64) {
        let Some(active) = self.conns.get(&id) else {
            return;
        };
        {
            let mut inbox = active.conn.inbox.lock().expect("inbox lock poisoned");
            if inbox.paused && inbox.buf.len() < INBOX_LOW {
                inbox.paused = false;
            }
        }
        self.flush(id);
    }

    // --- Deadlines --------------------------------------------------------

    fn fire_deadlines(&mut self) {
        let now = Instant::now();
        while let Some(Reverse((when, _, _))) = self.deadlines.peek() {
            if *when > now {
                break;
            }
            let Reverse((_, id, kind)) = self.deadlines.pop().expect("peeked");
            self.fire(id, kind, now);
        }
    }

    fn fire(&mut self, id: u64, kind: DlKind, now: Instant) {
        let (conn, last_ingress, write_stall_since, reject) = match self.conns.get(&id) {
            Some(a) => (
                Arc::clone(&a.conn),
                a.last_ingress,
                a.write_stall_since,
                a.reject,
            ),
            None => return,
        };
        if conn.done.load(Ordering::Acquire) {
            return;
        }
        match kind {
            DlKind::Read => {
                let Some(t) = self.shared.cfg.read_timeout else {
                    return;
                };
                let due = last_ingress + t;
                if due > now {
                    self.arm(due, id, DlKind::Read);
                    return;
                }
                self.expire_input(id, t, kind);
            }
            DlKind::Idle => {
                let Some(t) = self.shared.cfg.idle_timeout else {
                    return;
                };
                let ms = conn.last_frame_ms.load(Ordering::Relaxed);
                let base = if ms == u64::MAX {
                    conn.accepted_at
                } else {
                    conn.accepted_at + Duration::from_millis(ms)
                };
                let due = base + t;
                if due > now {
                    self.arm(due, id, DlKind::Idle);
                    return;
                }
                self.expire_input(id, t, kind);
            }
            DlKind::Write => {
                let Some(t) = self.shared.cfg.write_timeout else {
                    return;
                };
                let Some(since) = write_stall_since else {
                    return;
                };
                let due = since + t;
                if due > now {
                    self.arm(due, id, DlKind::Write);
                    return;
                }
                if conn.outbound_pending() > 0 {
                    // The peer stopped reading: with a machine the kill
                    // marker makes it conclude `Failed`; a machine-less
                    // stall (a shed BUSY frame) just drops.
                    if reject || !conn.started.load(Ordering::Acquire) {
                        self.close(id, None);
                    } else {
                        self.kill(id);
                    }
                }
            }
            DlKind::Grace => {
                // Rejects that never flushed, and drain-abandoned idle
                // connections.
                if reject {
                    self.close(id, None);
                } else if !conn.started.load(Ordering::Acquire) {
                    self.close(id, Some(SessionEnd::Completed));
                }
            }
        }
    }

    /// An input-side deadline (read or idle) expired. A connection that
    /// never spoke closes silently; a live machine gets a `TimedOut`
    /// marker and a wakeup, and fails through its normal error path
    /// (silently in the register phase, with an `io`-class error frame
    /// mid-eval) — the same classes the blocking server's socket timeout
    /// produced.
    fn expire_input(&mut self, id: u64, timeout: Duration, kind: DlKind) {
        let Some(active) = self.conns.get(&id) else {
            return;
        };
        let conn = Arc::clone(&active.conn);
        if !conn.started.load(Ordering::Acquire) {
            self.close(id, Some(SessionEnd::Failed));
            return;
        }
        // A machine that is runnable (not waiting for input) is not
        // stalled on the peer — recheck one timeout later.
        if conn.needs.load(Ordering::Acquire) & WANT_INPUT == 0 {
            self.arm(Instant::now() + timeout, id, kind);
            return;
        }
        {
            let mut inbox = conn.inbox.lock().expect("inbox lock poisoned");
            if inbox.error.is_none() {
                inbox.error = Some(std::io::ErrorKind::TimedOut);
            }
        }
        conn.inbox_ready.notify_all();
        if conn.needs.fetch_and(!WANT_INPUT, Ordering::AcqRel) & WANT_INPUT != 0 {
            self.enqueue(&conn);
        }
    }

    // --- Drain ------------------------------------------------------------

    /// Shutdown was requested: stop accepting, give connections that never
    /// became sessions a short grace to hang up, let live machines run to
    /// completion (bounded by their own timeouts).
    fn start_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self
                .poller
                .deregister(fd_of_listener(&listener), LISTENER_TOKEN);
        }
        let grace_at = Instant::now() + GRACE;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, a)| !a.reject && !a.conn.started.load(Ordering::Acquire))
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            self.arm(grace_at, id, DlKind::Grace);
        }
    }
}

// --- Worker pool ---------------------------------------------------------

struct Ready {
    peers: HashMap<IpAddr, VecDeque<Arc<Conn>>>,
    rr: VecDeque<IpAddr>,
    last: Option<IpAddr>,
    exit: bool,
}

/// One worker's ready queue, fair per peer IP: each bucket yields one
/// connection per round-robin turn.
pub(crate) struct WorkerQueue {
    ready: Mutex<Ready>,
    cond: Condvar,
}

impl WorkerQueue {
    pub(crate) fn new() -> WorkerQueue {
        WorkerQueue {
            ready: Mutex::new(Ready {
                peers: HashMap::new(),
                rr: VecDeque::new(),
                last: None,
                exit: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueue unless already queued. Returns the queue depth after the
    /// push (for the ready-depth histogram), or `None` if deduplicated.
    pub(crate) fn push(&self, conn: Arc<Conn>) -> Option<usize> {
        if conn.queued.swap(true, Ordering::AcqRel) {
            return None;
        }
        let key = conn.peer.map(|p| p.ip()).unwrap_or(NO_PEER);
        let mut ready = self.ready.lock().expect("ready lock poisoned");
        let bucket = ready.peers.entry(key).or_default();
        let fresh = bucket.is_empty();
        bucket.push_back(conn);
        if fresh {
            ready.rr.push_back(key);
        }
        let depth: usize = ready.peers.values().map(|q| q.len()).sum();
        drop(ready);
        self.cond.notify_one();
        Some(depth)
    }

    /// Blocking pop; `None` means exit (shutdown and the queue is empty).
    /// The `bool` reports whether the scheduler rotated to a different
    /// peer than the previous pop served.
    pub(crate) fn pop(&self) -> Option<(Arc<Conn>, bool)> {
        let mut ready = self.ready.lock().expect("ready lock poisoned");
        loop {
            if let Some(key) = ready.rr.pop_front() {
                let conn = {
                    let bucket = ready.peers.get_mut(&key).expect("rr key has a bucket");
                    let conn = bucket.pop_front().expect("rr bucket is nonempty");
                    if bucket.is_empty() {
                        ready.peers.remove(&key);
                    } else {
                        ready.rr.push_back(key);
                    }
                    conn
                };
                let rotated = ready.last != Some(key);
                ready.last = Some(key);
                return Some((conn, rotated));
            }
            if ready.exit {
                return None;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(ready, Duration::from_millis(200))
                .expect("ready lock poisoned");
            ready = guard;
        }
    }

    /// Tell the worker to exit once its queue is empty.
    pub(crate) fn close(&self) {
        self.ready.lock().expect("ready lock poisoned").exit = true;
        self.cond.notify_all();
    }
}

/// One worker thread: pop ready connections, lazily build their machines,
/// advance them, and run the suspend/resume handshake for whatever the
/// machine reported. Machines live in a thread-local map — the engine run
/// is not `Send`, so a connection is pinned to this worker for life.
pub(crate) fn worker_loop(index: usize, shared: &Arc<Shared>) {
    let queue = Arc::clone(&shared.workers[index]);
    let mut machines: HashMap<u64, SessionMachine> = HashMap::new();
    while let Some((conn, rotated)) = queue.pop() {
        conn.queued.store(false, Ordering::Release);
        if rotated {
            shared.trace.rotations.fetch_add(1, Ordering::Relaxed);
        }
        shared.trace.slices.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = conn
            .first_ready
            .lock()
            .expect("first_ready lock poisoned")
            .take()
        {
            shared
                .trace
                .admission_wait_us
                .record(t.elapsed().as_micros() as u64);
        }
        if conn.done.load(Ordering::Acquire) {
            machines.remove(&conn.id);
            continue;
        }
        let machine = machines
            .entry(conn.id)
            .or_insert_with(|| SessionMachine::new(Arc::clone(&conn), Arc::clone(shared)));
        // A panicking session must not take its worker (and the server's
        // capacity) down with it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| machine.advance()));
        match outcome {
            Err(_) => {
                machines.remove(&conn.id);
                shared.stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
                conn.done.store(true, Ordering::Release);
                shared.notifier.sync(conn.id);
            }
            Ok(Advance::Done(end)) => {
                machines.remove(&conn.id);
                shared
                    .trace
                    .session_us
                    .record(conn.accepted_at.elapsed().as_micros() as u64);
                let counter = match end {
                    SessionEnd::Completed => &shared.stats.sessions_completed,
                    SessionEnd::Failed => &shared.stats.sessions_failed,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                conn.done.store(true, Ordering::Release);
                shared.notifier.sync(conn.id);
            }
            Ok(Advance::Working) => {
                // Rotate to the back so siblings get their turn; tell the
                // reactor to flush whatever the slice produced.
                shared.notifier.sync(conn.id);
                queue.push(Arc::clone(&conn));
            }
            Ok(Advance::NeedInput) => {
                conn.needs.fetch_or(WANT_INPUT, Ordering::AcqRel);
                // Re-check after publishing the bit: if input raced in
                // while the machine was deciding to suspend, the reactor
                // saw the bit clear and did nothing — reclaim the wakeup.
                let pending = conn.killed.load(Ordering::Acquire) || {
                    let inbox = conn.inbox.lock().expect("inbox lock poisoned");
                    !inbox.buf.is_empty() || inbox.ended || inbox.error.is_some()
                };
                if pending && conn.needs.fetch_and(!WANT_INPUT, Ordering::AcqRel) & WANT_INPUT != 0
                {
                    queue.push(Arc::clone(&conn));
                }
                shared.notifier.sync(conn.id);
            }
            Ok(Advance::NeedWrite) => {
                conn.needs.fetch_or(WANT_WRITE, Ordering::AcqRel);
                shared.notifier.sync(conn.id);
                if conn.outbound_pending() <= OUT_LOW
                    && conn.needs.fetch_and(!WANT_WRITE, Ordering::AcqRel) & WANT_WRITE != 0
                {
                    queue.push(Arc::clone(&conn));
                }
            }
        }
    }
}
