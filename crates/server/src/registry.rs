//! Compiled-plan caching: one [`SharedQuerySet`] per distinct registration,
//! shared across sessions, bounded by a least-recently-used cap.
//!
//! A [`SharedQuerySet`] holds only the network *shape* (specs and strings),
//! so it is `Send + Sync` and can sit behind an `Arc`; each session
//! instantiates its own single-threaded `Run` over it. The cache key is
//! [`spex_combine::canonical_key`] — sorted, deduplicated
//! `name=canonical-expression` lines — so two sessions registering the same
//! queries in a different order, with different whitespace, redundant
//! parentheses or any other spelling of the same canonical forms (`b|a` vs
//! `a|b`, `x*.x` vs `x+`) share one compiled plan. The plan itself is built
//! by [`spex_combine::combine`], which sorts and deduplicates registrations
//! the same way, so a cached plan's `ids()` are identical for every
//! registration order that maps to its key.
//!
//! The cache is capped (`ServerConfig::max_cached_plans`): a client
//! registering ever-varying query sets evicts the least-recently-used plan
//! instead of growing server memory without bound — the same refuse-don't-
//! grow admission philosophy as the session queue and `ResourceLimits`.
//! Evicted plans stay alive for the sessions already holding their `Arc`.

use spex_core::multi::SharedQuerySet;
use spex_query::Rpeq;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default cap on distinct cached plans (`ServerConfig::max_cached_plans`).
pub const DEFAULT_PLAN_CAP: usize = 64;

/// One cached plan with its last-use stamp (updated under the read lock on
/// every hit, so hot paths never take the write lock).
#[derive(Debug)]
struct Entry {
    plan: Arc<SharedQuerySet>,
    last_used: AtomicU64,
}

/// A thread-safe, LRU-bounded cache of compiled query sets.
#[derive(Debug)]
pub struct Registry {
    cap: usize,
    tick: AtomicU64,
    plans: RwLock<HashMap<String, Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_cap(DEFAULT_PLAN_CAP)
    }
}

impl Registry {
    /// An empty registry with the default cap.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry caching at most `cap` plans; `0` disables caching
    /// (every registration compiles fresh and nothing is retained).
    pub fn with_cap(cap: usize) -> Self {
        Registry {
            cap,
            tick: AtomicU64::new(0),
            plans: RwLock::new(HashMap::new()),
        }
    }

    /// Fetch the compiled plan for `queries`, compiling on first sight.
    /// Returns the plan and whether it was a cache hit. Compilation errors
    /// (constructs outside the compilable fragment) are returned verbatim
    /// and nothing is cached. At the cap, the least-recently-used plan is
    /// evicted to make room.
    pub fn get_or_compile(
        &self,
        queries: &[(String, Rpeq)],
    ) -> Result<(Arc<SharedQuerySet>, bool), spex_core::CompileError> {
        let key = spex_combine::canonical_key(queries);
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(entry) = self.plans.read().expect("registry lock poisoned").get(&key) {
            entry.last_used.store(now, Ordering::Relaxed);
            return Ok((Arc::clone(&entry.plan), true));
        }
        let compiled = Arc::new(spex_combine::combine_set(queries)?);
        if self.cap == 0 {
            return Ok((compiled, false));
        }
        let mut plans = self.plans.write().expect("registry lock poisoned");
        // Another session may have compiled the same key while we did; keep
        // the incumbent so every session shares one plan.
        if let Some(entry) = plans.get(&key) {
            entry.last_used.store(now, Ordering::Relaxed);
            return Ok((Arc::clone(&entry.plan), false));
        }
        if plans.len() >= self.cap {
            // O(n) scan is fine: evictions are rare and caps are small.
            let victim = plans
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                plans.remove(&victim);
            }
        }
        plans.insert(
            key,
            Entry {
                plan: Arc::clone(&compiled),
                last_used: AtomicU64::new(now),
            },
        );
        Ok((compiled, false))
    }

    /// Number of distinct compiled plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.read().expect("registry lock poisoned").len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache cap this registry was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, expr: &str) -> (String, Rpeq) {
        (name.to_string(), expr.parse().unwrap())
    }

    #[test]
    fn equal_registrations_share_one_plan() {
        let reg = Registry::new();
        let (a, hit_a) = reg.get_or_compile(&[q("x", "a.b"), q("y", "a.c")]).unwrap();
        assert!(!hit_a);
        // Redundant parentheses normalize away: same plan.
        let (b, hit_b) = reg
            .get_or_compile(&[q("x", "(a).(b)"), q("y", "a.(c)")])
            .unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        // A different name is a different registration.
        let (_, hit_c) = reg.get_or_compile(&[q("z", "a.b"), q("y", "a.c")]).unwrap();
        assert!(!hit_c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registration_order_and_spelling_share_one_plan() {
        // Regression: the cache key used to be the registration-order
        // pretty-printed list, so reordered or re-spelled registrations
        // compiled and cached separate plans.
        let reg = Registry::new();
        let (a, hit_a) = reg
            .get_or_compile(&[q("x", "a.(b|c)"), q("y", "d*.d")])
            .unwrap();
        assert!(!hit_a);
        let (b, hit_b) = reg
            .get_or_compile(&[q("y", "d+"), q("x", "a.(c|b)")])
            .unwrap();
        assert!(hit_b, "reordered registration missed the cache");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        // The shared plan's id order is canonical, not registration order.
        assert_eq!(a.ids(), ["x", "y"]);
    }

    #[test]
    fn cap_evicts_the_least_recently_used_plan() {
        let reg = Registry::with_cap(2);
        reg.get_or_compile(&[q("a", "a.b")]).unwrap();
        reg.get_or_compile(&[q("b", "b.c")]).unwrap();
        assert_eq!(reg.len(), 2);
        // Touch `a` so `b` becomes the LRU victim.
        let (_, hit) = reg.get_or_compile(&[q("a", "a.b")]).unwrap();
        assert!(hit);
        reg.get_or_compile(&[q("c", "c.d")]).unwrap();
        assert_eq!(reg.len(), 2, "cap exceeded");
        let (_, hit_a) = reg.get_or_compile(&[q("a", "a.b")]).unwrap();
        assert!(hit_a, "recently used plan was evicted");
        // `b` was evicted: re-registering it is a miss (and evicts again).
        let (_, hit_b) = reg.get_or_compile(&[q("b", "b.c")]).unwrap();
        assert!(!hit_b, "LRU plan survived past the cap");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn zero_cap_compiles_without_caching() {
        let reg = Registry::with_cap(0);
        let (_, hit_a) = reg.get_or_compile(&[q("a", "a.b")]).unwrap();
        let (_, hit_b) = reg.get_or_compile(&[q("a", "a.b")]).unwrap();
        assert!(!hit_a && !hit_b);
        assert!(reg.is_empty());
    }
}
