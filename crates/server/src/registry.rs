//! Compiled-plan caching: one [`SharedQuerySet`] per distinct registration,
//! shared across sessions.
//!
//! A [`SharedQuerySet`] holds only the network *shape* (specs and strings),
//! so it is `Send + Sync` and can sit behind an `Arc`; each session
//! instantiates its own single-threaded `Run` over it. The cache key is
//! [`SharedQuerySet::normalized_key`] — the pretty-printed canonical form —
//! so two sessions registering the same queries with different whitespace or
//! redundant parentheses share one compiled plan.

use spex_core::multi::SharedQuerySet;
use spex_query::Rpeq;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A thread-safe cache of compiled query sets.
#[derive(Debug, Default)]
pub struct Registry {
    plans: RwLock<HashMap<String, Arc<SharedQuerySet>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetch the compiled plan for `queries`, compiling on first sight.
    /// Returns the plan and whether it was a cache hit. Compilation errors
    /// (constructs outside the compilable fragment) are returned verbatim
    /// and nothing is cached.
    pub fn get_or_compile(
        &self,
        queries: &[(String, Rpeq)],
    ) -> Result<(Arc<SharedQuerySet>, bool), spex_core::CompileError> {
        let key = SharedQuerySet::normalized_key(queries);
        if let Some(plan) = self.plans.read().expect("registry lock poisoned").get(&key) {
            return Ok((Arc::clone(plan), true));
        }
        let compiled = Arc::new(SharedQuerySet::try_compile(queries)?);
        let mut plans = self.plans.write().expect("registry lock poisoned");
        // Another session may have compiled the same key while we did; keep
        // the incumbent so every session shares one plan.
        let plan = plans.entry(key).or_insert_with(|| Arc::clone(&compiled));
        Ok((Arc::clone(plan), false))
    }

    /// Number of distinct compiled plans.
    pub fn len(&self) -> usize {
        self.plans.read().expect("registry lock poisoned").len()
    }

    /// True when no plan has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, expr: &str) -> (String, Rpeq) {
        (name.to_string(), expr.parse().unwrap())
    }

    #[test]
    fn equal_registrations_share_one_plan() {
        let reg = Registry::new();
        let (a, hit_a) = reg.get_or_compile(&[q("x", "a.b"), q("y", "a.c")]).unwrap();
        assert!(!hit_a);
        // Redundant parentheses normalize away: same plan.
        let (b, hit_b) = reg
            .get_or_compile(&[q("x", "(a).(b)"), q("y", "a.(c)")])
            .unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        // A different name is a different registration.
        let (_, hit_c) = reg.get_or_compile(&[q("z", "a.b"), q("y", "a.c")]).unwrap();
        assert!(!hit_c);
        assert_eq!(reg.len(), 2);
    }
}
