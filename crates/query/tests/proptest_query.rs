//! Property-based tests: the printer and parser are mutually inverse on the
//! whole rpeq language.

use proptest::prelude::*;
use spex_query::{Label, Rpeq};

fn label_strategy() -> impl Strategy<Value = Label> {
    prop_oneof![
        3 => "[a-z][a-z0-9]{0,4}".prop_map(Label::Name),
        1 => Just(Label::Wildcard),
    ]
}

pub fn rpeq_strategy() -> impl Strategy<Value = Rpeq> {
    let leaf = prop_oneof![
        4 => label_strategy().prop_map(Rpeq::Step),
        2 => label_strategy().prop_map(Rpeq::Plus),
        2 => label_strategy().prop_map(Rpeq::Star),
        1 => Just(Rpeq::Empty),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rpeq::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Rpeq::Qualified(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Rpeq::Optional(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(q in rpeq_strategy()) {
        let text = q.to_string();
        let parsed: Rpeq = text.parse()
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn metrics_never_panic_and_length_positive(q in rpeq_strategy()) {
        let m = spex_query::QueryMetrics::of(&q);
        prop_assert!(m.length >= 1);
        prop_assert!(m.length >= m.steps + m.closure_steps);
    }

    #[test]
    fn parser_never_panics(s in "[a-z_.*+?()\\[\\]|% ]{0,40}") {
        let _ = s.parse::<Rpeq>();
    }

    #[test]
    fn xpath_never_panics(s in "[a-z/*\\[\\]@:.| ]{0,40}") {
        let _ = spex_query::xpath::parse_xpath(&s);
    }
}
