//! # spex-query — regular path expressions with qualifiers (rpeq)
//!
//! The query language of the SPEX paper (§II.2):
//!
//! ```text
//! rpeq ::= ε | label | label* | label+ | (rpeq|rpeq) | (rpeq . rpeq)
//!        | rpeq? | rpeq [ rpeq ]
//! ```
//!
//! where `label` is an element name or the wildcard `_` matching every label.
//! A query is evaluated from the document root; `label` is a child step,
//! `label+` selects chains of nested `label` elements, and a qualifier
//! `[rpeq]` holds for a node iff the inner expression selects a non-empty
//! node set from it. The language covers the XPath fragment with `child` and
//! `descendant` forward steps and structural qualifiers (and, via the
//! rewriting of *XPath: Looking Forward* cited by the paper, expressions with
//! backward steps can be brought into it).
//!
//! Modules:
//!
//! * [`ast`] — the [`Rpeq`] syntax tree and [`Label`],
//! * [`parse`] — the concrete text syntax, e.g. `_*.country[province].name`,
//! * [`xpath`] — sugar translating the corresponding XPath subset
//!   (`//country[province]/name`) into rpeq,
//! * [`metrics`] — query-size measures used by the complexity experiments.
//!
//! DESIGN.md §1 (S3, S26) places this crate in the system; the query
//! classes of the paper's evaluation that exercise it live in
//! `spex-workloads` (DESIGN.md §6).
//!
//! ## Example
//!
//! ```
//! use spex_query::Rpeq;
//!
//! let q: Rpeq = "_*.a[b].c".parse().unwrap();
//! assert_eq!(q.to_string(), "_*.a[b].c");
//! assert_eq!(spex_query::xpath::parse_xpath("//a[b]/c").unwrap(), q);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod metrics;
pub mod parse;
pub mod xpath;

pub use ast::{Label, Rpeq};
pub use metrics::QueryMetrics;
pub use parse::ParseError;
