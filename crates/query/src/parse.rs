//! Concrete text syntax for rpeq.
//!
//! ```text
//! union   := concat ('|' concat)*            (left associative)
//! concat  := postfix ('.' postfix)*          (left associative)
//! postfix := primary ('[' union ']' | '?')*
//! primary := '(' union ')' | label ('*' | '+')? | '~' label | '^' label | '%'
//! label   := name | '_'
//! ```
//!
//! `~label` is the *following* and `^label` the *preceding* step (both
//! extensions beyond the paper's grammar, see [`Rpeq::Following`] /
//! [`Rpeq::Preceding`]).
//!
//! `%` denotes ε (rarely written explicitly — it mostly arises from the
//! derived forms `label*` and `rpeq?`). Whitespace is insignificant.
//! Examples from the paper parse directly: `_*.a[b]._*.c`,
//! `_*.country[province].name`, `_*.Topic[editor].newsGroup`.

use crate::ast::{Label, Rpeq};
use std::fmt;

/// A parse failure with a byte offset into the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rpeq parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    Underscore,
    Star,
    Plus,
    Question,
    Dot,
    Pipe,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Percent,
    Tilde,
    Caret,
}

fn lex(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let tok = match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '*' => Token::Star,
            '+' => Token::Plus,
            '?' => Token::Question,
            '.' => Token::Dot,
            '|' => Token::Pipe,
            '(' => Token::LParen,
            ')' => Token::RParen,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            '%' => Token::Percent,
            '~' => Token::Tilde,
            '^' => Token::Caret,
            '_' => {
                // `_` alone is the wildcard; `_foo` is a name.
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                if j == i + 1 {
                    out.push((Token::Underscore, start));
                } else {
                    out.push((Token::Name(input[start..j].to_string()), start));
                }
                i = j;
                continue;
            }
            c if c.is_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                out.push((Token::Name(input[start..j].to_string()), start));
                i = j;
                continue;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        };
        out.push((tok, i));
        i += 1;
    }
    Ok(out)
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':') || b >= 0x80
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {t:?}, found {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn union(&mut self) -> Result<Rpeq, ParseError> {
        let mut left = self.concat()?;
        while self.peek() == Some(&Token::Pipe) {
            self.pos += 1;
            let right = self.concat()?;
            left = Rpeq::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn concat(&mut self) -> Result<Rpeq, ParseError> {
        let mut left = self.postfix()?;
        while self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let right = self.postfix()?;
            left = Rpeq::Concat(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn postfix(&mut self) -> Result<Rpeq, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let q = self.union()?;
                    self.expect(Token::RBracket)?;
                    e = Rpeq::Qualified(Box::new(e), Box::new(q));
                }
                Some(Token::Question) => {
                    self.pos += 1;
                    e = Rpeq::Optional(Box::new(e));
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Rpeq, ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token::LParen) => {
                let e = self.union()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Percent) => Ok(Rpeq::Empty),
            Some(Token::Tilde) => match self.bump() {
                Some(Token::Name(n)) => Ok(Rpeq::Following(Label::Name(n))),
                Some(Token::Underscore) => Ok(Rpeq::Following(Label::Wildcard)),
                other => Err(ParseError {
                    message: format!("expected a label after `~`, found {other:?}"),
                    offset,
                }),
            },
            Some(Token::Caret) => match self.bump() {
                Some(Token::Name(n)) => Ok(Rpeq::Preceding(Label::Name(n))),
                Some(Token::Underscore) => Ok(Rpeq::Preceding(Label::Wildcard)),
                other => Err(ParseError {
                    message: format!("expected a label after `^`, found {other:?}"),
                    offset,
                }),
            },
            Some(Token::Name(n)) => Ok(self.with_closure(Label::Name(n))),
            Some(Token::Underscore) => Ok(self.with_closure(Label::Wildcard)),
            other => Err(ParseError {
                message: format!("expected a label, `(`, or `%`, found {other:?}"),
                offset,
            }),
        }
    }

    /// Attach `*` / `+` to a freshly parsed label.
    fn with_closure(&mut self, l: Label) -> Rpeq {
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                Rpeq::Star(l)
            }
            Some(Token::Plus) => {
                self.pos += 1;
                Rpeq::Plus(l)
            }
            _ => Rpeq::Step(l),
        }
    }
}

/// Parse an rpeq expression from its text syntax.
pub fn parse(input: &str) -> Result<Rpeq, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: input.len(),
    };
    let e = p.union()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("unexpected trailing token {:?}", p.peek()),
            offset: p.offset(),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Rpeq {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn paper_queries_parse() {
        // Every concrete query mentioned in the paper.
        for q in [
            "_*.a[b]._*.c",
            "a.c",
            "a+.c+",
            "_*.a[b].c",
            "_*.province.city",
            "_*.Noun.wordForm",
            "_*.Topic.Title",
            "_*.country[province].name",
            "_*.Noun[wordForm]",
            "_*.Topic[editor].Title",
            "_*._",
            "_*.country[province].religions",
            "_*.Topic[editor].newsGroup",
        ] {
            let ast = p(q);
            assert_eq!(p(&ast.to_string()), ast, "display roundtrip of {q}");
        }
    }

    #[test]
    fn simple_shapes() {
        assert_eq!(p("a"), Rpeq::step("a"));
        assert_eq!(p("_"), Rpeq::any());
        assert_eq!(p("a+"), Rpeq::plus("a"));
        assert_eq!(p("_*"), Rpeq::descend());
        assert_eq!(p("%"), Rpeq::Empty);
    }

    #[test]
    fn precedence() {
        // `.` binds tighter than `|`.
        assert_eq!(
            p("a.b|c"),
            Rpeq::step("a").then(Rpeq::step("b")).or(Rpeq::step("c"))
        );
        // Qualifier binds tighter than `.`.
        assert_eq!(
            p("a[b].c"),
            Rpeq::step("a")
                .with_qualifier(Rpeq::step("b"))
                .then(Rpeq::step("c"))
        );
        // Parens override.
        assert_eq!(
            p("a.(b|c)"),
            Rpeq::step("a").then(Rpeq::step("b").or(Rpeq::step("c")))
        );
    }

    #[test]
    fn left_associativity() {
        assert_eq!(
            p("a.b.c"),
            Rpeq::step("a").then(Rpeq::step("b")).then(Rpeq::step("c"))
        );
        assert_eq!(
            p("a|b|c"),
            Rpeq::step("a").or(Rpeq::step("b")).or(Rpeq::step("c"))
        );
    }

    #[test]
    fn postfix_chains() {
        assert_eq!(
            p("a[b][c]"),
            Rpeq::step("a")
                .with_qualifier(Rpeq::step("b"))
                .with_qualifier(Rpeq::step("c"))
        );
        assert_eq!(p("a??"), Rpeq::step("a").optional().optional());
        assert_eq!(
            p("a[b]?"),
            Rpeq::step("a").with_qualifier(Rpeq::step("b")).optional()
        );
    }

    #[test]
    fn nested_qualifiers() {
        assert_eq!(
            p("a[b[c]]"),
            Rpeq::step("a").with_qualifier(Rpeq::step("b").with_qualifier(Rpeq::step("c")))
        );
    }

    #[test]
    fn underscore_names_vs_wildcard() {
        assert_eq!(p("_"), Rpeq::any());
        assert_eq!(p("_foo"), Rpeq::step("_foo"));
        assert_eq!(p("_*"), Rpeq::descend());
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(p(" a . b | c "), p("a.b|c"));
        assert_eq!(p("a [ b ]"), p("a[b]"));
    }

    #[test]
    fn name_characters() {
        assert_eq!(p("rdf:about"), Rpeq::step("rdf:about"));
        assert_eq!(p("foo-bar"), Rpeq::step("foo-bar"));
        assert_eq!(p("x1"), Rpeq::step("x1"));
    }

    #[test]
    fn errors_carry_offsets() {
        match parse("a..b") {
            Err(e) => assert_eq!(e.offset, 2),
            Ok(x) => panic!("parsed {x:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("a|").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("#").is_err());
        // Closure on general expressions is not in the grammar.
        assert!(parse("(a.b)+").is_err());
        assert!(parse("(a|b)*").is_err());
    }

    #[test]
    fn from_str_impl() {
        let q: Rpeq = "_*.a".parse().unwrap();
        assert_eq!(q, Rpeq::descend().then(Rpeq::step("a")));
    }
}
