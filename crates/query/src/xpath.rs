//! XPath sugar.
//!
//! The rpeq language "covers the XPath fragment with no other steps than the
//! forward steps `child` and `descendant` and no other qualifiers than
//! structural qualifiers" (§II.2). This module translates that XPath subset
//! into rpeq so users can write familiar syntax:
//!
//! | XPath                     | rpeq                          |
//! |---------------------------|-------------------------------|
//! | `/a/b`                    | `a.b`                         |
//! | `//a`                     | `_*.a`                        |
//! | `/a//b`                   | `a._*.b`                      |
//! | `/a/*`                    | `a._`                         |
//! | `//a[b][.//c]/d`          | `_*.a[b][_*.c].d`             |
//! | `a/b` (relative)          | `a.b`                         |
//!
//! Inside qualifiers, relative paths and the explicit self prefix `./` /
//! `.//` are supported.
//!
//! ## Backward axes
//!
//! §II.2 of the paper notes that backward steps are expressible in the
//! forward fragment, citing *XPath: Looking Forward*. This module implements
//! the rewriting for the common cases where the backward step directly
//! follows a forward step:
//!
//! | XPath                     | rewritten rpeq                |
//! |---------------------------|-------------------------------|
//! | `//x/parent::b`           | `_*.b[x]`                     |
//! | `//x/parent::b/c`         | `_*.b[x].c`                   |
//! | `/a/x/parent::a`          | `a[x]`  (label must agree)    |
//! | `//x/ancestor::b`         | `_*.b[_*.x]`                  |
//! | `//x/ancestor-or-self::x` | `_*.x[x?]` (see below)        |
//!
//! The rewriting works step-locally: `P/x/parent::b` selects the parents of
//! the `x` nodes — i.e. the nodes `P` reaches whose label is `b` and that
//! have an `x` child — so the preceding step's node test is *intersected*
//! with `b` and `[x]` becomes a qualifier. `ancestor::b` similarly folds the
//! whole path suffix below the ancestor into a qualifier with a leading
//! descendant step. Backward steps in positions the local rewriting cannot
//! handle (as the first step, or after another predicate-dependent backward
//! step) are rejected with a descriptive error; attributes, positional
//! predicates and value comparisons remain out of scope.

use crate::ast::{Label, Rpeq};
use crate::parse::ParseError;

/// Translate an XPath expression from the supported fragment into rpeq.
pub fn parse_xpath(input: &str) -> Result<Rpeq, ParseError> {
    let mut p = XParser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let e = p.path(true)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    e.ok_or_else(|| ParseError {
        message: "empty XPath expression".into(),
        offset: 0,
    })
}

/// One parsed XPath step, before path assembly.
enum ParsedStep {
    /// A forward (child/descendant) step, as an rpeq expression.
    Forward(Rpeq),
    /// `parent::label[preds…]`.
    Parent { label: Label, preds: Vec<Rpeq> },
    /// `ancestor::label` / `ancestor-or-self::label`.
    Ancestor {
        label: Label,
        preds: Vec<Rpeq>,
        or_self: bool,
    },
}

/// Replace the innermost step label of `e` (below any qualifiers) with the
/// intersection of the current label and `constraint`. Errors with the
/// rendered core when the intersection is empty or the expression has no
/// plain step core.
fn replace_core_label(e: Rpeq, constraint: &Label) -> Result<Rpeq, String> {
    match e {
        Rpeq::Step(l) => match intersect(&l, constraint) {
            Some(l) => Ok(Rpeq::Step(l)),
            None => Err(l.to_string()),
        },
        Rpeq::Qualified(inner, q) => Ok(Rpeq::Qualified(
            Box::new(replace_core_label(*inner, constraint)?),
            q,
        )),
        other => Err(other.to_string()),
    }
}

/// Label intersection: wildcard is ⊤.
fn intersect(a: &Label, b: &Label) -> Option<Label> {
    match (a, b) {
        (Label::Wildcard, other) | (other, Label::Wildcard) => Some(other.clone()),
        (Label::Name(x), Label::Name(y)) if x == y => Some(Label::Name(x.clone())),
        _ => None,
    }
}

struct XParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parse a location path. `top_level` controls whether a leading `/` is
    /// allowed (absolute path); inside qualifiers paths are relative, with
    /// optional `./` or `.//` prefixes.
    fn path(&mut self, _top_level: bool) -> Result<Option<Rpeq>, ParseError> {
        // (expression, was-inserted-by-`//`) pairs; the provenance flag
        // drives the backward-axis rewriting.
        let mut parts: Vec<(Rpeq, bool)> = Vec::new();
        let mut descendant_pending = false;

        self.skip_ws();
        // Leading `.` (self), `./`, `.//`, `/`, `//`.
        if self.eat(b'.') {
            // self — no step emitted.
        }
        if self.eat(b'/') && self.eat(b'/') {
            descendant_pending = true;
        }

        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b']') | Some(b'|') | Some(b')') => break,
                _ => {}
            }
            let step = self.step()?;
            if descendant_pending {
                parts.push((Rpeq::descend(), true));
                descendant_pending = false;
            }
            match step {
                ParsedStep::Forward(e) => parts.push((e, false)),
                ParsedStep::Parent { label, preds } => {
                    self.rewrite_parent(&mut parts, label, preds)?;
                }
                ParsedStep::Ancestor {
                    label,
                    preds,
                    or_self,
                } => {
                    self.rewrite_ancestor(&mut parts, label, preds, or_self)?;
                }
            }
            self.skip_ws();
            if self.eat(b'/') {
                if self.eat(b'/') {
                    descendant_pending = true;
                }
            } else {
                break;
            }
        }
        if descendant_pending {
            // Trailing `//` selects all descendants: `_*._`.
            parts.push((Rpeq::descend(), true));
            parts.push((Rpeq::any(), false));
        }
        if parts.is_empty() {
            return Ok(None);
        }
        Ok(Some(Rpeq::concat_all(parts.into_iter().map(|(e, _)| e))))
    }

    /// `P/x/parent::b[preds]` — the selected nodes are the parents of the
    /// `x` nodes: intersect the step reaching the parent with label `b` and
    /// turn `x` into a qualifier.
    fn rewrite_parent(
        &self,
        parts: &mut Vec<(Rpeq, bool)>,
        label: Label,
        preds: Vec<Rpeq>,
    ) -> Result<(), ParseError> {
        let Some((child, child_is_star)) = parts.pop() else {
            return Err(self.err("`parent::` needs a preceding step"));
        };
        if child_is_star {
            return Err(self.err("`parent::` directly after `//` is not supported"));
        }
        let rewritten = match parts.last() {
            // `//x/parent::b` with the `//` opening the path: the parent is
            // any node, so the intersection is just a fresh `b` step.
            Some((e, true)) if parts.len() == 1 && *e == Rpeq::descend() => Rpeq::Step(label),
            // `…/l/x/parent::b`: intersect l with b.
            Some((_, false)) => {
                let (prev, _) = parts.pop().expect("just peeked");
                replace_core_label(prev, &label).map_err(|core| {
                    self.err(format!(
                        "`parent::{label}` can never match the preceding `{core}` step"
                    ))
                })?
            }
            // `/x/parent::b` — the parent is the virtual root, never `b`.
            None => {
                return Err(self.err(format!(
                    "`parent::{label}` of a root-level step can never match"
                )))
            }
            Some((_, true)) => {
                return Err(self
                    .err("`parent::` after a mid-path `//` is not supported (rewrite the query)"))
            }
        };
        let mut e = rewritten.with_qualifier(child);
        for p in preds {
            e = e.with_qualifier(p);
        }
        parts.push((e, false));
        Ok(())
    }

    /// `//x/ancestor::b[preds]` — `b` nodes having an `x` descendant
    /// (`or_self` additionally keeps the `x` nodes whose label agrees with
    /// `b`). Only supported when the path before `x` is exactly the opening
    /// `//`: for a longer prefix the ancestor is not locally expressible.
    fn rewrite_ancestor(
        &self,
        parts: &mut Vec<(Rpeq, bool)>,
        label: Label,
        preds: Vec<Rpeq>,
        or_self: bool,
    ) -> Result<(), ParseError> {
        let axis = if or_self {
            "ancestor-or-self"
        } else {
            "ancestor"
        };
        let Some((child, child_is_star)) = parts.pop() else {
            return Err(self.err(format!("`{axis}::` needs a preceding step")));
        };
        let opening_descendant = parts.len() == 1
            && !child_is_star
            && matches!(parts.last(), Some((e, true)) if *e == Rpeq::descend());
        if !opening_descendant {
            return Err(self.err(format!(
                "`{axis}::` is only supported in the form `//step/{axis}::label`"
            )));
        }
        let mut e = Rpeq::Step(label.clone()).with_qualifier(Rpeq::descend().then(child.clone()));
        if or_self {
            if let Ok(self_step) = replace_core_label(child, &label) {
                e = e.or(self_step);
            }
        }
        for p in preds {
            e = e.with_qualifier(p);
        }
        parts.push((e, false));
        Ok(())
    }

    /// One step: node test plus predicates.
    fn step(&mut self) -> Result<ParsedStep, ParseError> {
        self.skip_ws();
        // Reject unsupported axes explicitly for a good error message.
        for axis in ["preceding-sibling::", "following-sibling::", "attribute::"] {
            if self.rest().starts_with(axis) {
                return Err(self.err(format!("axis `{axis}` is outside the rpeq fragment")));
            }
        }
        if self.peek() == Some(b'@') {
            return Err(self.err("attributes are outside the rpeq fragment"));
        }
        // Optional explicit axes.
        let rest = self.rest();
        if rest.starts_with("child::") {
            self.pos += "child::".len();
        } else if rest.starts_with("descendant::") {
            self.pos += "descendant::".len();
            let label = self.node_test()?;
            let mut e = Rpeq::descend().then(Rpeq::Step(label));
            e = self.predicates(e)?;
            return Ok(ParsedStep::Forward(e));
        } else if rest.starts_with("parent::") {
            self.pos += "parent::".len();
            let label = self.node_test()?;
            let preds = self.predicate_list()?;
            return Ok(ParsedStep::Parent { label, preds });
        } else if rest.starts_with("ancestor-or-self::") {
            self.pos += "ancestor-or-self::".len();
            let label = self.node_test()?;
            let preds = self.predicate_list()?;
            return Ok(ParsedStep::Ancestor {
                label,
                preds,
                or_self: true,
            });
        } else if rest.starts_with("following::") {
            self.pos += "following::".len();
            let label = self.node_test()?;
            let mut e = Rpeq::Following(label);
            e = self.predicates(e)?;
            return Ok(ParsedStep::Forward(e));
        } else if rest.starts_with("preceding::") {
            self.pos += "preceding::".len();
            let label = self.node_test()?;
            let mut e = Rpeq::Preceding(label);
            e = self.predicates(e)?;
            return Ok(ParsedStep::Forward(e));
        } else if rest.starts_with("ancestor::") {
            self.pos += "ancestor::".len();
            let label = self.node_test()?;
            let preds = self.predicate_list()?;
            return Ok(ParsedStep::Ancestor {
                label,
                preds,
                or_self: false,
            });
        }
        let label = self.node_test()?;
        let e = Rpeq::Step(label);
        Ok(ParsedStep::Forward(self.predicates(e)?))
    }

    /// Bare predicate list (for backward steps, applied after rewriting).
    fn predicate_list(&mut self) -> Result<Vec<Rpeq>, ParseError> {
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b'[') {
                self.skip_ws();
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(self.err("positional predicates are outside the rpeq fragment"));
                }
                let q = self.union_inside_predicate()?;
                self.skip_ws();
                if !self.eat(b']') {
                    return Err(self.err("expected `]`"));
                }
                preds.push(q);
            } else {
                return Ok(preds);
            }
        }
    }

    fn predicates(&mut self, mut e: Rpeq) -> Result<Rpeq, ParseError> {
        loop {
            self.skip_ws();
            if self.eat(b'[') {
                self.skip_ws();
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(self.err("positional predicates are outside the rpeq fragment"));
                }
                let q = self.union_inside_predicate()?;
                self.skip_ws();
                if !self.eat(b']') {
                    return Err(self.err("expected `]`"));
                }
                e = e.with_qualifier(q);
            } else {
                return Ok(e);
            }
        }
    }

    /// `p1 | p2 | …` inside a predicate.
    fn union_inside_predicate(&mut self) -> Result<Rpeq, ParseError> {
        let mut left = self
            .path(false)?
            .ok_or_else(|| self.err("empty path inside predicate"))?;
        loop {
            self.skip_ws();
            if self.eat(b'|') {
                let right = self
                    .path(false)?
                    .ok_or_else(|| self.err("empty path after `|`"))?;
                left = left.or(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn node_test(&mut self) -> Result<Label, ParseError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok(Label::Wildcard);
        }
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80 {
                // `.` only continues a name if not `..` or `./`
                if b == b'.' {
                    break;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a node test (name or `*`)"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?;
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Err(self.err(format!("invalid name `{name}`")));
        }
        Ok(Label::Name(name.to_string()))
    }

    fn rest(&self) -> &str {
        std::str::from_utf8(&self.input[self.pos..]).unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(s: &str) -> Rpeq {
        parse_xpath(s).unwrap_or_else(|e| panic!("xpath {s:?}: {e}"))
    }

    fn r(s: &str) -> Rpeq {
        s.parse().unwrap()
    }

    #[test]
    fn absolute_paths() {
        assert_eq!(x("/a/b"), r("a.b"));
        assert_eq!(x("/a"), r("a"));
    }

    #[test]
    fn descendant_steps() {
        assert_eq!(x("//a"), r("_*.a"));
        assert_eq!(x("/a//b"), r("a._*.b"));
        assert_eq!(x("//a//b"), r("_*.a._*.b"));
    }

    #[test]
    fn wildcards() {
        assert_eq!(x("/a/*"), r("a._"));
        assert_eq!(x("//*"), r("_*._"));
    }

    #[test]
    fn predicates_translate_to_qualifiers() {
        assert_eq!(x("//a[b]/c"), r("_*.a[b].c"));
        assert_eq!(
            x("//country[province]/name"),
            r("_*.country[province].name")
        );
        assert_eq!(x("//a[.//c]"), r("_*.a[_*.c]"));
        assert_eq!(x("//a[b][c]"), r("_*.a[b][c]"));
        assert_eq!(x("//a[b/c]"), r("_*.a[b.c]"));
        assert_eq!(x("//a[b | c]"), r("_*.a[b|c]"));
    }

    #[test]
    fn relative_paths() {
        assert_eq!(x("a/b"), r("a.b"));
        assert_eq!(x("./a"), r("a"));
    }

    #[test]
    fn explicit_axes() {
        // `descendant::b` is emitted as one `(_*.b)` unit — semantically
        // identical to `a._*.b` (concatenation is associative).
        assert_eq!(x("/child::a/descendant::b"), r("a.(_*.b)"));
    }

    #[test]
    fn trailing_double_slash() {
        assert_eq!(x("/a//"), r("a._*._"));
    }

    #[test]
    fn unsupported_constructs_rejected() {
        // `parent::`/`ancestor::` are rewritten now — tested separately.
        assert!(parse_xpath("//a[@id]").is_err());
        assert!(parse_xpath("//a[1]").is_err());
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("//a]").is_err());
    }

    #[test]
    fn parent_axis_rewrites() {
        assert_eq!(x("//x/parent::b"), r("_*.b[x]"));
        assert_eq!(x("//x/parent::b/c"), r("_*.b[x].c"));
        assert_eq!(x("/a/x/parent::a"), r("a[x]"));
        assert_eq!(x("/a/x/parent::*"), r("a[x]"));
        assert_eq!(x("//*/parent::b"), r("_*.b[_]"));
        // The child's own predicates travel into the qualifier.
        assert_eq!(x("//x[y]/parent::b"), r("_*.b[x[y]]"));
        // Predicates on the parent step become extra qualifiers.
        assert_eq!(x("//x/parent::b[z]"), r("_*.b[x][z]"));
        // Intersection with a named previous step.
        assert_eq!(x("//q/a/x/parent::a"), r("_*.q.a[x]"));
    }

    #[test]
    fn parent_axis_errors() {
        // Label conflict: the parent step can never match.
        assert!(parse_xpath("/a/x/parent::b").is_err());
        // Parent of a root-level step is the virtual root.
        assert!(parse_xpath("/x/parent::b").is_err());
        // Mid-path `//` before parent is not locally expressible.
        assert!(parse_xpath("/a//x/parent::b").is_err());
        // No preceding step at all.
        assert!(parse_xpath("//parent::b").is_err());
    }

    #[test]
    fn ancestor_axis_rewrites() {
        assert_eq!(x("//x/ancestor::b"), r("_*.b[_*.x]"));
        assert_eq!(x("//x/ancestor::b/c"), r("_*.b[_*.x].c"));
        assert_eq!(x("//x[y]/ancestor::b"), r("_*.b[_*.x[y]]"));
        assert_eq!(x("//x/ancestor-or-self::x"), r("_*.(x[_*.x]|x)"));
        // or-self with incompatible labels degenerates to plain ancestor.
        assert_eq!(x("//x/ancestor-or-self::b"), r("_*.b[_*.x]"));
    }

    #[test]
    fn ancestor_axis_errors() {
        assert!(parse_xpath("/a/x/ancestor::b").is_err());
        assert!(parse_xpath("//a//x/ancestor::b").is_err());
    }

    #[test]
    fn backward_axis_semantics_match_intuition() {
        // Sanity via the DOM reading: on <a><x/><b><x/></b></a>,
        // //x/parent::b should select only the <b>.
        let q = x("//x/parent::b");
        assert_eq!(q.to_string(), "_*.b[x]");
    }

    #[test]
    fn doc_example() {
        assert_eq!(x("//a[b]/c"), r("_*.a[b].c"));
    }
}
