//! Query-size measures.
//!
//! §V of the paper expresses complexity bounds in terms of the query length
//! *n* and structural features: the number of qualifiers, the number of
//! closure steps, and — the worst case for formula growth — the number of
//! qualifiers applied to wildcard-closure steps. [`QueryMetrics`] computes
//! all of them; the complexity benchmarks (experiment E5/E7 in DESIGN.md)
//! sweep over these measures.

use crate::ast::{Label, Rpeq};

/// Structural measures of an rpeq expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryMetrics {
    /// Total number of AST nodes — the paper's query length *n* (the
    /// translation of Lemma V.1 is linear in this).
    pub length: usize,
    /// Number of child steps (`label`).
    pub steps: usize,
    /// Number of closure steps (`label+` or `label*`).
    pub closure_steps: usize,
    /// Number of closure steps whose label is the wildcard `_`.
    pub wildcard_closures: usize,
    /// Number of qualifiers `[…]`.
    pub qualifiers: usize,
    /// Number of unions.
    pub unions: usize,
    /// Number of optionals `?`.
    pub optionals: usize,
    /// Number of following steps `~label` (extension).
    pub following_steps: usize,
    /// Number of preceding steps `^label` (extension).
    pub preceding_steps: usize,
    /// Maximum qualifier nesting depth.
    pub qualifier_depth: usize,
}

impl QueryMetrics {
    /// Compute the measures of `query`.
    pub fn of(query: &Rpeq) -> QueryMetrics {
        let mut m = QueryMetrics::default();
        fn go(q: &Rpeq, m: &mut QueryMetrics, qdepth: usize) {
            m.length += 1;
            match q {
                Rpeq::Empty => {}
                Rpeq::Step(_) => m.steps += 1,
                Rpeq::Following(_) => m.following_steps += 1,
                Rpeq::Preceding(_) => m.preceding_steps += 1,
                Rpeq::Plus(l) | Rpeq::Star(l) => {
                    m.closure_steps += 1;
                    if matches!(l, Label::Wildcard) {
                        m.wildcard_closures += 1;
                    }
                }
                Rpeq::Union(a, b) => {
                    m.unions += 1;
                    go(a, m, qdepth);
                    go(b, m, qdepth);
                }
                Rpeq::Concat(a, b) => {
                    go(a, m, qdepth);
                    go(b, m, qdepth);
                }
                Rpeq::Optional(a) => {
                    m.optionals += 1;
                    go(a, m, qdepth);
                }
                Rpeq::Qualified(a, q) => {
                    m.qualifiers += 1;
                    m.qualifier_depth = m.qualifier_depth.max(qdepth + 1);
                    go(a, m, qdepth);
                    go(q, m, qdepth + 1);
                }
            }
        }
        go(query, &mut m, 0);
        m
    }

    /// The rpeq language fragment the query belongs to, as classified in §V.
    pub fn fragment(&self) -> Fragment {
        match (self.qualifiers > 0, self.closure_steps > 0) {
            (false, _) => Fragment::NoQualifiers,
            (true, false) => Fragment::QualifiersNoClosure,
            (true, true) => Fragment::QualifiersAndClosure,
        }
    }
}

/// The language fragments of the paper's §V formula-size analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fragment {
    /// `rpeq*` in the paper: no qualifiers — formula size o(φ) = 1.
    NoQualifiers,
    /// `rpeq[]`: qualifiers but no closure — o(φ) = min(n, d).
    QualifiersNoClosure,
    /// `rpeq*[]`: qualifiers and closure — o(φ) = O(dⁿ) in general,
    /// Σ nᵢ ≤ d in the sequential-matching case of Remark V.1.
    QualifiersAndClosure,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> QueryMetrics {
        QueryMetrics::of(&s.parse().unwrap())
    }

    #[test]
    fn simple_counts() {
        let x = m("_*.a[b].c");
        assert_eq!(x.steps, 3); // a, b, c
        assert_eq!(x.closure_steps, 1);
        assert_eq!(x.wildcard_closures, 1);
        assert_eq!(x.qualifiers, 1);
        assert_eq!(x.qualifier_depth, 1);
        assert_eq!(x.length, 7); // concat, concat, star, qualified, a, b, c
    }

    #[test]
    fn nested_qualifier_depth() {
        assert_eq!(m("a[b[c]]").qualifier_depth, 2);
        assert_eq!(m("a[b].c[d]").qualifier_depth, 1);
        assert_eq!(m("a").qualifier_depth, 0);
    }

    #[test]
    fn union_and_optional_counts() {
        let x = m("(a|b)?.c");
        assert_eq!(x.unions, 1);
        assert_eq!(x.optionals, 1);
        assert_eq!(x.steps, 3);
    }

    #[test]
    fn fragments() {
        assert_eq!(m("a.b.c+").fragment(), Fragment::NoQualifiers);
        assert_eq!(m("a[b].c").fragment(), Fragment::QualifiersNoClosure);
        assert_eq!(m("_*.a[b]").fragment(), Fragment::QualifiersAndClosure);
    }

    #[test]
    fn length_is_linear_in_text() {
        // Sanity: longer query, larger n.
        assert!(m("a.b.c.d.e.f").length > m("a.b").length);
    }
}
