//! The rpeq abstract syntax tree.

use std::fmt;

/// A step label: either a concrete element name or the wildcard `_` which
/// matches every label (§II.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// `_` — matches any element name.
    Wildcard,
    /// A concrete element name.
    Name(String),
}

impl Label {
    /// Construct a named label.
    pub fn name(n: impl Into<String>) -> Label {
        Label::Name(n.into())
    }

    /// Does this label match the element name `name`?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            Label::Wildcard => true,
            Label::Name(n) => n == name,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Wildcard => write!(f, "_"),
            Label::Name(n) => write!(f, "{n}"),
        }
    }
}

/// A regular path expression with qualifiers, following the grammar of
/// §II.2:
///
/// ```text
/// rpeq ::= ε | label | label* | label+ | (rpeq|rpeq) | (rpeq . rpeq)
///        | rpeq? | rpeq [ rpeq ]
/// ```
///
/// The paper notes that `label*` ≡ `(label+ | ε)` and `rpeq?` ≡ `(rpeq | ε)`;
/// both derived forms are kept in the AST so the compiler can emit the exact
/// networks of Fig. 11.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rpeq {
    /// ε — the empty path (selects the context node itself).
    Empty,
    /// `label` — one child step.
    Step(Label),
    /// `label+` — one or more nested `label` steps (positive closure).
    Plus(Label),
    /// `label*` — zero or more nested `label` steps (Kleene closure).
    Star(Label),
    /// `(rpeq | rpeq)` — union.
    Union(Box<Rpeq>, Box<Rpeq>),
    /// `(rpeq . rpeq)` — concatenation.
    Concat(Box<Rpeq>, Box<Rpeq>),
    /// `rpeq?` — optional.
    Optional(Box<Rpeq>),
    /// `rpeq [ rpeq ]` — the first expression filtered by a qualifier.
    Qualified(Box<Rpeq>, Box<Rpeq>),
    /// `~label` — the *following* step: all `label` elements that begin
    /// after the context node ends, in document order. An extension beyond
    /// the paper's grammar; §I notes the SPEX prototype supported the
    /// `following` axis. Written `following::label` in XPath.
    Following(Label),
    /// `^label` — the *preceding* step: all `label` elements that end
    /// before the context node begins. The streaming implementation emits
    /// candidates speculatively under fresh condition variables that later
    /// context arrivals satisfy — the "future condition" machinery of the
    /// paper turned inside out. Written `preceding::label` in XPath.
    Preceding(Label),
}

impl Rpeq {
    /// Child step with a named label.
    pub fn step(name: impl Into<String>) -> Rpeq {
        Rpeq::Step(Label::name(name))
    }

    /// Wildcard child step `_`.
    pub fn any() -> Rpeq {
        Rpeq::Step(Label::Wildcard)
    }

    /// `label+` with a named label.
    pub fn plus(name: impl Into<String>) -> Rpeq {
        Rpeq::Plus(Label::name(name))
    }

    /// `label*` with a named label.
    pub fn star(name: impl Into<String>) -> Rpeq {
        Rpeq::Star(Label::name(name))
    }

    /// `_*` — the descendant-or-self prefix used throughout the paper's
    /// example queries (`_*.province.city`, …).
    pub fn descend() -> Rpeq {
        Rpeq::Star(Label::Wildcard)
    }

    /// `self . other`.
    pub fn then(self, other: Rpeq) -> Rpeq {
        Rpeq::Concat(Box::new(self), Box::new(other))
    }

    /// `(self | other)`.
    pub fn or(self, other: Rpeq) -> Rpeq {
        Rpeq::Union(Box::new(self), Box::new(other))
    }

    /// `self?`.
    pub fn optional(self) -> Rpeq {
        Rpeq::Optional(Box::new(self))
    }

    /// `self [ qualifier ]`.
    pub fn with_qualifier(self, qualifier: Rpeq) -> Rpeq {
        Rpeq::Qualified(Box::new(self), Box::new(qualifier))
    }

    /// `~label` — the following step (see [`Rpeq::Following`]).
    pub fn following(name: impl Into<String>) -> Rpeq {
        Rpeq::Following(Label::name(name))
    }

    /// `^label` — the preceding step (see [`Rpeq::Preceding`]).
    pub fn preceding(name: impl Into<String>) -> Rpeq {
        Rpeq::Preceding(Label::name(name))
    }

    /// Concatenate a sequence of expressions (left-associated, matching the
    /// text parser); an empty sequence yields ε.
    pub fn concat_all(parts: impl IntoIterator<Item = Rpeq>) -> Rpeq {
        parts
            .into_iter()
            .reduce(|acc, p| Rpeq::Concat(Box::new(acc), Box::new(p)))
            .unwrap_or(Rpeq::Empty)
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Rpeq)) {
        f(self);
        match self {
            Rpeq::Empty
            | Rpeq::Step(_)
            | Rpeq::Plus(_)
            | Rpeq::Star(_)
            | Rpeq::Following(_)
            | Rpeq::Preceding(_) => {}
            Rpeq::Union(a, b) | Rpeq::Concat(a, b) | Rpeq::Qualified(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Rpeq::Optional(a) => a.visit(f),
        }
    }

    /// Does the expression contain any qualifier?
    pub fn has_qualifiers(&self) -> bool {
        let mut found = false;
        self.visit(&mut |n| {
            if matches!(n, Rpeq::Qualified(..)) {
                found = true;
            }
        });
        found
    }

    /// Does the expression contain any closure step (`label+`/`label*`)?
    pub fn has_closure(&self) -> bool {
        let mut found = false;
        self.visit(&mut |n| {
            if matches!(n, Rpeq::Plus(_) | Rpeq::Star(_)) {
                found = true;
            }
        });
        found
    }
}

// Precedence levels for printing: union < concat < postfix.
fn prec(e: &Rpeq) -> u8 {
    match e {
        Rpeq::Union(..) => 0,
        Rpeq::Concat(..) => 1,
        _ => 2,
    }
}

impl fmt::Display for Rpeq {
    /// The canonical text syntax; `parse(format(q)) == q` (tested by
    /// property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn child(e: &Rpeq, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            if prec(e) < min {
                write!(f, "(")?;
                write!(f, "{e}")?;
                write!(f, ")")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Rpeq::Empty => write!(f, "%"),
            Rpeq::Step(l) => write!(f, "{l}"),
            Rpeq::Following(l) => write!(f, "~{l}"),
            Rpeq::Preceding(l) => write!(f, "^{l}"),
            Rpeq::Plus(l) => write!(f, "{l}+"),
            Rpeq::Star(l) => write!(f, "{l}*"),
            Rpeq::Union(a, b) => {
                child(a, f, 0)?;
                write!(f, "|")?;
                child(b, f, 1) // right operand needs parens if it is a union
                               // (unions are left-grouped canonically)
            }
            Rpeq::Concat(a, b) => {
                child(a, f, 1)?;
                write!(f, ".")?;
                child(b, f, 2) // right-nested concat gets parens: canonical
                               // form is left-grouped
            }
            Rpeq::Optional(a) => {
                child(a, f, 2)?;
                write!(f, "?")
            }
            Rpeq::Qualified(a, q) => {
                child(a, f, 2)?;
                write!(f, "[{q}]")
            }
        }
    }
}

impl std::str::FromStr for Rpeq {
    type Err = crate::parse::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_matching() {
        assert!(Label::Wildcard.matches("anything"));
        assert!(Label::name("a").matches("a"));
        assert!(!Label::name("a").matches("b"));
    }

    #[test]
    fn builders_compose() {
        let q = Rpeq::descend()
            .then(Rpeq::step("a").with_qualifier(Rpeq::step("b")))
            .then(Rpeq::step("c"));
        assert_eq!(q.to_string(), "_*.a[b].c");
        assert!(q.has_qualifiers());
        assert!(q.has_closure());
    }

    #[test]
    fn concat_all_edge_cases() {
        assert_eq!(Rpeq::concat_all([]), Rpeq::Empty);
        assert_eq!(Rpeq::concat_all([Rpeq::step("a")]), Rpeq::step("a"));
        let q = Rpeq::concat_all([Rpeq::step("a"), Rpeq::step("b"), Rpeq::step("c")]);
        assert_eq!(q.to_string(), "a.b.c");
    }

    #[test]
    fn display_parenthesizes_by_precedence() {
        let union_then = Rpeq::step("a").or(Rpeq::step("b")).then(Rpeq::step("c"));
        assert_eq!(union_then.to_string(), "(a|b).c");
        let opt_union = Rpeq::step("a").or(Rpeq::step("b")).optional();
        assert_eq!(opt_union.to_string(), "(a|b)?");
        let qual = Rpeq::step("a").with_qualifier(Rpeq::step("b").or(Rpeq::step("c")));
        assert_eq!(qual.to_string(), "a[b|c]");
    }

    #[test]
    fn visit_counts_nodes() {
        let q: Rpeq = Rpeq::descend().then(Rpeq::step("a").with_qualifier(Rpeq::step("b")));
        let mut n = 0;
        q.visit(&mut |_| n += 1);
        assert_eq!(n, 5); // concat, star, qualified, step a, step b
    }

    #[test]
    fn predicates() {
        assert!(!Rpeq::step("a").has_qualifiers());
        assert!(!Rpeq::step("a").has_closure());
        assert!(Rpeq::plus("a").has_closure());
        assert!(Rpeq::star("a").has_closure());
        assert!(Rpeq::step("a").with_qualifier(Rpeq::Empty).has_qualifiers());
    }
}
