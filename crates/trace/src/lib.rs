//! # spex-trace — end-to-end observability for the SPEX pipeline
//!
//! SPEX's value proposition is *progressive* evaluation: results are emitted
//! as early as possible and only undetermined stream fragments are buffered.
//! End-of-run aggregates (`EngineStats` and friends) cannot show *when* a
//! match was determined or *where* buffered bytes pile up inside the
//! transducer DAG — that is this crate's job. It is the measurement
//! substrate behind the CLI's `--trace-jsonl`/`--trace-summary` flags, the
//! server's `T` stats frame, and the `harness trace-bench` overhead gate.
//!
//! Design constraints (see DESIGN.md §13 for the full rationale and the
//! normative JSONL schema):
//!
//! * **zero dependencies, std only** — the workspace vendors nothing for
//!   observability; every byte of JSON is hand-rolled here,
//! * **pay only when enabled** — a disabled [`Tracer`] is a `None` check;
//!   the engine's per-event hot path is never instrumented directly (the
//!   paper-relevant measures are accumulated in plain fields and exported
//!   once at stream end),
//! * **quantiles without allocation** — [`Histogram`] uses fixed
//!   power-of-two buckets, so p50/p90/p99 are upper-bound estimates read
//!   from 65 counters, and two histograms merge by addition (sessions fold
//!   into server totals, documents fold into session totals).
//!
//! ## Layout
//!
//! * [`metric`] — [`Counter`], [`Gauge`], [`Histogram`],
//!   [`AtomicHistogram`]: the accumulating primitives,
//! * [`record`] — [`TraceRecord`], the unit of export, plus its JSONL
//!   serialization ([`escape_json`]),
//! * [`sink`] — the pluggable [`TraceSink`] trait and the three shipped
//!   sinks: [`NullSink`], [`JsonlSink`], [`MemorySink`],
//! * [`tracer`] — [`Tracer`], the cheap cloneable handle the rest of the
//!   workspace threads around, and [`Span`], its RAII monotonic-clock timer.
//!
//! ## Example
//!
//! ```
//! use spex_trace::{Histogram, MemorySink, TraceRecord, Tracer};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tracer = Tracer::to_sink(sink.clone());
//!
//! // A span measures a region; counters and histograms export aggregates.
//! {
//!     let _span = tracer.span("work").attr_u64("items", 3);
//! }
//! let mut latency = Histogram::new();
//! latency.record(2);
//! latency.record(40);
//! tracer.hist("determination_latency", &latency, &[]);
//!
//! let records = sink.records();
//! assert!(matches!(records[0], TraceRecord::Span { .. }));
//! assert!(matches!(records[1], TraceRecord::Hist { .. }));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod metric;
pub mod record;
pub mod sink;
pub mod tracer;

pub use metric::{AtomicHistogram, Counter, Gauge, Histogram, HistogramSummary};
pub use record::{escape_json, summary_json, TraceRecord, Value};
pub use sink::{JsonlSink, MemorySink, NullSink, TeeSink, TraceSink};
pub use tracer::{Span, Tracer};
