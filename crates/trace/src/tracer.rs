//! The [`Tracer`] handle and its RAII [`Span`] timer.
//!
//! A `Tracer` is the only type the instrumented crates hold. It is a
//! cheaply cloneable wrapper around `Option<Arc<dyn TraceSink>>`: disabled
//! tracers (`Tracer::disabled()`, also the `Default`) skip every clock read
//! and allocation, so instrumentation can stay unconditionally in place.

use crate::metric::Histogram;
use crate::record::{TraceRecord, Value};
use crate::sink::TraceSink;
use std::sync::Arc;
use std::time::Instant;

/// A cloneable handle for emitting trace records. See the
/// [module documentation](self).
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything at zero cost.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer delivering to `sink`.
    pub fn to_sink(sink: Arc<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// True when records actually go somewhere.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit a prebuilt record.
    pub fn emit(&self, record: &TraceRecord) {
        if let Some(sink) = &self.sink {
            sink.emit(record);
        }
    }

    /// Emit a counter without attributes.
    pub fn counter(&self, name: &str, value: u64) {
        self.counter_with(name, value, &[]);
    }

    /// Emit a counter with attributes.
    pub fn counter_with(&self, name: &str, value: u64, attrs: &[(&str, Value)]) {
        if let Some(sink) = &self.sink {
            sink.emit(&TraceRecord::Counter {
                name: name.to_string(),
                value,
                attrs: own_attrs(attrs),
            });
        }
    }

    /// Emit a gauge.
    pub fn gauge(&self, name: &str, value: u64) {
        self.gauge_with(name, value, &[]);
    }

    /// Emit a gauge with attributes.
    pub fn gauge_with(&self, name: &str, value: u64, attrs: &[(&str, Value)]) {
        if let Some(sink) = &self.sink {
            sink.emit(&TraceRecord::Gauge {
                name: name.to_string(),
                value,
                attrs: own_attrs(attrs),
            });
        }
    }

    /// Emit a histogram summary (skipped when the histogram is empty —
    /// silence, not a row of zeroes, is the absence of data).
    pub fn hist(&self, name: &str, hist: &Histogram, attrs: &[(&str, Value)]) {
        if let Some(sink) = &self.sink {
            if hist.is_empty() {
                return;
            }
            sink.emit(&TraceRecord::Hist {
                name: name.to_string(),
                summary: hist.summary(),
                attrs: own_attrs(attrs),
            });
        }
    }

    /// Start a span; the record is emitted when the returned guard drops.
    /// On a disabled tracer the guard is inert (no clock read).
    pub fn span(&self, name: &str) -> Span {
        match &self.sink {
            Some(sink) => Span {
                inner: Some(SpanInner {
                    sink: Arc::clone(sink),
                    name: name.to_string(),
                    start: Instant::now(),
                    attrs: Vec::new(),
                }),
            },
            None => Span { inner: None },
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

fn own_attrs(attrs: &[(&str, Value)]) -> Vec<(String, Value)> {
    attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

struct SpanInner {
    sink: Arc<dyn TraceSink>,
    name: String,
    start: Instant,
    attrs: Vec<(String, Value)>,
}

/// An RAII timer: measures from [`Tracer::span`] to drop on the monotonic
/// clock and emits a `span` record. Attach context with [`Span::attr`]
/// before it drops.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attach an attribute (builder style).
    pub fn attr(mut self, key: &str, value: impl Into<Value>) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Attach an integer attribute (builder style).
    pub fn attr_u64(self, key: &str, value: u64) -> Span {
        self.attr(key, Value::U64(value))
    }

    /// Attach an attribute to a span held in a variable.
    pub fn set_attr(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let us = inner.start.elapsed().as_micros() as u64;
            inner.sink.emit(&TraceRecord::Span {
                name: inner.name,
                us,
                attrs: inner.attrs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.counter("c", 1);
        let span = t.span("s").attr("k", "v");
        drop(span);
        t.flush(); // nothing to observe — the point is that nothing panics
    }

    #[test]
    fn span_measures_and_carries_attrs() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::to_sink(sink.clone());
        {
            let mut span = t.span("work");
            span.set_attr("phase", "test");
            let _ = span; // dropped at block end
        }
        let records = sink.records();
        assert_eq!(records.len(), 1);
        match &records[0] {
            TraceRecord::Span { name, attrs, .. } => {
                assert_eq!(name, "work");
                assert_eq!(attrs[0].0, "phase");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn empty_histograms_are_not_emitted() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::to_sink(sink.clone());
        t.hist("h", &Histogram::new(), &[]);
        assert!(sink.is_empty());
        let mut h = Histogram::new();
        h.record(1);
        t.hist("h", &h, &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::to_sink(sink.clone());
        let t2 = t.clone();
        t.counter("a", 1);
        t2.counter("b", 2);
        assert_eq!(sink.len(), 2);
    }
}
