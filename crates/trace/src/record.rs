//! The unit of trace export and its JSONL serialization.
//!
//! One [`TraceRecord`] becomes exactly one line of JSON. The schema is
//! normative — DESIGN.md §13 documents it field by field and the test suite
//! checks emitted lines against it — and deliberately flat: every line
//! carries a `"t"` discriminator (`span` | `counter` | `gauge` | `hist`),
//! a `"name"`, the type's payload fields, and an optional `"attrs"` object
//! of string/integer attributes.

use crate::metric::HistogramSummary;

/// An attribute value: a string or an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A string attribute (JSON-escaped on export).
    Str(String),
    /// An integer attribute.
    U64(u64),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

/// One exported observation. Serialized as one JSONL line by
/// [`TraceRecord::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A timed region (monotonic clock), duration in microseconds.
    Span {
        /// Span name, e.g. `cli.evaluate` or `serve.session`.
        name: String,
        /// Wall duration in microseconds (monotonic clock).
        us: u64,
        /// Optional key/value context.
        attrs: Vec<(String, Value)>,
    },
    /// A monotonically accumulated count.
    Counter {
        /// Counter name, e.g. `xml.events`.
        name: String,
        /// The accumulated value.
        value: u64,
        /// Optional key/value context.
        attrs: Vec<(String, Value)>,
    },
    /// An instantaneous or peak measurement.
    Gauge {
        /// Gauge name, e.g. `engine.peak_buffered_events`.
        name: String,
        /// The measured value.
        value: u64,
        /// Optional key/value context.
        attrs: Vec<(String, Value)>,
    },
    /// A distribution summary.
    Hist {
        /// Histogram name, e.g. `engine.determination_latency`.
        name: String,
        /// The five-number-plus-quantiles summary.
        summary: HistogramSummary,
        /// Optional key/value context.
        attrs: Vec<(String, Value)>,
    },
}

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; multi-byte UTF-8 passes through
/// untouched).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_attrs(out: &mut String, attrs: &[(String, Value)]) {
    if attrs.is_empty() {
        return;
    }
    out.push_str(",\"attrs\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape_json(k));
        out.push_str("\":");
        match v {
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Value::U64(n) => out.push_str(&n.to_string()),
        }
    }
    out.push('}');
}

impl TraceRecord {
    /// The record's name.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Span { name, .. }
            | TraceRecord::Counter { name, .. }
            | TraceRecord::Gauge { name, .. }
            | TraceRecord::Hist { name, .. } => name,
        }
    }

    /// The record's attributes.
    pub fn attrs(&self) -> &[(String, Value)] {
        match self {
            TraceRecord::Span { attrs, .. }
            | TraceRecord::Counter { attrs, .. }
            | TraceRecord::Gauge { attrs, .. }
            | TraceRecord::Hist { attrs, .. } => attrs,
        }
    }

    /// Serialize as one line of JSON (no trailing newline) following the
    /// DESIGN.md §13 schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            TraceRecord::Span { name, us, attrs } => {
                out.push_str("{\"t\":\"span\",\"name\":\"");
                out.push_str(&escape_json(name));
                out.push_str(&format!("\",\"us\":{us}"));
                push_attrs(&mut out, attrs);
            }
            TraceRecord::Counter { name, value, attrs } => {
                out.push_str("{\"t\":\"counter\",\"name\":\"");
                out.push_str(&escape_json(name));
                out.push_str(&format!("\",\"v\":{value}"));
                push_attrs(&mut out, attrs);
            }
            TraceRecord::Gauge { name, value, attrs } => {
                out.push_str("{\"t\":\"gauge\",\"name\":\"");
                out.push_str(&escape_json(name));
                out.push_str(&format!("\",\"v\":{value}"));
                push_attrs(&mut out, attrs);
            }
            TraceRecord::Hist {
                name,
                summary,
                attrs,
            } => {
                out.push_str("{\"t\":\"hist\",\"name\":\"");
                out.push_str(&escape_json(name));
                out.push_str(&format!(
                    "\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                    summary.count,
                    summary.sum,
                    summary.min,
                    summary.max,
                    summary.p50,
                    summary.p90,
                    summary.p99
                ));
                push_attrs(&mut out, attrs);
            }
        }
        out.push('}');
        out
    }
}

/// Render a [`HistogramSummary`] as a bare JSON object (used by the server's
/// `T`-frame payload, where summaries nest inside a larger document).
pub fn summary_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc\rd"), r"a\nb\tc\rd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("\u{1f}x"), "\\u001fx");
        // Multi-byte UTF-8 passes through.
        assert_eq!(escape_json("héllo — ok"), "héllo — ok");
        assert_eq!(escape_json(""), "");
    }

    #[test]
    fn span_line_shape() {
        let r = TraceRecord::Span {
            name: "cli.evaluate".into(),
            us: 1234,
            attrs: vec![
                ("input".to_string(), Value::from("doc \"x\".xml")),
                ("events".to_string(), Value::from(42u64)),
            ],
        };
        assert_eq!(
            r.to_json(),
            r#"{"t":"span","name":"cli.evaluate","us":1234,"attrs":{"input":"doc \"x\".xml","events":42}}"#
        );
    }

    #[test]
    fn counter_and_gauge_line_shape() {
        let c = TraceRecord::Counter {
            name: "xml.events".into(),
            value: 7,
            attrs: vec![],
        };
        assert_eq!(c.to_json(), r#"{"t":"counter","name":"xml.events","v":7}"#);
        let g = TraceRecord::Gauge {
            name: "engine.peak_buffered_events".into(),
            value: 3,
            attrs: vec![],
        };
        assert_eq!(
            g.to_json(),
            r#"{"t":"gauge","name":"engine.peak_buffered_events","v":3}"#
        );
    }

    #[test]
    fn hist_line_shape() {
        let mut h = crate::Histogram::new();
        h.record(1);
        h.record(3);
        let r = TraceRecord::Hist {
            name: "engine.determination_latency".into(),
            summary: h.summary(),
            attrs: vec![("node".to_string(), Value::from(5u64))],
        };
        assert_eq!(
            r.to_json(),
            r#"{"t":"hist","name":"engine.determination_latency","count":2,"sum":4,"min":1,"max":3,"p50":1,"p90":3,"p99":3,"attrs":{"node":5}}"#
        );
    }

    #[test]
    fn every_line_is_balanced_json() {
        // A structural smoke check shared with the server stats tests: every
        // emitted line has balanced braces/quotes and no raw control bytes.
        let records = vec![
            TraceRecord::Span {
                name: "a\"b\\c\n".into(),
                us: 0,
                attrs: vec![("k\n".to_string(), Value::from("v\"".to_string()))],
            },
            TraceRecord::Hist {
                name: "h".into(),
                summary: HistogramSummary::default(),
                attrs: vec![],
            },
        ];
        for r in records {
            let line = r.to_json();
            assert!(line.starts_with('{') && line.ends_with('}'));
            let mut depth = 0i32;
            let mut in_str = false;
            let mut esc = false;
            for c in line.chars() {
                assert!(!c.is_control(), "raw control char in {line:?}");
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    '{' if !in_str => depth += 1,
                    '}' if !in_str => depth -= 1,
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced braces in {line}");
            assert!(!in_str, "unterminated string in {line}");
        }
    }
}
