//! Pluggable trace destinations.
//!
//! A [`TraceSink`] receives finished [`TraceRecord`]s. Three implementations
//! ship:
//!
//! * [`NullSink`] — discards everything; with the [`crate::Tracer`]'s
//!   `None` fast path this compiles down to nothing on the instrumented
//!   paths,
//! * [`JsonlSink`] — one JSON object per line to any `Write` (the CLI's
//!   `--trace-jsonl PATH`, the server's tail-able live trace),
//! * [`MemorySink`] — collects records in memory for tests and for the
//!   CLI's `--trace-summary` rendering.

use crate::record::TraceRecord;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// A destination for trace records. Implementations must be cheap and must
/// never panic on I/O problems (drop the record instead: observability must
/// not take the observed system down).
pub trait TraceSink: Send + Sync {
    /// Deliver one record.
    fn emit(&self, record: &TraceRecord);
    /// Flush any buffering to the underlying medium.
    fn flush(&self) {}
    /// Force everything emitted so far down to the durable medium. Called at
    /// record boundaries by crash-sensitive producers so an abnormal exit
    /// loses at most the record being written. Default: no-op.
    fn sync(&self) {}
}

/// The no-op sink: every record is discarded.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _record: &TraceRecord) {}
}

/// A line-per-record JSON sink over any writer (file, pipe, socket).
///
/// Records are buffered through a [`BufWriter`] and serialized with
/// [`TraceRecord::to_json`]; I/O errors are swallowed after latching a flag
/// readable via [`JsonlSink::had_error`].
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    error: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("had_error", &self.had_error())
            .finish()
    }
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(out)),
            error: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Create (truncate) `path` and write records to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(file)))
    }

    /// True when any write or flush failed since creation.
    pub fn had_error(&self) -> bool {
        self.error.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn latch(&self, r: std::io::Result<()>) {
        if r.is_err() {
            self.error.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, record: &TraceRecord) {
        let line = record.to_json();
        let mut out = match self.out.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        self.latch(out.write_all(line.as_bytes()));
        self.latch(out.write_all(b"\n"));
        // Flush at every record boundary: a crashed process must leave a
        // readable trace up to (at worst) the record in flight.
        let r = out.flush();
        self.latch(r);
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let r = out.flush();
            self.latch(r);
        }
    }

    fn sync(&self) {
        TraceSink::flush(self);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        TraceSink::flush(self);
    }
}

/// An in-memory sink for tests: records are cloned into a vector.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().map(|g| g.clone()).unwrap_or_default()
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.lock().map(|g| g.len()).unwrap_or(0)
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, record: &TraceRecord) {
        if let Ok(mut g) = self.records.lock() {
            g.push(record.clone());
        }
    }
}

/// A fan-out sink: every record goes to every child (the CLI uses this to
/// serve `--trace-jsonl` and `--trace-summary` from one instrumented run).
pub struct TeeSink {
    children: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("children", &self.children.len())
            .finish()
    }
}

impl TeeSink {
    /// Fan out to `children`.
    pub fn new(children: Vec<std::sync::Arc<dyn TraceSink>>) -> Self {
        TeeSink { children }
    }
}

impl TraceSink for TeeSink {
    fn emit(&self, record: &TraceRecord) {
        for c in &self.children {
            c.emit(record);
        }
    }

    fn flush(&self) {
        for c in &self.children {
            c.flush();
        }
    }

    fn sync(&self) {
        for c in &self.children {
            c.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        for i in 0..3u64 {
            sink.emit(&TraceRecord::Counter {
                name: format!("c{i}"),
                value: i,
                attrs: vec![],
            });
        }
        let records = sink.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].name(), "c2");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        // Write through a shared Vec<u8> so the test can read it back.
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&TraceRecord::Span {
            name: "s".into(),
            us: 1,
            attrs: vec![("k".to_string(), Value::from("v"))],
        });
        sink.emit(&TraceRecord::Counter {
            name: "c".into(),
            value: 2,
            attrs: vec![],
        });
        TraceSink::flush(&sink);
        assert!(!sink.had_error());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":\"span\""));
        assert!(lines[1].starts_with("{\"t\":\"counter\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_is_durable_at_record_boundaries() {
        // Each emit must reach the underlying writer without an explicit
        // flush call, so a crash after emit loses nothing.
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&TraceRecord::Counter {
            name: "c".into(),
            value: 1,
            attrs: vec![],
        });
        // No flush() — the record must already be visible.
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"c\""));
        // sync() is flush for this sink and must not error.
        sink.sync();
        assert!(!sink.had_error());
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("nope"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("nope"))
            }
        }
        let sink = JsonlSink::new(Box::new(Failing));
        sink.emit(&TraceRecord::Counter {
            name: "c".into(),
            value: 1,
            attrs: vec![],
        });
        TraceSink::flush(&sink);
        assert!(sink.had_error());
    }
}
