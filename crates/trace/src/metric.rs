//! Accumulating metric primitives: counters, gauges, and power-of-two
//! bucket histograms (plain and atomic).
//!
//! The histogram is the workhorse: determination latency (the paper's
//! earliness measure), admission-queue wait, and session duration are all
//! distributions, and the interesting part of a distribution is its tail.
//! Buckets are powers of two, so recording is a `leading_zeros` plus one
//! array increment, merging is addition, and quantiles are *upper bounds* —
//! a reported p99 is never smaller than the true p99 (conservative in the
//! direction that matters for latency).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i - 1]`.
pub(crate) const BUCKETS: usize = 65;

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (saturating at `u64::MAX`).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing atomic counter.
///
/// Safe to bump from any thread; `Relaxed` ordering everywhere because the
/// exported numbers are aggregates, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a last-written value plus a high-water mark.
///
/// `set` both stores the instantaneous value and folds it into the peak, so
/// one gauge answers both "how many now?" and "how many at worst?" (the
/// candidate-buffer high-water marks of the paper's §VI memory argument).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Store the instantaneous value and update the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest value ever stored.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A fixed-size summary of a histogram, ready for export.
///
/// This is what crosses serialization boundaries (JSONL records, the
/// server's `T` frame): five numbers plus the quantile estimates, not the
/// bucket array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Upper-bound estimate of the 50th percentile.
    pub p50: u64,
    /// Upper-bound estimate of the 90th percentile.
    pub p90: u64,
    /// Upper-bound estimate of the 99th percentile.
    pub p99: u64,
}

/// A single-threaded histogram over `u64` values with power-of-two buckets.
///
/// Bucket 0 counts zeros; bucket `i` (1..=64) counts values in
/// `[2^(i-1), 2^i - 1]`. Recording is branch-plus-increment, merging is
/// element-wise addition, and [`Histogram::quantile`] returns the upper
/// bound of the bucket containing the requested rank, clamped to the exact
/// observed maximum — so estimates never under-report a latency tail.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(
            f,
            "Histogram(count={} sum={} min={} max={} p50={} p90={} p99={})",
            s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
        )
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`): the
    /// upper bound of the bucket holding the value of rank `ceil(q·count)`,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Export the complete internal state as a flat vector for
    /// serialization: `[count, sum, min, max, bucket_0 … bucket_64]`.
    ///
    /// The `min` slot is the *internal* sentinel (`u64::MAX` when empty), so
    /// [`Histogram::import_raw`] round-trips exactly, merges included.
    pub fn export_raw(&self) -> Vec<u64> {
        let mut raw = Vec::with_capacity(4 + BUCKETS);
        raw.push(self.count);
        raw.push(self.sum);
        raw.push(self.min);
        raw.push(self.max);
        raw.extend_from_slice(&self.buckets);
        raw
    }

    /// Rebuild a histogram from [`Histogram::export_raw`] output. Returns
    /// `None` when the slice has the wrong length.
    pub fn import_raw(raw: &[u64]) -> Option<Histogram> {
        if raw.len() != 4 + BUCKETS {
            return None;
        }
        let mut h = Histogram {
            buckets: [0; BUCKETS],
            count: raw[0],
            sum: raw[1],
            min: raw[2],
            max: raw[3],
        };
        h.buckets.copy_from_slice(&raw[4..]);
        Some(h)
    }

    /// The exported five-number-plus-quantiles summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A thread-safe histogram with the same buckets as [`Histogram`].
///
/// Used where multiple threads record concurrently (the server's
/// admission-queue wait and session durations). All operations are
/// `Relaxed`; [`AtomicHistogram::snapshot`] is a best-effort read, which is
/// fine for monitoring (the server only reads while quiescent or for an
/// approximate live answer to a `T` frame).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold a single-threaded histogram into this one (e.g. a session's
    /// per-document latencies into the server total).
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            if *b != 0 {
                a.fetch_add(*b, Ordering::Relaxed);
            }
        }
        if other.count != 0 {
            self.count.fetch_add(other.count, Ordering::Relaxed);
            self.sum.fetch_add(other.sum, Ordering::Relaxed);
            self.min.fetch_min(other.min, Ordering::Relaxed);
            self.max.fetch_max(other.max, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (a, b) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *a = b.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }

    /// The exported summary (via [`AtomicHistogram::snapshot`]).
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Each bucket's upper bound lands in that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn single_value_quantiles_are_exact_enough() {
        let mut h = Histogram::new();
        h.record(5);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        // The 5 lives in bucket [4,7]; the estimate is clamped to max=5.
        assert_eq!(s.p50, 5);
        assert_eq!(s.p99, 5);
    }

    #[test]
    fn quantiles_are_upper_bounds_and_monotonic() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // True p50 = 500 lives in [512,1023) → upper bound 1023, clamped to
        // max 1000. Whatever the clamping, the estimate may not undershoot
        // the true quantile and p50 <= p90 <= p99 <= max must hold.
        assert!(s.p50 >= 500);
        assert!(s.p90 >= 900);
        assert!(s.p99 >= 990);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn zeros_occupy_their_own_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(1 << 20);
        let s = h.summary();
        assert_eq!(s.p50, 0);
        assert_eq!(s.p90, 0);
        // Rank ceil(0.99·100)=99 is still a zero; the millionth value is
        // only visible at max.
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 1 << 20);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 306);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 200);
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut a = Histogram::new();
        a.record(7);
        let before = a.summary();
        a.merge(&Histogram::new());
        assert_eq!(a.summary(), before);
        // And empty.merge(empty) stays empty (min must not be poisoned).
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.summary(), HistogramSummary::default());
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 1000, 12345] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.summary(), h.summary());
        // merge() folds a plain histogram in.
        let ah2 = AtomicHistogram::new();
        ah2.merge(&h);
        assert_eq!(ah2.summary(), h.summary());
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 5);
    }

    #[test]
    fn raw_export_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 77, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let raw = h.export_raw();
        assert_eq!(raw.len(), 4 + BUCKETS);
        let back = Histogram::import_raw(&raw).expect("round trip");
        assert_eq!(back.summary(), h.summary());
        assert_eq!(back.export_raw(), raw);
        // Empty histograms round-trip too (internal min sentinel preserved).
        let empty = Histogram::new();
        let back = Histogram::import_raw(&empty.export_raw()).expect("empty");
        assert_eq!(back.summary(), HistogramSummary::default());
        let mut merged = back;
        merged.record(3);
        assert_eq!(merged.min(), 3);
        // Wrong lengths are rejected, not mis-read.
        assert!(Histogram::import_raw(&[]).is_none());
        assert!(Histogram::import_raw(&raw[..raw.len() - 1]).is_none());
    }

    #[test]
    fn saturating_sum_survives_extremes() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
