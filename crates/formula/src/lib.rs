//! # spex-formula — condition variables and condition formulas
//!
//! SPEX activation messages carry *condition formulas*: "conjunctions and/or
//! disjunctions of condition variables" (Definition 2 of the paper). A
//! condition variable represents one *instance* of a qualifier: the
//! variable-creator transducer VC(q) mints a fresh variable for every
//! activation it sees, the variable-determinant VD sets instances to `true`
//! when the qualifier's sub-expression matched, and VC sets them to `false`
//! when the instance's scope closes unsatisfied.
//!
//! This crate provides:
//!
//! * [`CondVar`] — a condition variable tagged with the [`QualifierId`] it
//!   belongs to (the tag is what the variable-filter transducers VF(q±)
//!   dispatch on),
//! * [`Formula`] — normalized positive boolean formulas over condition
//!   variables, with the normalization the paper relies on in its complexity
//!   analysis (§V): flattening, duplicate removal ("a formula contains at
//!   most one reference to a condition variable") and absorption,
//! * substitution ([`Formula::assign`]) implementing the paper's
//!   `update(c, v, β)` stack operation,
//! * size metrics ([`Formula::size`]) matching the paper's *o(φ)* measure.
//!
//! The formula algebra and its normalization invariants are discussed in
//! DESIGN.md §3 (key design decisions); the growth experiments it enables
//! are indexed in DESIGN.md §6.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod formula;
pub mod var;

pub use formula::Formula;
pub use var::{CondVar, QualifierId, VarFactory};
