//! Normalized positive boolean condition formulas.
//!
//! Invariants maintained by the smart constructors ([`Formula::and`],
//! [`Formula::or`], and the n-ary [`Formula::conj`] / [`Formula::disj`]):
//!
//! 1. `And`/`Or` nodes have at least two children,
//! 2. children of an `And` are never `And` (flattening), same for `Or`,
//! 3. no child is `True`/`False` (constant folding: `x ∧ true = x`,
//!    `x ∧ false = false`, `x ∨ true = true`, `x ∨ false = x`),
//! 4. children are sorted and duplicate-free (the paper's "removing multiple
//!    occurrences of the same conjuncts"),
//! 5. shallow absorption: in an `Or`, a disjunct whose conjunct set is a
//!    superset of another disjunct's is dropped (`a ∨ (a ∧ b) = a`), and
//!    dually for `And`.
//!
//! Invariants 4–5 implement the normalization that §V of the paper relies on
//! when bounding formula sizes ("a formula contains at most one reference to
//! a condition variable" per disjunct).

use crate::var::{CondVar, QualifierId};
use std::collections::BTreeSet;
use std::fmt;

/// A normalized positive boolean formula over condition variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The constant `true` — the formula carried by the initial activation
    /// the input transducer sends at `<$>`.
    True,
    /// The constant `false` — a dropped candidate.
    False,
    /// A single condition variable.
    Var(CondVar),
    /// Conjunction of at least two distinct sub-formulas.
    And(Vec<Formula>),
    /// Disjunction of at least two distinct sub-formulas.
    Or(Vec<Formula>),
}

impl Formula {
    /// The variable `v` as a formula.
    pub fn var(v: CondVar) -> Formula {
        Formula::Var(v)
    }

    /// Binary conjunction (normalized).
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::conj(vec![a, b])
    }

    /// Binary disjunction (normalized).
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::disj(vec![a, b])
    }

    /// N-ary conjunction (normalized).
    pub fn conj(parts: Vec<Formula>) -> Formula {
        Self::build(parts, /*conjunction=*/ true)
    }

    /// N-ary disjunction (normalized).
    pub fn disj(parts: Vec<Formula>) -> Formula {
        Self::build(parts, /*conjunction=*/ false)
    }

    fn build(mut parts: Vec<Formula>, conjunction: bool) -> Formula {
        // A singleton leaf normalizes to itself; skip the children buffer
        // (this is the overwhelmingly common case on the output hot path,
        // where most activations carry `true`).
        if parts.len() == 1 && matches!(parts[0], Formula::True | Formula::False | Formula::Var(_))
        {
            return parts.pop().expect("length checked");
        }
        let (absorbing, neutral) = if conjunction {
            (Formula::False, Formula::True)
        } else {
            (Formula::True, Formula::False)
        };
        let mut children: Vec<Formula> = Vec::with_capacity(parts.len());
        for p in parts {
            if p == absorbing {
                return absorbing;
            }
            if p == neutral {
                continue;
            }
            match (conjunction, p) {
                (true, Formula::And(kids)) | (false, Formula::Or(kids)) => children.extend(kids),
                (_, other) => children.push(other),
            }
        }
        children.sort();
        children.dedup();
        Self::absorb(&mut children, conjunction);
        match children.len() {
            0 => neutral,
            1 => children.pop().expect("len checked"),
            _ => {
                if conjunction {
                    Formula::And(children)
                } else {
                    Formula::Or(children)
                }
            }
        }
    }

    /// Shallow absorption: drop children subsumed by another child.
    ///
    /// For a disjunction, child `x` subsumes child `y` if `x`'s literal set
    /// (as a conjunction) is a subset of `y`'s — then `y` is redundant. For a
    /// conjunction the dual holds with disjunct literal sets. Children with
    /// mixed nesting are left alone (soundness over completeness).
    fn absorb(children: &mut Vec<Formula>, conjunction: bool) {
        if children.len() < 2 {
            return;
        }
        // Literal sets: for OR-normalization each child is viewed as a
        // conjunction of literals; for AND dually as a disjunction.
        fn literal_set(f: &Formula, conjunction: bool) -> Option<BTreeSet<CondVar>> {
            match f {
                Formula::Var(v) => Some([*v].into_iter().collect()),
                Formula::And(kids) if !conjunction => kids
                    .iter()
                    .map(|k| match k {
                        Formula::Var(v) => Some(*v),
                        _ => None,
                    })
                    .collect(),
                Formula::Or(kids) if conjunction => kids
                    .iter()
                    .map(|k| match k {
                        Formula::Var(v) => Some(*v),
                        _ => None,
                    })
                    .collect(),
                _ => None,
            }
        }
        let sets: Vec<Option<BTreeSet<CondVar>>> = children
            .iter()
            .map(|c| literal_set(c, conjunction))
            .collect();
        let mut keep = vec![true; children.len()];
        for i in 0..children.len() {
            if !keep[i] {
                continue;
            }
            let Some(si) = &sets[i] else { continue };
            for j in 0..children.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let Some(sj) = &sets[j] else { continue };
                // si ⊂ sj (strict, or equal with i<j — but equals were
                // deduped) ⇒ child j is absorbed by child i.
                if si.is_subset(sj) && si.len() < sj.len() {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        children.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Substitute `value` for every occurrence of `v` and re-normalize.
    /// This is the paper's `update(c, v, β)` applied to a single formula.
    pub fn assign(&self, v: CondVar, value: bool) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Var(x) => {
                if *x == v {
                    if value {
                        Formula::True
                    } else {
                        Formula::False
                    }
                } else {
                    self.clone()
                }
            }
            Formula::And(kids) => Formula::conj(kids.iter().map(|k| k.assign(v, value)).collect()),
            Formula::Or(kids) => Formula::disj(kids.iter().map(|k| k.assign(v, value)).collect()),
        }
    }

    /// Substitute the formula `replacement` for every occurrence of `v` and
    /// re-normalize. `assign(v, b)` is the special case where `replacement`
    /// is a constant. Used by the conditional determinations `{c := c ∨ r}`
    /// that nested qualifiers produce.
    pub fn substitute(&self, v: CondVar, replacement: &Formula) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Var(x) => {
                if *x == v {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Formula::And(kids) => {
                Formula::conj(kids.iter().map(|k| k.substitute(v, replacement)).collect())
            }
            Formula::Or(kids) => {
                Formula::disj(kids.iter().map(|k| k.substitute(v, replacement)).collect())
            }
        }
    }

    /// Does the formula mention `v`?
    pub fn contains(&self, v: CondVar) -> bool {
        match self {
            Formula::True | Formula::False => false,
            Formula::Var(x) => *x == v,
            Formula::And(kids) | Formula::Or(kids) => kids.iter().any(|k| k.contains(v)),
        }
    }

    /// All variables mentioned, in sorted order without duplicates.
    pub fn vars(&self) -> Vec<CondVar> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out.into_iter().collect()
    }

    /// All variables belonging to `qualifier` (used by the positive
    /// variable-filter VF(q+)).
    pub fn vars_of(&self, qualifier: QualifierId) -> Vec<CondVar> {
        self.vars()
            .into_iter()
            .filter(|v| v.qualifier == qualifier)
            .collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<CondVar>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::And(kids) | Formula::Or(kids) => {
                for k in kids {
                    k.collect_vars(out);
                }
            }
        }
    }

    /// The truth value, if determined (`None` while variables remain).
    /// Because normalization folds constants, a normalized formula is
    /// determined iff it *is* a constant.
    pub fn value(&self) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            _ => None,
        }
    }

    /// Is the formula the constant `true`?
    pub fn is_true(&self) -> bool {
        matches!(self, Formula::True)
    }

    /// Is the formula the constant `false`?
    pub fn is_false(&self) -> bool {
        matches!(self, Formula::False)
    }

    /// The paper's size measure *o(φ)*: the number of variable occurrences
    /// (constants count 1 so `o(true) = 1`, matching "without qualifiers …
    /// the size of a formula is constant").
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::And(kids) | Formula::Or(kids) => kids.iter().map(Formula::size).sum(),
        }
    }

    /// Total number of AST nodes (for instrumentation).
    pub fn node_count(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::And(kids) | Formula::Or(kids) => {
                1 + kids.iter().map(Formula::node_count).sum::<usize>()
            }
        }
    }

    /// Evaluate under a total assignment (used by tests as an oracle).
    pub fn eval(&self, assignment: &dyn Fn(CondVar) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => assignment(*v),
            Formula::And(kids) => kids.iter().all(|k| k.eval(assignment)),
            Formula::Or(kids) => kids.iter().any(|k| k.eval(assignment)),
        }
    }
}

impl From<CondVar> for Formula {
    fn from(v: CondVar) -> Self {
        Formula::Var(v)
    }
}

impl From<bool> for Formula {
    fn from(b: bool) -> Self {
        if b {
            Formula::True
        } else {
            Formula::False
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(x: &Formula, f: &mut fmt::Formatter<'_>, parent_and: Option<bool>) -> fmt::Result {
            match x {
                Formula::True => write!(f, "true"),
                Formula::False => write!(f, "false"),
                Formula::Var(v) => write!(f, "{v}"),
                Formula::And(kids) | Formula::Or(kids) => {
                    let is_and = matches!(x, Formula::And(_));
                    let needs_parens = parent_and.is_some_and(|p| p != is_and);
                    if needs_parens {
                        write!(f, "(")?;
                    }
                    let sep = if is_and { " ∧ " } else { " ∨ " };
                    for (i, k) in kids.iter().enumerate() {
                        if i > 0 {
                            write!(f, "{sep}")?;
                        }
                        go(k, f, Some(is_and))?;
                    }
                    if needs_parens {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(q: u32, s: u32) -> Formula {
        Formula::Var(CondVar::new(q, s))
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Formula::and(Formula::True, v(0, 1)), v(0, 1));
        assert_eq!(Formula::and(Formula::False, v(0, 1)), Formula::False);
        assert_eq!(Formula::or(Formula::True, v(0, 1)), Formula::True);
        assert_eq!(Formula::or(Formula::False, v(0, 1)), v(0, 1));
        assert_eq!(Formula::and(Formula::True, Formula::True), Formula::True);
        assert_eq!(Formula::disj(vec![]), Formula::False);
        assert_eq!(Formula::conj(vec![]), Formula::True);
    }

    #[test]
    fn flattening_and_dedup() {
        let f = Formula::or(Formula::or(v(0, 1), v(0, 2)), Formula::or(v(0, 2), v(0, 3)));
        assert_eq!(f, Formula::Or(vec![v(0, 1), v(0, 2), v(0, 3)]));
        let g = Formula::and(v(0, 1), Formula::and(v(0, 1), v(0, 2)));
        assert_eq!(g, Formula::And(vec![v(0, 1), v(0, 2)]));
    }

    #[test]
    fn idempotence() {
        assert_eq!(Formula::or(v(0, 1), v(0, 1)), v(0, 1));
        assert_eq!(Formula::and(v(0, 1), v(0, 1)), v(0, 1));
    }

    #[test]
    fn commutativity_via_sorting() {
        assert_eq!(Formula::or(v(0, 2), v(0, 1)), Formula::or(v(0, 1), v(0, 2)));
        assert_eq!(
            Formula::and(v(1, 1), v(0, 9)),
            Formula::and(v(0, 9), v(1, 1))
        );
    }

    #[test]
    fn absorption_in_or() {
        // a ∨ (a ∧ b) = a — the closure-transducer normalization of §III.4.
        let a = v(0, 1);
        let ab = Formula::and(v(0, 1), v(0, 2));
        assert_eq!(Formula::or(a.clone(), ab), a);
    }

    #[test]
    fn absorption_in_and() {
        // a ∧ (a ∨ b) = a.
        let a = v(0, 1);
        let aob = Formula::or(v(0, 1), v(0, 2));
        assert_eq!(Formula::and(a.clone(), aob), a);
    }

    #[test]
    fn no_unsound_absorption_with_mixed_nesting() {
        // (a ∧ (b ∨ c)) ∨ a should still reduce via... the nested child has
        // no flat literal set, so absorption skips it — the result keeps both.
        let nested = Formula::and(v(0, 1), Formula::or(v(0, 2), v(0, 3)));
        let f = Formula::or(nested.clone(), v(0, 1));
        // Both disjuncts kept (sound; completeness not required).
        match &f {
            Formula::Or(kids) => assert_eq!(kids.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Semantics preserved: equivalent to a.
        for bits in 0..8u32 {
            let assignment = |x: CondVar| bits & (1 << x.serial) != 0;
            assert_eq!(
                f.eval(&assignment),
                v(0, 1).eval(&assignment) || nested.eval(&assignment)
            );
        }
    }

    #[test]
    fn assign_substitutes_and_folds() {
        let f = Formula::and(v(0, 1), Formula::or(v(0, 2), v(1, 3)));
        assert_eq!(f.assign(CondVar::new(0, 1), false), Formula::False);
        assert_eq!(f.assign(CondVar::new(0, 2), true), v(0, 1));
        let g = f.assign(CondVar::new(0, 2), false);
        assert_eq!(g, Formula::and(v(0, 1), v(1, 3)));
        assert_eq!(f.assign(CondVar::new(9, 9), true), f);
    }

    #[test]
    fn assign_chain_determines() {
        let f = Formula::and(v(0, 1), v(0, 2));
        let g = f
            .assign(CondVar::new(0, 1), true)
            .assign(CondVar::new(0, 2), true);
        assert_eq!(g.value(), Some(true));
        let h = f.assign(CondVar::new(0, 2), false);
        assert_eq!(h.value(), Some(false));
        assert_eq!(f.value(), None);
    }

    #[test]
    fn substitute_replaces_and_normalizes() {
        let c = CondVar::new(0, 1);
        let f = Formula::and(Formula::Var(c), v(1, 2));
        // c ↦ c ∨ r (the conditional-determination shape).
        let g = f.substitute(c, &Formula::or(Formula::Var(c), v(1, 3)));
        assert_eq!(
            g,
            Formula::and(Formula::or(Formula::Var(c), v(1, 3)), v(1, 2))
        );
        // Substitution by a constant coincides with assign.
        assert_eq!(f.substitute(c, &Formula::True), f.assign(c, true));
        assert_eq!(f.substitute(c, &Formula::False), f.assign(c, false));
        // Idempotence of the c ↦ c ∨ r shape under repetition.
        let r = v(1, 3);
        let once = f.substitute(c, &Formula::or(Formula::Var(c), r.clone()));
        let twice = once.substitute(c, &Formula::or(Formula::Var(c), r));
        assert_eq!(once, twice);
    }

    #[test]
    fn vars_and_vars_of() {
        let f = Formula::and(v(0, 1), Formula::or(v(1, 2), v(0, 3)));
        assert_eq!(
            f.vars(),
            vec![CondVar::new(0, 1), CondVar::new(0, 3), CondVar::new(1, 2)]
        );
        assert_eq!(f.vars_of(QualifierId(1)), vec![CondVar::new(1, 2)]);
        assert_eq!(f.vars_of(QualifierId(2)), vec![]);
        assert!(f.contains(CondVar::new(1, 2)));
        assert!(!f.contains(CondVar::new(1, 9)));
    }

    #[test]
    fn size_measure() {
        assert_eq!(Formula::True.size(), 1);
        assert_eq!(v(0, 1).size(), 1);
        let f = Formula::and(v(0, 1), Formula::or(v(1, 2), v(0, 3)));
        assert_eq!(f.size(), 3);
        assert_eq!(f.node_count(), 5);
    }

    #[test]
    fn display_renders_paper_style() {
        let f = Formula::and(v(0, 1), Formula::or(v(1, 2), v(0, 3)));
        assert_eq!(f.to_string(), "c0.1 ∧ (c0.3 ∨ c1.2)");
        assert_eq!(Formula::True.to_string(), "true");
    }

    #[test]
    fn closure_disjunction_normalization_example() {
        // §III.4: "such a disjunction can be normalized by removing multiple
        // occurrences of the same conjuncts" — pushing f ∨ top where both
        // share variables keeps single references.
        let top = Formula::or(v(0, 1), v(0, 2));
        let incoming = v(0, 2);
        let pushed = Formula::or(incoming, top);
        assert_eq!(pushed, Formula::Or(vec![v(0, 1), v(0, 2)]));
        assert_eq!(pushed.size(), 2);
    }
}
