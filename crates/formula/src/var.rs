//! Condition variables and qualifier identities.

use std::fmt;

/// Identifies one qualifier `[E]` occurrence in the compiled query. Assigned
/// by the network compiler; the variable-filter transducers VF(q+)/VF(q−)
/// dispatch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QualifierId(pub u32);

impl fmt::Display for QualifierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A condition variable: one *instance* of a qualifier, minted by the
/// variable-creator transducer VC(q) for one activation.
///
/// In the paper's complete example (§III.10) these are written `co1`, `co2`:
/// the first and second instance of the qualifier `[b]`. Here they render as
/// `c1.1`, `c1.2` (qualifier id, then instance serial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondVar {
    /// The qualifier this instance belongs to.
    pub qualifier: QualifierId,
    /// Instance serial number, unique within an evaluation run.
    pub serial: u32,
}

impl CondVar {
    /// Create a variable (mostly used in tests; the engine uses
    /// [`VarFactory`]).
    pub fn new(qualifier: u32, serial: u32) -> Self {
        CondVar {
            qualifier: QualifierId(qualifier),
            serial,
        }
    }
}

impl fmt::Display for CondVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.{}", self.qualifier.0, self.serial)
    }
}

/// Mints fresh condition variables. One factory is shared by all
/// variable-creator transducers of a network run, so serials are unique
/// across qualifiers.
#[derive(Debug, Default, Clone)]
pub struct VarFactory {
    next: u32,
}

impl VarFactory {
    /// A factory starting at serial 1 (matching the paper's `co1`, `co2`
    /// numbering).
    pub fn new() -> Self {
        VarFactory { next: 1 }
    }

    /// Mint a fresh variable for `qualifier`.
    pub fn fresh(&mut self, qualifier: QualifierId) -> CondVar {
        let serial = self.next;
        self.next += 1;
        CondVar { qualifier, serial }
    }

    /// How many variables have been minted.
    pub fn minted(&self) -> u32 {
        self.next.saturating_sub(1)
    }

    /// Fast-forward the factory so that `minted` variables are considered
    /// already issued. Used when restoring a run from a snapshot: serials
    /// accumulate across documents, so a resumed run must not re-mint one.
    pub fn restore_minted(&mut self, minted: u32) {
        self.next = minted.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_mints_unique_serials() {
        let mut f = VarFactory::new();
        let a = f.fresh(QualifierId(0));
        let b = f.fresh(QualifierId(0));
        let c = f.fresh(QualifierId(1));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a.serial, 1);
        assert_eq!(b.serial, 2);
        assert_eq!(c.serial, 3);
        assert_eq!(f.minted(), 3);
    }

    #[test]
    fn restore_minted_continues_the_serial_sequence() {
        let mut f = VarFactory::new();
        f.fresh(QualifierId(0));
        f.fresh(QualifierId(0));
        let mut g = VarFactory::new();
        g.restore_minted(f.minted());
        assert_eq!(g.minted(), 2);
        assert_eq!(g.fresh(QualifierId(0)).serial, 3);
        // Saturation guard at the top of the range.
        let mut h = VarFactory::new();
        h.restore_minted(u32::MAX);
        assert_eq!(h.minted(), u32::MAX - 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CondVar::new(1, 2).to_string(), "c1.2");
        assert_eq!(QualifierId(7).to_string(), "q7");
    }

    #[test]
    fn ordering_is_by_qualifier_then_serial() {
        assert!(CondVar::new(0, 5) < CondVar::new(1, 1));
        assert!(CondVar::new(1, 1) < CondVar::new(1, 2));
    }
}
