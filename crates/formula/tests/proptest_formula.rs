//! Property-based tests for formula normalization: the smart constructors
//! must preserve boolean semantics, be idempotent, and keep the
//! single-reference-per-disjunct property the paper's complexity analysis
//! uses.

use proptest::prelude::*;
use spex_formula::{CondVar, Formula};

const NUM_VARS: u32 = 5;

/// An arbitrary (unnormalized) formula expression over variables 0..NUM_VARS,
/// built as a tree of operations that we replay through the smart
/// constructors.
#[derive(Debug, Clone)]
enum Expr {
    T,
    F,
    V(u32),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::T),
        Just(Expr::F),
        (0..NUM_VARS).prop_map(Expr::V),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn to_formula(e: &Expr) -> Formula {
    match e {
        Expr::T => Formula::True,
        Expr::F => Formula::False,
        Expr::V(i) => Formula::Var(CondVar::new(0, *i)),
        Expr::And(a, b) => Formula::and(to_formula(a), to_formula(b)),
        Expr::Or(a, b) => Formula::or(to_formula(a), to_formula(b)),
    }
}

/// Reference semantics directly on the expression tree.
fn eval_expr(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::T => true,
        Expr::F => false,
        Expr::V(i) => bits & (1 << i) != 0,
        Expr::And(a, b) => eval_expr(a, bits) && eval_expr(b, bits),
        Expr::Or(a, b) => eval_expr(a, bits) || eval_expr(b, bits),
    }
}

fn assignment(bits: u32) -> impl Fn(CondVar) -> bool {
    move |v: CondVar| bits & (1 << v.serial) != 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalization_preserves_semantics(e in expr_strategy()) {
        let f = to_formula(&e);
        for bits in 0..(1u32 << NUM_VARS) {
            prop_assert_eq!(f.eval(&assignment(bits)), eval_expr(&e, bits),
                "formula {} disagrees at bits {:05b}", f, bits);
        }
    }

    #[test]
    fn normalization_is_idempotent(e in expr_strategy()) {
        let f = to_formula(&e);
        // Rebuilding the normalized formula through the constructors changes
        // nothing.
        let rebuilt = match f.clone() {
            Formula::And(kids) => Formula::conj(kids),
            Formula::Or(kids) => Formula::disj(kids),
            other => other,
        };
        prop_assert_eq!(f, rebuilt);
    }

    #[test]
    fn assign_agrees_with_semantics(e in expr_strategy(), var in 0..NUM_VARS, value: bool) {
        let f = to_formula(&e);
        let g = f.assign(CondVar::new(0, var), value);
        for bits in 0..(1u32 << NUM_VARS) {
            let bits_with = if value { bits | (1 << var) } else { bits & !(1 << var) };
            prop_assert_eq!(g.eval(&assignment(bits)), f.eval(&assignment(bits_with)));
        }
        // The assigned variable is gone.
        prop_assert!(!g.contains(CondVar::new(0, var)));
    }

    #[test]
    fn fully_assigned_formula_is_constant(e in expr_strategy(), bits in 0..(1u32 << NUM_VARS)) {
        let mut f = to_formula(&e);
        for i in 0..NUM_VARS {
            f = f.assign(CondVar::new(0, i), bits & (1 << i) != 0);
        }
        prop_assert_eq!(f.value(), Some(eval_expr(&e, bits)));
    }

    #[test]
    fn dedup_bounds_top_level_width(e in expr_strategy()) {
        // After normalization, the children of any node are distinct and
        // each variable occurs at most once per conjunction/disjunction of
        // plain variables.
        fn check(f: &Formula) -> bool {
            match f {
                Formula::And(kids) | Formula::Or(kids) => {
                    let mut sorted = kids.clone();
                    sorted.dedup();
                    sorted.len() == kids.len() && kids.iter().all(check)
                }
                _ => true,
            }
        }
        prop_assert!(check(&to_formula(&e)));
    }

    #[test]
    fn size_bounded_by_variable_count_times_width(e in expr_strategy()) {
        let f = to_formula(&e);
        // With 5 variables and full normalization, a formula's size can not
        // exceed the number of distinct variable subsets actually present —
        // crude bound: 2^5 * 5. Mostly this guards against normalization
        // blow-ups.
        prop_assert!(f.size() <= 32 * 5, "oversized formula: {}", f);
    }
}
