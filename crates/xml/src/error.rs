//! Error and position types for the streaming parser.

use std::fmt;

/// A position in the input stream, tracked by the [`crate::Reader`] so parse
/// errors and events can be attributed to a byte offset / line / column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// Byte offset from the start of the input (0-based).
    pub offset: u64,
    /// Line number (1-based). Lines are separated by `\n`.
    pub line: u32,
    /// Column number in characters on the current line (1-based).
    pub column: u32,
}

impl Position {
    /// The position of the very first byte.
    pub fn start() -> Self {
        Position {
            offset: 0,
            line: 1,
            column: 1,
        }
    }

    /// Advance the position over one byte of input.
    pub fn advance(&mut self, byte: u8) {
        self.offset += 1;
        if byte == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    /// Advance the position over a whole slice at once — equivalent to
    /// calling [`Position::advance`] per byte, without the per-byte branch
    /// chain (the reader's chunked scanning path).
    pub fn advance_bulk(&mut self, bytes: &[u8]) {
        self.offset += bytes.len() as u64;
        // Branch-free count first (vectorizes); only scan for the last
        // newline's position in the rare chunk that contains one.
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count() as u32;
        if newlines == 0 {
            self.column += bytes.len() as u32;
        } else if let Some(i) = bytes.iter().rposition(|&b| b == b'\n') {
            self.line += newlines;
            self.column = (bytes.len() - i) as u32;
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} (byte {})", self.line, self.column, self.offset)
    }
}

/// Errors produced while reading an XML stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The underlying reader failed. The payload is the I/O error rendered to
    /// a string (so the error type stays `Clone` + `Eq`, which the transducer
    /// network relies on for deterministic tests).
    Io(String),
    /// A construct was syntactically malformed.
    Syntax {
        /// Human-readable description of the problem.
        message: String,
        /// Where the problem was detected.
        position: Position,
    },
    /// A close tag did not match the innermost open tag.
    MismatchedTag {
        /// The name that was expected (the innermost open element).
        expected: String,
        /// The name that was found in the close tag.
        found: String,
        /// Where the close tag started.
        position: Position,
    },
    /// The input ended while elements were still open.
    UnexpectedEof {
        /// The innermost element still open, if any.
        open_element: Option<String>,
        /// Where the input ended.
        position: Position,
    },
    /// Content was found after the document (root) element closed.
    TrailingContent {
        /// Where the trailing content started.
        position: Position,
    },
    /// The document contained no root element at all.
    EmptyDocument,
    /// An entity reference could not be decoded.
    BadEntity {
        /// The raw entity text, e.g. `&unknown;`.
        entity: String,
        /// Where the entity started.
        position: Position,
    },
}

/// Machine-readable classification of an [`XmlError`], independent of the
/// per-variant payload. The CLI maps these onto exit codes (I/O vs. syntax
/// class) and the fault-injection harness groups by them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XmlErrorKind {
    /// The underlying byte source failed.
    Io,
    /// A construct was syntactically malformed.
    Syntax,
    /// A close tag did not match the innermost open tag.
    MismatchedTag,
    /// The input ended prematurely.
    UnexpectedEof,
    /// Content after the root element.
    TrailingContent,
    /// No root element at all.
    EmptyDocument,
    /// An undecodable entity reference.
    BadEntity,
}

impl XmlErrorKind {
    /// Stable kebab-case name (used in JSON output and error tables).
    pub fn as_str(&self) -> &'static str {
        match self {
            XmlErrorKind::Io => "io",
            XmlErrorKind::Syntax => "syntax",
            XmlErrorKind::MismatchedTag => "mismatched-tag",
            XmlErrorKind::UnexpectedEof => "unexpected-eof",
            XmlErrorKind::TrailingContent => "trailing-content",
            XmlErrorKind::EmptyDocument => "empty-document",
            XmlErrorKind::BadEntity => "bad-entity",
        }
    }

    /// Is this a well-formedness (syntax-class) fault, as opposed to a
    /// transport failure?
    pub fn is_syntax_class(&self) -> bool {
        !matches!(self, XmlErrorKind::Io)
    }
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl XmlError {
    pub(crate) fn syntax(message: impl Into<String>, position: Position) -> Self {
        XmlError::Syntax {
            message: message.into(),
            position,
        }
    }

    /// The machine-readable classification of this error.
    pub fn kind(&self) -> XmlErrorKind {
        match self {
            XmlError::Io(_) => XmlErrorKind::Io,
            XmlError::Syntax { .. } => XmlErrorKind::Syntax,
            XmlError::MismatchedTag { .. } => XmlErrorKind::MismatchedTag,
            XmlError::UnexpectedEof { .. } => XmlErrorKind::UnexpectedEof,
            XmlError::TrailingContent { .. } => XmlErrorKind::TrailingContent,
            XmlError::EmptyDocument => XmlErrorKind::EmptyDocument,
            XmlError::BadEntity { .. } => XmlErrorKind::BadEntity,
        }
    }

    /// The position the error was detected at, when one is attached.
    pub fn position(&self) -> Option<Position> {
        match self {
            XmlError::Io(_) | XmlError::EmptyDocument => None,
            XmlError::Syntax { position, .. }
            | XmlError::MismatchedTag { position, .. }
            | XmlError::UnexpectedEof { position, .. }
            | XmlError::TrailingContent { position }
            | XmlError::BadEntity { position, .. } => Some(*position),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
            XmlError::Syntax { message, position } => {
                write!(f, "XML syntax error at {position}: {message}")
            }
            XmlError::MismatchedTag {
                expected,
                found,
                position,
            } => write!(
                f,
                "mismatched close tag at {position}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnexpectedEof {
                open_element,
                position,
            } => match open_element {
                Some(name) => {
                    write!(
                        f,
                        "unexpected end of input at {position}: <{name}> is still open"
                    )
                }
                None => write!(f, "unexpected end of input at {position}"),
            },
            XmlError::TrailingContent { position } => {
                write!(f, "content after the root element at {position}")
            }
            XmlError::EmptyDocument => write!(f, "document has no root element"),
            XmlError::BadEntity { entity, position } => {
                write!(f, "unknown or malformed entity `{entity}` at {position}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e.to_string())
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_advances_over_newlines() {
        let mut p = Position::start();
        for b in b"ab\ncd" {
            p.advance(*b);
        }
        assert_eq!(p.offset, 5);
        assert_eq!(p.line, 2);
        assert_eq!(p.column, 3);
    }

    #[test]
    fn display_formats_are_stable() {
        let p = Position {
            offset: 10,
            line: 2,
            column: 3,
        };
        assert_eq!(p.to_string(), "2:3 (byte 10)");
        let e = XmlError::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
            position: p,
        };
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("</b>"));
    }

    #[test]
    fn kinds_classify_every_variant() {
        let p = Position::start();
        let cases = [
            (XmlError::Io("x".into()), XmlErrorKind::Io),
            (XmlError::syntax("m", p), XmlErrorKind::Syntax),
            (
                XmlError::MismatchedTag {
                    expected: "a".into(),
                    found: "b".into(),
                    position: p,
                },
                XmlErrorKind::MismatchedTag,
            ),
            (
                XmlError::UnexpectedEof {
                    open_element: None,
                    position: p,
                },
                XmlErrorKind::UnexpectedEof,
            ),
            (
                XmlError::TrailingContent { position: p },
                XmlErrorKind::TrailingContent,
            ),
            (XmlError::EmptyDocument, XmlErrorKind::EmptyDocument),
            (
                XmlError::BadEntity {
                    entity: "&x;".into(),
                    position: p,
                },
                XmlErrorKind::BadEntity,
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind, "for {err}");
            assert_eq!(kind.is_syntax_class(), kind != XmlErrorKind::Io);
            if matches!(err, XmlError::Io(_) | XmlError::EmptyDocument) {
                assert!(err.position().is_none());
            } else {
                assert_eq!(err.position(), Some(p));
            }
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::other("boom");
        let e: XmlError = io.into();
        assert!(matches!(e, XmlError::Io(ref s) if s.contains("boom")));
    }
}
