//! Append-only event arena: the zero-copy backbone of the pipeline.
//!
//! A [`EventStore`] holds one run's document messages as compact
//! [`StoredEvent`] records (an interned label [`Symbol`] plus a payload
//! range) over a single shared byte buffer. Producers (the reader's
//! [`crate::reader::Reader::next_into`]) append events once; every consumer
//! downstream — transducer fan-out, candidate buffering, result
//! serialization — copies only `u32` [`EventId`] handles. Events are read
//! back as borrowing [`RawEvent`] views; an owned [`XmlEvent`] conversion
//! ([`RawEvent::to_owned_event`]) remains for the tree/DOM oracle and for
//! consumers that must outlive the arena (e.g. quarantined fragments).
//!
//! The arena is reset between result-free stretches of the stream (the
//! engine resets it whenever no undetermined candidate buffers any event),
//! so its high-water mark — exposed via [`EventStore::peak_bytes`] — tracks
//! exactly the paper's notion of "buffering only undetermined fragments"
//! (§VI), measured in bytes rather than event counts.

use std::fmt;

use crate::escape::{escape_attr, escape_text};
use crate::event::{Attribute, XmlEvent};
use crate::symbol::{Symbol, SymbolTable};

/// A handle to an event stored in an [`EventStore`].
///
/// Handles are dense indices in push order; they are `Copy` and 4 bytes,
/// which is the whole point: fan-out and candidate buffers move handles,
/// never event payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u32);

impl EventId {
    /// The index of this event in its store (push order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Discriminant of a [`StoredEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredKind {
    /// `<$>`.
    StartDocument,
    /// `</$>`.
    EndDocument,
    /// `<name …>`; the payload range indexes the attribute slab.
    Start,
    /// `</name>`.
    End,
    /// Character data; the payload range indexes the byte buffer.
    Text,
    /// A comment; the payload range indexes the byte buffer.
    Comment,
    /// A processing instruction; the payload range is one attribute record
    /// holding target and data.
    Pi,
}

/// A compact stored event: a kind, an interned label and a payload range.
///
/// For [`StoredKind::Text`]/[`StoredKind::Comment`] the range `lo..hi`
/// indexes the shared byte buffer; for [`StoredKind::Start`] and
/// [`StoredKind::Pi`] it indexes the attribute slab. 16 bytes total.
#[derive(Debug, Clone, Copy)]
pub struct StoredEvent {
    /// Event discriminant.
    pub kind: StoredKind,
    /// Interned element label (for `Start`/`End`), [`crate::symbol::DOC_SYMBOL`]
    /// for document boundaries, `DOC_SYMBOL` (unused) otherwise.
    pub sym: Symbol,
    lo: u32,
    hi: u32,
}

/// One attribute of a stored start element: two ranges into the shared
/// byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct StoredAttr {
    name_lo: u32,
    name_hi: u32,
    val_lo: u32,
    val_hi: u32,
}

/// The per-run append-only event arena. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct EventStore {
    symbols: SymbolTable,
    bytes: Vec<u8>,
    events: Vec<StoredEvent>,
    attrs: Vec<StoredAttr>,
    peak_bytes: usize,
}

fn expect_utf8(bytes: &[u8]) -> &str {
    // The arena only ever stores byte ranges copied from `&str` payloads,
    // so slices at stored boundaries are always valid UTF-8.
    std::str::from_utf8(bytes).expect("event arena ranges are always valid UTF-8")
}

impl EventStore {
    /// Create an empty store with the document label pre-interned.
    #[must_use]
    pub fn new() -> Self {
        EventStore {
            symbols: SymbolTable::new(),
            ..EventStore::default()
        }
    }

    /// The store's interning table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the interning table (for resolving query labels
    /// against the same symbol space the stream is parsed into).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Number of events currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the store empty (no events since the last reset)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Bytes currently held by the arena (payload bytes plus event and
    /// attribute records). Symbol-table memory is excluded: it is a
    /// document-lifetime dictionary, not per-event buffering.
    #[must_use]
    pub fn bytes_used(&self) -> usize {
        self.bytes.len()
            + self.events.len() * std::mem::size_of::<StoredEvent>()
            + self.attrs.len() * std::mem::size_of::<StoredAttr>()
    }

    /// High-water mark of [`Self::bytes_used`] over the store's lifetime,
    /// including across [`Self::reset`] calls.
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.max(self.bytes_used())
    }

    /// Seed the high-water mark from a restored snapshot, so a resumed
    /// run's reported peak covers the pre-checkpoint documents too. Never
    /// lowers the current peak.
    pub fn restore_peak(&mut self, peak: usize) {
        self.peak_bytes = self.peak_bytes.max(peak);
    }

    /// Forget all stored events, keeping interned symbols and allocated
    /// capacity. Outstanding [`EventId`]s are invalidated.
    pub fn reset(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.bytes_used());
        self.bytes.clear();
        self.events.clear();
        self.attrs.clear();
    }

    fn push_record(&mut self, kind: StoredKind, sym: Symbol, lo: usize, hi: usize) -> EventId {
        let id = u32::try_from(self.events.len()).unwrap_or(u32::MAX);
        self.events.push(StoredEvent {
            kind,
            sym,
            lo: u32::try_from(lo).unwrap_or(u32::MAX),
            hi: u32::try_from(hi).unwrap_or(u32::MAX),
        });
        EventId(id)
    }

    fn push_bytes(&mut self, s: &str) -> (usize, usize) {
        let lo = self.bytes.len();
        self.bytes.extend_from_slice(s.as_bytes());
        (lo, self.bytes.len())
    }

    fn push_attr(&mut self, name: &str, value: &str) {
        let (name_lo, name_hi) = self.push_bytes(name);
        let (val_lo, val_hi) = self.push_bytes(value);
        self.attrs.push(StoredAttr {
            name_lo: u32::try_from(name_lo).unwrap_or(u32::MAX),
            name_hi: u32::try_from(name_hi).unwrap_or(u32::MAX),
            val_lo: u32::try_from(val_lo).unwrap_or(u32::MAX),
            val_hi: u32::try_from(val_hi).unwrap_or(u32::MAX),
        });
    }

    /// Append a `<$>` start-document event.
    pub fn push_start_document(&mut self) -> EventId {
        self.push_record(StoredKind::StartDocument, crate::symbol::DOC_SYMBOL, 0, 0)
    }

    /// Append a `</$>` end-document event.
    pub fn push_end_document(&mut self) -> EventId {
        self.push_record(StoredKind::EndDocument, crate::symbol::DOC_SYMBOL, 0, 0)
    }

    /// Append a start-element event, interning its label and copying the
    /// attribute strings into the shared buffer.
    pub fn push_start<'n, A>(&mut self, name: &str, attributes: A) -> EventId
    where
        A: IntoIterator<Item = (&'n str, &'n str)>,
    {
        let sym = self.symbols.intern(name);
        let lo = self.attrs.len();
        for (n, v) in attributes {
            self.push_attr(n, v);
        }
        self.push_record(StoredKind::Start, sym, lo, self.attrs.len())
    }

    /// Append an end-element event.
    pub fn push_end(&mut self, name: &str) -> EventId {
        let sym = self.symbols.intern(name);
        self.push_record(StoredKind::End, sym, 0, 0)
    }

    /// Append a text event, copying the (already entity-decoded) payload.
    pub fn push_text(&mut self, text: &str) -> EventId {
        let (lo, hi) = self.push_bytes(text);
        self.push_record(StoredKind::Text, crate::symbol::DOC_SYMBOL, lo, hi)
    }

    /// Append a comment event.
    pub fn push_comment(&mut self, comment: &str) -> EventId {
        let (lo, hi) = self.push_bytes(comment);
        self.push_record(StoredKind::Comment, crate::symbol::DOC_SYMBOL, lo, hi)
    }

    /// Append a processing-instruction event.
    pub fn push_pi(&mut self, target: &str, data: &str) -> EventId {
        let lo = self.attrs.len();
        self.push_attr(target, data);
        self.push_record(
            StoredKind::Pi,
            crate::symbol::DOC_SYMBOL,
            lo,
            self.attrs.len(),
        )
    }

    /// Append an owned event by copying its payload into the arena.
    pub fn push_owned(&mut self, event: &XmlEvent) -> EventId {
        match event {
            XmlEvent::StartDocument => self.push_start_document(),
            XmlEvent::EndDocument => self.push_end_document(),
            XmlEvent::StartElement { name, attributes } => self.push_start(
                name,
                attributes
                    .iter()
                    .map(|a| (a.name.as_str(), a.value.as_str())),
            ),
            XmlEvent::EndElement { name } => self.push_end(name),
            XmlEvent::Text(t) => self.push_text(t),
            XmlEvent::Comment(c) => self.push_comment(c),
            XmlEvent::ProcessingInstruction { target, data } => self.push_pi(target, data),
        }
    }

    /// Copy every live event out as owned [`XmlEvent`]s in push order.
    ///
    /// This is the serialization surface for checkpointing: at a quiescent
    /// document boundary the arena is empty and this returns nothing, but
    /// the snapshot format still carries the section so a future
    /// mid-document checkpoint needs no format change.
    #[must_use]
    pub fn export_arena(&self) -> Vec<XmlEvent> {
        (0..self.events.len())
            .map(|i| {
                self.get(EventId(u32::try_from(i).unwrap_or(u32::MAX)))
                    .to_owned_event()
            })
            .collect()
    }

    /// Re-append previously exported events (see [`Self::export_arena`]) in
    /// order, re-interning labels. Handles are assigned densely from the
    /// current length, so restoring into an empty store reproduces the
    /// exported [`EventId`]s exactly.
    pub fn import_arena(&mut self, events: &[XmlEvent]) {
        for ev in events {
            self.push_owned(ev);
        }
    }

    /// The compact record behind `id`.
    ///
    /// # Panics
    /// Panics if `id` is not live in this store (e.g. after [`Self::reset`]).
    #[must_use]
    pub fn stored(&self, id: EventId) -> StoredEvent {
        self.events[id.index()]
    }

    /// A borrowing view of the event behind `id`.
    ///
    /// # Panics
    /// Panics if `id` is not live in this store (e.g. after [`Self::reset`]).
    #[must_use]
    pub fn get(&self, id: EventId) -> RawEvent<'_> {
        let ev = self.events[id.index()];
        let byte_range = |lo: u32, hi: u32| expect_utf8(&self.bytes[lo as usize..hi as usize]);
        match ev.kind {
            StoredKind::StartDocument => RawEvent::StartDocument,
            StoredKind::EndDocument => RawEvent::EndDocument,
            StoredKind::Start => RawEvent::StartElement {
                name: self.symbols.name(ev.sym),
                attributes: AttrsView::Stored {
                    attrs: &self.attrs[ev.lo as usize..ev.hi as usize],
                    bytes: &self.bytes,
                },
            },
            StoredKind::End => RawEvent::EndElement {
                name: self.symbols.name(ev.sym),
            },
            StoredKind::Text => RawEvent::Text(byte_range(ev.lo, ev.hi)),
            StoredKind::Comment => RawEvent::Comment(byte_range(ev.lo, ev.hi)),
            StoredKind::Pi => {
                let a = self.attrs[ev.lo as usize];
                RawEvent::ProcessingInstruction {
                    target: expect_utf8(&self.bytes[a.name_lo as usize..a.name_hi as usize]),
                    data: expect_utf8(&self.bytes[a.val_lo as usize..a.val_hi as usize]),
                }
            }
        }
    }
}

/// A borrowed view of a document message: the zero-copy counterpart of
/// [`XmlEvent`], with names and payloads as string slices into either the
/// event arena or an owned event.
#[derive(Debug, Clone, Copy)]
pub enum RawEvent<'buf> {
    /// The start-document message `<$>`.
    StartDocument,
    /// The end-document message `</$>`.
    EndDocument,
    /// `<name attr="…">`.
    StartElement {
        /// Element name.
        name: &'buf str,
        /// Attributes in document order.
        attributes: AttrsView<'buf>,
    },
    /// `</name>`.
    EndElement {
        /// Element name.
        name: &'buf str,
    },
    /// Character data (entity references already decoded).
    Text(&'buf str),
    /// `<!-- … -->`.
    Comment(&'buf str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: &'buf str,
        /// Raw data after the target, possibly empty.
        data: &'buf str,
    },
}

impl<'buf> RawEvent<'buf> {
    /// Borrow a view from an owned event (used to replay buffered owned
    /// fragments through sinks that consume views).
    #[must_use]
    pub fn from_event(event: &'buf XmlEvent) -> Self {
        match event {
            XmlEvent::StartDocument => RawEvent::StartDocument,
            XmlEvent::EndDocument => RawEvent::EndDocument,
            XmlEvent::StartElement { name, attributes } => RawEvent::StartElement {
                name,
                attributes: AttrsView::Owned(attributes),
            },
            XmlEvent::EndElement { name } => RawEvent::EndElement { name },
            XmlEvent::Text(t) => RawEvent::Text(t),
            XmlEvent::Comment(c) => RawEvent::Comment(c),
            XmlEvent::ProcessingInstruction { target, data } => {
                RawEvent::ProcessingInstruction { target, data }
            }
        }
    }

    /// Copy this view into an owned [`XmlEvent`] (the conversion kept for
    /// the tree/DOM oracle and for buffers that outlive the arena).
    #[must_use]
    pub fn to_owned_event(&self) -> XmlEvent {
        match *self {
            RawEvent::StartDocument => XmlEvent::StartDocument,
            RawEvent::EndDocument => XmlEvent::EndDocument,
            RawEvent::StartElement { name, attributes } => XmlEvent::StartElement {
                name: name.to_string(),
                attributes: attributes
                    .iter()
                    .map(|(n, v)| Attribute::new(n, v))
                    .collect(),
            },
            RawEvent::EndElement { name } => XmlEvent::EndElement {
                name: name.to_string(),
            },
            RawEvent::Text(t) => XmlEvent::Text(t.to_string()),
            RawEvent::Comment(c) => XmlEvent::Comment(c.to_string()),
            RawEvent::ProcessingInstruction { target, data } => XmlEvent::ProcessingInstruction {
                target: target.to_string(),
                data: data.to_string(),
            },
        }
    }

    /// The element name if this is a start or end element event.
    #[must_use]
    pub fn element_name(&self) -> Option<&'buf str> {
        match self {
            RawEvent::StartElement { name, .. } | RawEvent::EndElement { name } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for RawEvent<'_> {
    /// Same compact paper-figure rendering as [`XmlEvent`]'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawEvent::StartDocument => write!(f, "<$>"),
            RawEvent::EndDocument => write!(f, "</$>"),
            RawEvent::StartElement { name, attributes } => {
                write!(f, "<{name}")?;
                for (n, v) in attributes.iter() {
                    write!(f, " {}=\"{}\"", n, escape_attr(v))?;
                }
                write!(f, ">")
            }
            RawEvent::EndElement { name } => write!(f, "</{name}>"),
            RawEvent::Text(t) => write!(f, "{}", escape_text(t)),
            RawEvent::Comment(c) => write!(f, "<!--{c}-->"),
            RawEvent::ProcessingInstruction { target, data } => {
                if data.is_empty() {
                    write!(f, "<?{target}?>")
                } else {
                    write!(f, "<?{target} {data}?>")
                }
            }
        }
    }
}

/// Borrowed attribute list of a [`RawEvent::StartElement`].
#[derive(Debug, Clone, Copy)]
pub enum AttrsView<'buf> {
    /// Attributes stored in an [`EventStore`] slab.
    Stored {
        /// Attribute records.
        attrs: &'buf [StoredAttr],
        /// The store's shared byte buffer.
        bytes: &'buf [u8],
    },
    /// Attributes of an owned [`XmlEvent`].
    Owned(&'buf [Attribute]),
}

impl<'buf> AttrsView<'buf> {
    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AttrsView::Stored { attrs, .. } => attrs.len(),
            AttrsView::Owned(attrs) => attrs.len(),
        }
    }

    /// Is the attribute list empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate `(name, value)` pairs in document order.
    pub fn iter(&self) -> impl Iterator<Item = (&'buf str, &'buf str)> + '_ {
        let view = *self;
        (0..self.len()).map(move |i| match view {
            AttrsView::Stored { attrs, bytes } => {
                let a = attrs[i];
                (
                    expect_utf8(&bytes[a.name_lo as usize..a.name_hi as usize]),
                    expect_utf8(&bytes[a.val_lo as usize..a.val_hi as usize]),
                )
            }
            AttrsView::Owned(attrs) => (attrs[i].name.as_str(), attrs[i].value.as_str()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_event_kind() {
        let events = [
            XmlEvent::StartDocument,
            XmlEvent::StartElement {
                name: "a".into(),
                attributes: vec![Attribute::new("x", "1"), Attribute::new("y", "<&>")],
            },
            XmlEvent::Text("t & u".into()),
            XmlEvent::Comment(" note ".into()),
            XmlEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "d".into(),
            },
            XmlEvent::close("a"),
            XmlEvent::EndDocument,
        ];
        let mut store = EventStore::new();
        let ids: Vec<EventId> = events.iter().map(|e| store.push_owned(e)).collect();
        for (ev, id) in events.iter().zip(&ids) {
            assert_eq!(&store.get(*id).to_owned_event(), ev);
            assert_eq!(store.get(*id).to_string(), ev.to_string());
        }
    }

    #[test]
    fn views_borrow_without_copying() {
        let mut store = EventStore::new();
        let id = store.push_start("item", [("k", "v")]);
        match store.get(id) {
            RawEvent::StartElement { name, attributes } => {
                assert_eq!(name, "item");
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes.iter().next(), Some(("k", "v")));
            }
            other => panic!("unexpected view {other:?}"),
        }
    }

    #[test]
    fn interning_is_shared_across_events() {
        let mut store = EventStore::new();
        let a = store.push_start("a", []);
        let b = store.push_end("a");
        assert_eq!(store.stored(a).sym, store.stored(b).sym);
        assert_eq!(store.symbols().len(), 2); // "$" and "a"
    }

    #[test]
    fn reset_keeps_symbols_and_records_peak() {
        let mut store = EventStore::new();
        store.push_text("some payload worth counting");
        let used = store.bytes_used();
        assert!(used > 0);
        store.reset();
        assert!(store.is_empty());
        assert_eq!(store.symbols().len(), 1);
        assert!(store.peak_bytes() >= used);
        assert_eq!(store.bytes_used(), 0);
    }

    #[test]
    fn arena_export_import_round_trips() {
        let mut store = EventStore::new();
        store.push_start_document();
        store.push_start("a", [("k", "v")]);
        store.push_text("payload");
        store.push_pi("pi", "d");
        store.push_end("a");
        store.push_end_document();
        let exported = store.export_arena();
        assert_eq!(exported.len(), 6);
        let mut fresh = EventStore::new();
        fresh.import_arena(&exported);
        assert_eq!(fresh.export_arena(), exported);
        assert_eq!(fresh.len(), store.len());
        // Empty stores export nothing.
        assert!(EventStore::new().export_arena().is_empty());
    }

    #[test]
    fn from_event_view_matches_stored_view() {
        let ev = XmlEvent::StartElement {
            name: "n".into(),
            attributes: vec![Attribute::new("a", "b")],
        };
        let mut store = EventStore::new();
        let id = store.push_owned(&ev);
        assert_eq!(
            RawEvent::from_event(&ev).to_string(),
            store.get(id).to_string()
        );
        assert_eq!(RawEvent::from_event(&ev).to_owned_event(), ev);
    }
}
