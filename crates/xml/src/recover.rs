//! Recovery policies and structured fault reports.
//!
//! SPEX's setting (§I, §II of the paper) is evaluation over streams from
//! producers the consumer does not control: a mismatched tag, an undecodable
//! entity or a truncated connection must not abort the whole run. The
//! [`crate::Reader`] can therefore run under a [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Strict`] — today's behavior: the first fault is an
//!   [`crate::XmlError`] and the stream ends.
//! * [`RecoveryPolicy::Repair`] — locally-recoverable faults are fixed in
//!   place (mismatched closes auto-close the intervening elements, stray
//!   closes are dropped, undecodable entities become U+FFFD replacement text,
//!   truncation synthesizes closes for everything still open) and every fix
//!   is reported as a [`Fault`].
//! * [`RecoveryPolicy::SkipSubtree`] — like `Repair`, but a fault `Repair`
//!   cannot fix (arbitrary syntax garbage inside an element) discards the
//!   smallest enclosing element: the reader synthesizes its close, then
//!   resynchronizes at the element's real close tag, keeping sibling
//!   subtrees evaluable.
//!
//! Each [`Fault`] carries a *damage interval* `[event_from, event_to]` in
//! emitted-event indices (engine ticks). The interval is a conservative
//! over-approximation of the events whose tree position may differ from the
//! clean stream; the engine's quarantine pass
//! (`spex-core`'s `evaluate_recovering`) withholds any result fragment whose
//! lifetime overlaps a damage interval, which is what makes the recovered
//! result set a *subset* of the clean-stream oracle set.

use crate::error::Position;
use std::fmt;

/// How the [`crate::Reader`] responds to malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Fail on the first fault (the historical behavior).
    #[default]
    Strict,
    /// Fix locally-recoverable faults in place and report them.
    Repair,
    /// Like `Repair`, but skip the smallest enclosing element around faults
    /// that cannot be fixed in place.
    SkipSubtree,
}

impl RecoveryPolicy {
    /// Stable lowercase name (used by the CLI and in JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryPolicy::Strict => "strict",
            RecoveryPolicy::Repair => "repair",
            RecoveryPolicy::SkipSubtree => "skip-subtree",
        }
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "strict" => Ok(RecoveryPolicy::Strict),
            "repair" => Ok(RecoveryPolicy::Repair),
            "skip-subtree" | "skip" => Ok(RecoveryPolicy::SkipSubtree),
            other => Err(format!(
                "unknown recovery policy `{other}` (expected strict, repair or skip-subtree)"
            )),
        }
    }
}

/// The class of a fault found in the input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A close tag named an element that is not the innermost open one.
    MismatchedClose,
    /// A close tag named an element that is not open at all.
    StrayClose,
    /// An entity reference (or character reference) could not be decoded.
    BadEntity,
    /// Arbitrary syntax garbage (malformed tag, comment, CDATA, PI, …).
    Garbage,
    /// Content after the root element closed.
    TrailingContent,
    /// The input ended (EOF or I/O failure) while elements were open.
    Truncated,
}

impl FaultKind {
    /// Stable kebab-case name (used in JSON output and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::MismatchedClose => "mismatched-close",
            FaultKind::StrayClose => "stray-close",
            FaultKind::BadEntity => "bad-entity",
            FaultKind::Garbage => "garbage",
            FaultKind::TrailingContent => "trailing-content",
            FaultKind::Truncated => "truncated",
        }
    }

    /// All kinds, for tabulation.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::MismatchedClose,
        FaultKind::StrayClose,
        FaultKind::BadEntity,
        FaultKind::Garbage,
        FaultKind::TrailingContent,
        FaultKind::Truncated,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the reader did about a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Close events were synthesized for elements left open (mismatched
    /// close repair).
    AutoClosed,
    /// The offending construct was discarded (stray close, trailing
    /// content, garbage resynchronization).
    Dropped,
    /// Undecodable entities were replaced with U+FFFD replacement text.
    Replaced,
    /// The smallest enclosing element was closed early and its remaining
    /// content skipped.
    SkippedSubtree,
    /// Close events were synthesized for the whole open-element stack at
    /// end of input.
    SynthesizedCloses,
}

impl FaultAction {
    /// Stable kebab-case name (used in JSON output and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultAction::AutoClosed => "auto-closed",
            FaultAction::Dropped => "dropped",
            FaultAction::Replaced => "replaced",
            FaultAction::SkippedSubtree => "skipped-subtree",
            FaultAction::SynthesizedCloses => "synthesized-closes",
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One repaired (or contained) input fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Byte/line/column where the fault was detected.
    pub position: Position,
    /// What the reader did about it.
    pub action: FaultAction,
    /// Human-readable detail (element names, counts, …).
    pub detail: String,
    /// First emitted-event index (engine tick) whose tree position may be
    /// affected by this fault.
    pub event_from: u64,
    /// Last affected emitted-event index; `u64::MAX` means "to the end of
    /// the stream" (truncation).
    pub event_to: u64,
}

impl Fault {
    /// Does the half-open candidate lifetime `[start, end]` overlap this
    /// fault's damage interval?
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        start <= self.event_to && self.event_from <= end
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({}): {}",
            self.kind, self.position, self.action, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips_through_str() {
        for p in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Repair,
            RecoveryPolicy::SkipSubtree,
        ] {
            assert_eq!(p.as_str().parse::<RecoveryPolicy>().unwrap(), p);
        }
        assert_eq!(
            "skip".parse::<RecoveryPolicy>().unwrap(),
            RecoveryPolicy::SkipSubtree
        );
        assert!("bogus".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn damage_interval_overlap() {
        let f = Fault {
            kind: FaultKind::MismatchedClose,
            position: Position::start(),
            action: FaultAction::AutoClosed,
            detail: String::new(),
            event_from: 5,
            event_to: 9,
        };
        assert!(f.overlaps(9, 20));
        assert!(f.overlaps(0, 5));
        assert!(f.overlaps(6, 7));
        assert!(!f.overlaps(0, 4));
        assert!(!f.overlaps(10, 20));
    }

    #[test]
    fn truncation_interval_reaches_end_of_stream() {
        let f = Fault {
            kind: FaultKind::Truncated,
            position: Position::start(),
            action: FaultAction::SynthesizedCloses,
            detail: String::new(),
            event_from: 42,
            event_to: u64::MAX,
        };
        assert!(f.overlaps(100, 100));
        assert!(!f.overlaps(0, 41));
    }

    #[test]
    fn kind_names_are_stable() {
        for k in FaultKind::ALL {
            assert!(!k.as_str().is_empty());
            assert_eq!(k.as_str(), k.to_string());
        }
    }
}
