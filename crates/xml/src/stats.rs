//! Stream statistics.
//!
//! The paper's evaluation section characterizes every dataset by its size,
//! number of elements, and maximum depth (e.g. *MONDIAL: 1.2 MB, 24,184
//! elements, maximum depth 5*). [`StreamStats`] computes exactly those
//! numbers — streaming, in one pass — so the synthetic workload generators
//! can be tuned and verified against the paper's figures.

use crate::event::XmlEvent;
use std::collections::BTreeMap;

/// One-pass statistics over an XML event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total number of events seen (including `StartDocument`/`EndDocument`).
    pub events: usize,
    /// Number of element nodes (start-element events).
    pub elements: usize,
    /// Number of text events.
    pub text_nodes: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Maximum element nesting depth (the paper's *d*; the root element has
    /// depth 1).
    pub max_depth: usize,
    /// Element-name histogram in lexicographic order.
    pub labels: BTreeMap<String, usize>,
    current_depth: usize,
}

impl StreamStats {
    /// Create empty statistics.
    pub fn new() -> Self {
        StreamStats::default()
    }

    /// Feed one event.
    pub fn observe(&mut self, event: &XmlEvent) {
        self.events += 1;
        match event {
            XmlEvent::StartElement { name, .. } => {
                self.elements += 1;
                self.current_depth += 1;
                self.max_depth = self.max_depth.max(self.current_depth);
                *self.labels.entry(name.clone()).or_insert(0) += 1;
            }
            XmlEvent::EndElement { .. } => {
                self.current_depth = self.current_depth.saturating_sub(1);
            }
            XmlEvent::Text(t) => {
                self.text_nodes += 1;
                self.text_bytes += t.len();
            }
            _ => {}
        }
    }

    /// Compute statistics for a full event sequence.
    pub fn of_events<'a>(events: impl IntoIterator<Item = &'a XmlEvent>) -> Self {
        let mut s = StreamStats::new();
        for e in events {
            s.observe(e);
        }
        s
    }

    /// Compute statistics by streaming a string through the parser.
    pub fn of_str(xml: &str) -> crate::error::Result<Self> {
        let mut s = StreamStats::new();
        for ev in crate::Reader::from_str(xml) {
            s.observe(&ev?);
        }
        Ok(s)
    }

    /// Number of distinct element labels.
    pub fn distinct_labels(&self) -> usize {
        self.labels.len()
    }

    /// A compact one-line summary in the style of the paper's figures:
    /// `nr. elems.: 24,184, maximum depth: 5`.
    pub fn summary(&self) -> String {
        format!(
            "nr. elems.: {}, maximum depth: {}",
            group_thousands(self.elements),
            self.max_depth
        )
    }
}

/// Format an integer with `,` thousands separators, as in the paper's
/// figures (e.g. `24,184`).
pub fn group_thousands(n: usize) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let chars: Vec<char> = digits.chars().collect();
    for (i, c) in chars.iter().enumerate() {
        if i > 0 && (chars.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_stats() {
        let s = StreamStats::of_str("<a><a><c/></a><b/><c/></a>").unwrap();
        assert_eq!(s.elements, 5);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.labels.get("a"), Some(&2));
        assert_eq!(s.labels.get("b"), Some(&1));
        assert_eq!(s.labels.get("c"), Some(&2));
        assert_eq!(s.distinct_labels(), 3);
        assert_eq!(s.events, 12);
    }

    #[test]
    fn text_statistics() {
        let s = StreamStats::of_str("<a>hello<b>world</b></a>").unwrap();
        assert_eq!(s.text_nodes, 2);
        assert_eq!(s.text_bytes, 10);
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(24184), "24,184");
        assert_eq!(group_thousands(13233278), "13,233,278");
    }

    #[test]
    fn summary_format_matches_paper() {
        let s = StreamStats::of_str("<a><b/></a>").unwrap();
        assert_eq!(s.summary(), "nr. elems.: 2, maximum depth: 2");
    }

    #[test]
    fn depth_never_underflows() {
        let mut s = StreamStats::new();
        s.observe(&XmlEvent::close("a"));
        s.observe(&XmlEvent::close("a"));
        assert_eq!(s.max_depth, 0);
    }
}
