//! Streaming namespace resolution.
//!
//! The SPEX paper sets namespaces aside ("the necessary extensions are
//! technical, but not difficult", §II.1), and the engine matches element
//! names verbatim — `rdf:RDF` is simply the label `rdf:RDF`. For downstream
//! users who need real namespace semantics, [`NamespaceTracker`] implements
//! the technical part: it observes the event stream and resolves any
//! prefixed name to its `(namespace URI, local name)` pair according to the
//! `xmlns`/`xmlns:p` attributes in scope, with constant memory in the stream
//! length (the binding stack is bounded by the document depth).
//!
//! ```
//! use spex_xml::{namespaces::NamespaceTracker, Reader, XmlEvent};
//!
//! let xml = r#"<r xmlns="urn:d" xmlns:a="urn:a"><a:x/><y/></r>"#;
//! let mut ns = NamespaceTracker::new();
//! let mut seen = Vec::new();
//! for ev in Reader::from_str(xml) {
//!     let ev = ev.unwrap();
//!     ns.observe(&ev);
//!     if let XmlEvent::StartElement { name, .. } = &ev {
//!         let (uri, local) = ns.resolve_element(name);
//!         seen.push((uri.map(str::to_string), local.to_string()));
//!     }
//!     ns.observe_end(&ev);
//! }
//! assert_eq!(seen[0], (Some("urn:d".into()), "r".into()));
//! assert_eq!(seen[1], (Some("urn:a".into()), "x".into()));
//! assert_eq!(seen[2], (Some("urn:d".into()), "y".into()));
//! ```

use crate::event::XmlEvent;

/// One prefix binding, together with the depth at which it was declared.
#[derive(Debug, Clone)]
struct Binding {
    /// Prefix (`""` for the default namespace).
    prefix: String,
    /// Namespace URI (`""` undeclares).
    uri: String,
    /// Element depth of the declaring element.
    depth: usize,
}

/// Tracks in-scope namespace bindings over an event stream. See the
/// [module documentation](self).
#[derive(Debug, Default)]
pub struct NamespaceTracker {
    bindings: Vec<Binding>,
    depth: usize,
}

impl NamespaceTracker {
    /// An empty tracker (only the implicit `xml` prefix is pre-bound).
    pub fn new() -> Self {
        NamespaceTracker {
            bindings: vec![Binding {
                prefix: "xml".into(),
                uri: "http://www.w3.org/XML/1998/namespace".into(),
                depth: 0,
            }],
            depth: 0,
        }
    }

    /// Observe an event *before* resolving names occurring in it (start
    /// elements push their own declarations into scope first — they apply to
    /// the element itself).
    pub fn observe(&mut self, event: &XmlEvent) {
        if let XmlEvent::StartElement { attributes, .. } = event {
            self.depth += 1;
            for a in attributes {
                if a.name == "xmlns" {
                    self.bindings.push(Binding {
                        prefix: String::new(),
                        uri: a.value.clone(),
                        depth: self.depth,
                    });
                } else if let Some(p) = a.name.strip_prefix("xmlns:") {
                    self.bindings.push(Binding {
                        prefix: p.to_string(),
                        uri: a.value.clone(),
                        depth: self.depth,
                    });
                }
            }
        }
    }

    /// Observe an event *after* resolving names in it (end elements pop
    /// their declarations only after the close tag itself resolved).
    pub fn observe_end(&mut self, event: &XmlEvent) {
        if matches!(event, XmlEvent::EndElement { .. }) {
            let d = self.depth;
            self.bindings.retain(|b| b.depth < d);
            self.depth = self.depth.saturating_sub(1);
        }
    }

    /// Current element depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The URI bound to `prefix` (`""` for the default namespace), if any.
    /// An empty-string binding (undeclaration) reports `None`.
    pub fn uri_for(&self, prefix: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|b| b.prefix == prefix)
            .map(|b| b.uri.as_str())
            .filter(|u| !u.is_empty())
    }

    /// Resolve an *element* name to `(namespace URI, local name)`.
    /// Unprefixed element names take the default namespace.
    pub fn resolve_element<'a: 'b, 'b>(&'a self, name: &'b str) -> (Option<&'b str>, &'b str) {
        match name.split_once(':') {
            Some((p, local)) => (self.uri_for(p), local),
            None => (self.uri_for(""), name),
        }
    }

    /// Resolve an *attribute* name. Per the XML Namespaces spec, unprefixed
    /// attributes are in *no* namespace (the default namespace does not
    /// apply).
    pub fn resolve_attribute<'a: 'b, 'b>(&'a self, name: &'b str) -> (Option<&'b str>, &'b str) {
        match name.split_once(':') {
            Some((p, local)) => (self.uri_for(p), local),
            None => (None, name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_events;

    fn resolve_all(xml: &str) -> Vec<(Option<String>, String)> {
        let mut ns = NamespaceTracker::new();
        let mut out = Vec::new();
        for ev in parse_events(xml).unwrap() {
            ns.observe(&ev);
            if let XmlEvent::StartElement { name, .. } = &ev {
                let (uri, local) = ns.resolve_element(name);
                out.push((uri.map(str::to_string), local.to_string()));
            }
            ns.observe_end(&ev);
        }
        out
    }

    #[test]
    fn default_namespace_scoping() {
        let r = resolve_all(r#"<a xmlns="urn:one"><b/><c xmlns="urn:two"><d/></c><e/></a>"#);
        assert_eq!(r[0], (Some("urn:one".into()), "a".into()));
        assert_eq!(r[1], (Some("urn:one".into()), "b".into()));
        assert_eq!(r[2], (Some("urn:two".into()), "c".into()));
        assert_eq!(r[3], (Some("urn:two".into()), "d".into()));
        assert_eq!(r[4], (Some("urn:one".into()), "e".into()));
    }

    #[test]
    fn prefixed_names_and_shadowing() {
        let r = resolve_all(r#"<r xmlns:p="urn:a"><p:x/><m xmlns:p="urn:b"><p:x/></m><p:x/></r>"#);
        assert_eq!(r[1], (Some("urn:a".into()), "x".into()));
        assert_eq!(r[3], (Some("urn:b".into()), "x".into()));
        assert_eq!(r[4], (Some("urn:a".into()), "x".into()));
    }

    #[test]
    fn undeclaring_the_default_namespace() {
        let r = resolve_all(r#"<a xmlns="urn:one"><b xmlns=""><c/></b></a>"#);
        assert_eq!(r[1], (None, "b".into()));
        assert_eq!(r[2], (None, "c".into()));
    }

    #[test]
    fn unbound_prefix_resolves_to_no_namespace() {
        let r = resolve_all("<a><q:b/></a>");
        assert_eq!(r[1], (None, "b".into()));
    }

    #[test]
    fn xml_prefix_is_prebound() {
        let ns = NamespaceTracker::new();
        assert_eq!(
            ns.uri_for("xml"),
            Some("http://www.w3.org/XML/1998/namespace")
        );
    }

    #[test]
    fn attributes_ignore_default_namespace() {
        let xml = r#"<a xmlns="urn:d" xmlns:p="urn:p"><b x="1" p:y="2"/></a>"#;
        let mut ns = NamespaceTracker::new();
        let mut checked = false;
        for ev in parse_events(xml).unwrap() {
            ns.observe(&ev);
            if let XmlEvent::StartElement { name, attributes } = &ev {
                if name == "b" {
                    assert_eq!(ns.resolve_attribute(&attributes[0].name), (None, "x"));
                    assert_eq!(
                        ns.resolve_attribute(&attributes[1].name),
                        (Some("urn:p"), "y")
                    );
                    checked = true;
                }
            }
            ns.observe_end(&ev);
        }
        assert!(checked);
    }

    #[test]
    fn bindings_bounded_by_depth() {
        // Constant memory: bindings never outlive their element.
        let xml = r#"<a xmlns:p="u"><b xmlns:q="v"/><c xmlns:r="w"/></a>"#;
        let mut ns = NamespaceTracker::new();
        let mut max = 0;
        for ev in parse_events(xml).unwrap() {
            ns.observe(&ev);
            max = max.max(ns.bindings.len());
            ns.observe_end(&ev);
        }
        assert!(max <= 3); // xml + p + at most one sibling binding
        assert_eq!(ns.bindings.len(), 1); // only the xml prefix survives
    }
}
