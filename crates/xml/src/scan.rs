//! Branch-light byte-search primitives: a vendored, std-only
//! `memchr`/`memchr2`/`memchr3` built on SWAR word tricks.
//!
//! The streaming reader ([`crate::reader::Reader`]) and the server's
//! event-horizon scanner both spend most of their time answering one
//! question: *where is the next interesting delimiter* (`<`, `>`, `&`, a
//! quote) in a run of uninteresting bytes. A byte-at-a-time state machine
//! answers it one compare-and-branch per byte; the functions here answer it
//! eight bytes at a time with plain `u64` arithmetic — SWAR ("SIMD within a
//! register"), the technique the `memchr` crate uses as its portable
//! fallback. The workspace's zero-dependency stance holds: this is ~100
//! lines of `std`-only safe code, no external crate and no `unsafe`
//! (unaligned loads go through `u64::from_le_bytes` on 8-byte chunks, which
//! compiles to a single load on little-endian targets).
//!
//! The trick, per 8-byte word `w` and needle byte `n`:
//!
//! ```text
//! x     = w XOR broadcast(n)          // matching lanes become 0x00
//! hits  = (x - 0x0101…01) & !x & 0x8080…80
//! ```
//!
//! A lane of `hits` has its high bit set iff the corresponding byte of `x`
//! was zero — i.e. the input byte equalled the needle. (`x - 0x01…` borrows
//! into the high bit only for a `0x00` lane or via carry-out of a lower
//! lane; the `& !x` masks the carry false-positives for lanes ≥ 0x80.
//! A borrow *out of* a zero lane can clear the next lane's hit bit, so the
//! first hit is exact but later bits are unreliable — which is fine, every
//! caller only wants the first.) `trailing_zeros() / 8` of the surviving
//! mask is the index of the first match in the word.
//!
//! `memchr2`/`memchr3` OR two or three such hit masks together before the
//! zero test, so scanning for `<`-or-`&` costs the same as scanning for one
//! byte. DESIGN.md §18 describes how the reader layers a structural fast
//! path on top of these primitives; `crates/server/src/scan.rs` reuses them
//! for the reactor's event-horizon lookahead.

/// Lowest bit of every lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// Highest bit of every lane.
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast one byte into all eight lanes of a word.
#[inline]
const fn broadcast(b: u8) -> u64 {
    LO * b as u64
}

/// Per-lane high bit set where the lane of `x` is zero (first match exact;
/// see the module docs for why later lanes may be masked by borrows).
#[inline]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the first byte equal to `needle` in `haystack`.
///
/// Semantically identical to `haystack.iter().position(|&b| b == needle)`,
/// but scans eight bytes per step.
#[inline]
#[must_use]
pub fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    let n = broadcast(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        // Safe unaligned load: an 8-byte chunk always converts.
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let hits = zero_lanes(w ^ n);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Index of the first byte equal to `n1` or `n2` in `haystack`.
#[inline]
#[must_use]
pub fn memchr2(n1: u8, n2: u8, haystack: &[u8]) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let hits = zero_lanes(w ^ b1) | zero_lanes(w ^ b2);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|i| offset + i)
}

/// Index of the first byte equal to `n1`, `n2` or `n3` in `haystack`.
#[inline]
#[must_use]
pub fn memchr3(n1: u8, n2: u8, n3: u8, haystack: &[u8]) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let b3 = broadcast(n3);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let hits = zero_lanes(w ^ b1) | zero_lanes(w ^ b2) | zero_lanes(w ^ b3);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|i| offset + i)
}

/// Index of the first byte equal to `n1`, `n2` or `n3` **or** with its high
/// bit set (non-ASCII), whichever comes first.
///
/// This is the reader fast path's workhorse: one sweep answers both "where
/// does this construct end" and "is everything before that point plain
/// ASCII free of entities/markup", where separate `memchr` +
/// [`first_non_ascii`] calls would walk the same bytes twice. The needles
/// must themselves be ASCII (they are delimiters like `<` `>` `&`), so the
/// two hit masks cannot disagree about a lane.
#[inline]
#[must_use]
pub fn memchr3_or_non_ascii(n1: u8, n2: u8, n3: u8, haystack: &[u8]) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let b3 = broadcast(n3);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let hits = zero_lanes(w ^ b1) | zero_lanes(w ^ b2) | zero_lanes(w ^ b3) | (w & HI);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3 || b >= 0x80)
        .map(|i| offset + i)
}

/// Index of the first byte with its high bit set (a non-ASCII byte), or
/// `None` when the slice is pure ASCII. Used by the reader's fast path to
/// decide between the verbatim-copy route (ASCII) and a UTF-8 validation.
#[inline]
#[must_use]
pub fn first_non_ascii(haystack: &[u8]) -> Option<usize> {
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let hits = w & HI;
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b >= 0x80)
        .map(|i| offset + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: the naive scalar scan.
    fn naive(pred: impl Fn(u8) -> bool, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| pred(b))
    }

    #[test]
    fn matches_naive_on_every_offset_and_length() {
        // Every (length, match-position) pair up to a few words, so head,
        // SWAR body and tail are all exercised, including borrow-chain
        // cases (0x00 lanes adjacent to matches).
        for len in 0..40 {
            for pos in 0..=len {
                let mut hay = vec![b'x'; len];
                if pos < len {
                    hay[pos] = b'<';
                }
                assert_eq!(memchr(b'<', &hay), naive(|b| b == b'<', &hay), "{hay:?}");
            }
        }
    }

    #[test]
    fn finds_first_of_several() {
        let hay = b"aaaa<bb<cc&dd";
        assert_eq!(memchr(b'<', hay), Some(4));
        assert_eq!(memchr2(b'<', b'&', hay), Some(4));
        assert_eq!(memchr2(b'&', b'<', hay), Some(4));
        assert_eq!(memchr3(b'&', b'>', b'<', hay), Some(4));
        assert_eq!(memchr(b'&', hay), Some(10));
        assert_eq!(memchr(b'z', hay), None);
        assert_eq!(memchr3(b'z', b'y', b'w', hay), None);
    }

    #[test]
    fn handles_high_bytes_and_zero_bytes() {
        // 0x80/0x00 lanes are where the borrow trick can go wrong; check
        // against the oracle with adversarial content.
        let hay: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(0x85)).collect();
        for needle in [0x00u8, 0x01, 0x7f, 0x80, 0x85, 0xff, b'<'] {
            assert_eq!(
                memchr(needle, &hay),
                naive(|b| b == needle, &hay),
                "needle {needle:#x}"
            );
        }
        let zeros = [0u8, 0, 0, b'<', 0, 0, 0, 0, 0];
        assert_eq!(memchr(b'<', &zeros), Some(3));
        assert_eq!(memchr(0, &zeros), Some(0));
    }

    #[test]
    fn exhaustive_pairs_against_oracle() {
        let hay: Vec<u8> = b"ab<cd>ef&gh'ij\"kl ab<cd>ef&gh'ij\"kl".to_vec();
        let set = [b'<', b'>', b'&', b'\'', b'"', b'z'];
        for &a in &set {
            for &b in &set {
                assert_eq!(memchr2(a, b, &hay), naive(|x| x == a || x == b, &hay));
                for &c in &set {
                    assert_eq!(
                        memchr3(a, b, c, &hay),
                        naive(|x| x == a || x == b || x == c, &hay)
                    );
                }
            }
        }
    }

    #[test]
    fn combined_scan_against_oracle() {
        let set = [b'<', b'>', b'&', b'z'];
        // Adversarial content: delimiters, high bytes, zero bytes, and every
        // alignment of the first interesting byte.
        let base: Vec<u8> = b"ab<cd>ef&gh qrstuv".to_vec();
        for len in 0..base.len() {
            for high_pos in 0..=len {
                let mut hay = base[..len].to_vec();
                if high_pos < len {
                    hay[high_pos] = 0xc3;
                }
                for &a in &set {
                    for &b in &set {
                        assert_eq!(
                            memchr3_or_non_ascii(a, b, b'&', &hay),
                            naive(|x| x == a || x == b || x == b'&' || x >= 0x80, &hay),
                            "needles {a} {b} & on {hay:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(memchr3_or_non_ascii(b'<', b'>', b'&', b"plain text"), None);
    }

    #[test]
    fn non_ascii_detection() {
        assert_eq!(first_non_ascii(b"pure ascii only here"), None);
        assert_eq!(first_non_ascii("grüße".as_bytes()), Some(2));
        assert_eq!(first_non_ascii(&[0x7f, 0x80]), Some(1));
        assert_eq!(first_non_ascii(&[]), None);
        // Long ASCII run with one high byte in the tail.
        let mut v = vec![b'a'; 29];
        v.push(0xc3);
        assert_eq!(first_non_ascii(&v), Some(29));
    }
}
