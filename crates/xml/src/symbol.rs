//! Label interning: dense [`Symbol`] handles for element names.
//!
//! The transducer network routes document messages by element label
//! (paper §IV.2). Comparing interned `u32` symbols instead of strings keeps
//! the per-message work constant-time and allocation-free, which is why the
//! table lives here in the stream layer: labels are interned once at parse
//! time (see [`crate::store::EventStore`]) and every layer above only ever
//! sees dense handles.
//!
//! Each distinct name is stored exactly once behind an [`Rc<str>`] that is
//! shared between the dense lookup vector and the reverse map, so interning
//! a new name costs a single allocation.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// FNV-1a, fixed-key. Element names are short (a handful of bytes) and the
/// intern lookup runs twice per element event, where the default SipHash's
/// per-call setup dominates. HashDoS resistance is irrelevant here: the
/// table is bounded by the document vocabulary and truncated back to the
/// query baseline between documents. The hash does not affect symbol
/// numbering (ids are assigned in first-seen order), so both engines and
/// all prior snapshots agree on the dense handles.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// A dense interned label handle. Symbols are assigned in first-seen order
/// starting from zero, so they can index plain vectors.
pub type Symbol = u32;

/// The reserved symbol for the virtual document root label `$`
/// (paper §II.1 wraps every stream in `<$>` … `</$>`).
pub const DOC_SYMBOL: Symbol = 0;

/// An interning table mapping element names to dense [`Symbol`]s and back.
///
/// The table only grows; symbols stay valid for the lifetime of the table.
/// A fresh table always contains the document label `$` as [`DOC_SYMBOL`].
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<Rc<str>>,
    map: HashMap<Rc<str>, Symbol, BuildHasherDefault<Fnv1a>>,
}

impl SymbolTable {
    /// Create a table with the document symbol pre-interned.
    #[must_use]
    pub fn new() -> Self {
        let mut t = Self {
            names: Vec::new(),
            map: HashMap::default(),
        };
        let s = t.intern("$");
        debug_assert_eq!(s, DOC_SYMBOL);
        t
    }

    /// Intern `name`, returning its dense symbol. Existing names are looked
    /// up without allocating; a new name costs one `Rc<str>` allocation
    /// shared by the vector and the map.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = u32::try_from(self.names.len()).unwrap_or(u32::MAX);
        let rc: Rc<str> = Rc::from(name);
        self.names.push(Rc::clone(&rc));
        self.map.insert(rc, s);
        s
    }

    /// The name interned as `s`.
    ///
    /// # Panics
    /// Panics if `s` was not produced by this table.
    #[must_use]
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s as usize]
    }

    /// Number of interned names (including the pre-interned `$`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Forget every symbol at index `len` or above, shrinking the table back
    /// to a recorded baseline. Symbols below `len` stay valid; symbols at or
    /// above it are invalidated and their dense indices will be reassigned to
    /// the next names interned. A `len` beyond the current size is a no-op.
    ///
    /// This is the session-reuse hook: a long-lived evaluator records
    /// `len()` after resolving its query labels and truncates back to that
    /// baseline between documents, so a stream of documents with disjoint
    /// vocabularies cannot grow the table without bound.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.names.len() {
            return;
        }
        for name in self.names.drain(len..) {
            self.map.remove(&name);
        }
    }

    /// A fresh table already contains `$`, so it is never empty. Tables
    /// constructed via `Default` (no `$`) report empty until first intern.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_interns_densely() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("$"), DOC_SYMBOL);
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.intern("a"), a);
        assert_eq!((a, b), (1, 2));
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(DOC_SYMBOL), "$");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn truncate_forgets_and_reassigns() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let baseline = t.len();
        t.intern("b");
        t.intern("c");
        t.truncate(baseline);
        assert_eq!(t.len(), baseline);
        assert_eq!(t.intern("a"), a);
        // Reassigned densely after the baseline.
        assert_eq!(t.intern("z"), baseline as Symbol);
        // Truncating past the end is a no-op.
        t.truncate(100);
        assert_eq!(t.name(a), "a");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let mut t = SymbolTable::new();
        let a = t.intern("article");
        for _ in 0..100 {
            assert_eq!(t.intern("article"), a);
        }
        assert_eq!(t.len(), 2);
    }
}
