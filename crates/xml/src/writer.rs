//! Serialization of event streams back to XML text.
//!
//! [`Writer`] is the inverse of [`crate::Reader`]: it consumes
//! [`XmlEvent`]s and produces well-formed XML text, escaping character data
//! and attribute values. It is used by the SPEX output transducer to emit
//! result fragments and by the workload generators to stream synthetic
//! documents to disk without materializing them.

use crate::error::{Result, XmlError};
use crate::escape::{escape_attr, escape_text};
use crate::event::XmlEvent;
use crate::store::RawEvent;
use std::io::Write;

/// Configuration for a [`Writer`].
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Emit an `<?xml version="1.0"?>` declaration at `StartDocument`.
    pub declaration: bool,
    /// Pretty-print with this many spaces per nesting level (`None` = compact).
    pub indent: Option<usize>,
}

/// An event-stream serializer. See the [module documentation](self).
pub struct Writer<W: Write> {
    out: W,
    options: WriteOptions,
    depth: usize,
    /// Whether the current line already has content (pretty-printing).
    midline: bool,
    /// Stack telling whether the current element has element/text children so
    /// far (controls indentation of the close tag).
    had_children: Vec<bool>,
}

impl<W: Write> Writer<W> {
    /// Create a compact writer.
    pub fn new(out: W) -> Self {
        Writer::with_options(out, WriteOptions::default())
    }

    /// Create a writer with explicit options.
    pub fn with_options(out: W, options: WriteOptions) -> Self {
        Writer {
            out,
            options,
            depth: 0,
            midline: false,
            had_children: Vec::new(),
        }
    }

    /// Write one owned event (delegates to [`Writer::write_view`]).
    pub fn write(&mut self, event: &XmlEvent) -> Result<()> {
        self.write_view(&RawEvent::from_event(event))
    }

    /// Write one borrowed event view. This is the zero-copy sink side of the
    /// pipeline: result fragments are serialized straight from the event
    /// arena without materializing owned [`XmlEvent`]s.
    pub fn write_view(&mut self, event: &RawEvent<'_>) -> Result<()> {
        match event {
            RawEvent::StartDocument => {
                if self.options.declaration {
                    self.out
                        .write_all(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
                    self.newline()?;
                }
            }
            RawEvent::EndDocument => {
                self.out.flush()?;
            }
            RawEvent::StartElement { name, attributes } => {
                self.mark_child();
                self.indent()?;
                write!(self.out, "<{name}")?;
                for (n, v) in attributes.iter() {
                    write!(self.out, " {}=\"{}\"", n, escape_attr(v))?;
                }
                write!(self.out, ">")?;
                self.depth += 1;
                self.had_children.push(false);
                self.midline = true;
            }
            RawEvent::EndElement { name } => {
                if self.depth == 0 {
                    return Err(XmlError::syntax(
                        format!("close event </{name}> without open element"),
                        Default::default(),
                    ));
                }
                self.depth -= 1;
                let had = self.had_children.pop().unwrap_or(false);
                if had {
                    self.indent()?;
                }
                write!(self.out, "</{name}>")?;
                self.midline = true;
            }
            RawEvent::Text(t) => {
                // Text stays attached to the current line to preserve content.
                write!(self.out, "{}", escape_text(t))?;
                self.midline = true;
            }
            RawEvent::Comment(c) => {
                self.mark_child();
                self.indent()?;
                write!(self.out, "<!--{c}-->")?;
                self.midline = true;
            }
            RawEvent::ProcessingInstruction { target, data } => {
                self.mark_child();
                self.indent()?;
                if data.is_empty() {
                    write!(self.out, "<?{target}?>")?;
                } else {
                    write!(self.out, "<?{target} {data}?>")?;
                }
                self.midline = true;
            }
        }
        Ok(())
    }

    /// Write a whole sequence of events.
    pub fn write_all<'a>(&mut self, events: impl IntoIterator<Item = &'a XmlEvent>) -> Result<()> {
        for e in events {
            self.write(e)?;
        }
        Ok(())
    }

    /// Finish writing and recover the underlying sink.
    pub fn into_inner(mut self) -> Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// Flush the underlying sink without consuming the writer.
    pub fn flush_inner(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }

    fn mark_child(&mut self) {
        if let Some(top) = self.had_children.last_mut() {
            *top = true;
        }
    }

    fn indent(&mut self) -> Result<()> {
        if let Some(n) = self.options.indent {
            if self.midline {
                self.out.write_all(b"\n")?;
            }
            for _ in 0..self.depth * n {
                self.out.write_all(b" ")?;
            }
            self.midline = false;
        }
        Ok(())
    }

    fn newline(&mut self) -> Result<()> {
        if self.options.indent.is_some() {
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// Serialize a sequence of events to a `String` (compact form).
pub fn events_to_string<'a>(events: impl IntoIterator<Item = &'a XmlEvent>) -> String {
    let mut w = Writer::new(Vec::new());
    w.write_all(events).expect("writing to a Vec cannot fail");
    String::from_utf8(w.into_inner().expect("flush to Vec cannot fail"))
        .expect("writer output is valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attribute;
    use crate::reader::parse_events;

    #[test]
    fn compact_roundtrip() {
        let xml = r#"<a x="1"><b>t &amp; u</b><c/></a>"#;
        let events = parse_events(xml).unwrap();
        let out = events_to_string(&events);
        // Self-closing tags are expanded, everything else matches.
        assert_eq!(out, r#"<a x="1"><b>t &amp; u</b><c></c></a>"#);
        // Reparsing gives the same events.
        assert_eq!(parse_events(&out).unwrap(), events);
    }

    #[test]
    fn declaration_written_when_requested() {
        let mut w = Writer::with_options(
            Vec::new(),
            WriteOptions {
                declaration: true,
                indent: None,
            },
        );
        w.write(&XmlEvent::StartDocument).unwrap();
        w.write(&XmlEvent::open("a")).unwrap();
        w.write(&XmlEvent::close("a")).unwrap();
        w.write(&XmlEvent::EndDocument).unwrap();
        let s = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert!(s.starts_with("<?xml"));
        assert!(s.ends_with("<a></a>"));
    }

    #[test]
    fn pretty_printing_indents_elements() {
        let events = parse_events("<a><b><c/></b></a>").unwrap();
        let mut w = Writer::with_options(
            Vec::new(),
            WriteOptions {
                declaration: false,
                indent: Some(2),
            },
        );
        w.write_all(&events).unwrap();
        let s = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(s, "<a>\n  <b>\n    <c></c>\n  </b>\n</a>");
        // Pretty output reparses to the same element structure (ignoring
        // whitespace text events).
        let evs2: Vec<_> = parse_events(&s)
            .unwrap()
            .into_iter()
            .filter(|e| !matches!(e, XmlEvent::Text(t) if t.trim().is_empty()))
            .collect();
        assert_eq!(evs2, events);
    }

    #[test]
    fn attribute_escaping() {
        let ev = XmlEvent::StartElement {
            name: "a".into(),
            attributes: vec![Attribute::new("t", "x\"<&>y")],
        };
        let s = events_to_string([&ev]);
        assert_eq!(s, r#"<a t="x&quot;&lt;&amp;&gt;y">"#);
    }

    #[test]
    fn unbalanced_close_is_an_error() {
        let mut w = Writer::new(Vec::new());
        assert!(w.write(&XmlEvent::close("a")).is_err());
    }
}
