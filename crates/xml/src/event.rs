//! SAX-like document messages.
//!
//! [`XmlEvent`] corresponds to the *document messages* of the SPEX paper
//! (Definition 2): `<a>` / `</a>` messages plus the start-document message
//! `<$>` and the end-document message `</$>`. Text, comments and processing
//! instructions — omitted from the paper "for reasons of conciseness" — are
//! carried as additional events; the transducer network forwards them
//! untouched and they only matter when result fragments are serialized.

use std::fmt;

/// An attribute on a start-element event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute {
    /// Attribute name (prefix included verbatim; namespaces are not resolved).
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

impl Attribute {
    /// Create an attribute.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A document message in an XML stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum XmlEvent {
    /// The start-document message `<$>`.
    StartDocument,
    /// The end-document message `</$>`.
    EndDocument,
    /// `<name attr="…">` — start of an element.
    StartElement {
        /// Element name (tag label).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` — end of an element.
    EndElement {
        /// Element name, matching the corresponding start event.
        name: String,
    },
    /// Character data between tags, entity references decoded. Consecutive
    /// raw text and CDATA sections are merged into a single event.
    Text(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<?target data?>` (the XML declaration itself is *not* reported).
    ProcessingInstruction {
        /// PI target (e.g. `xml-stylesheet`).
        target: String,
        /// Raw data after the target, possibly empty.
        data: String,
    },
}

impl XmlEvent {
    /// Convenience constructor for a start element without attributes.
    pub fn open(name: impl Into<String>) -> Self {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Convenience constructor for an end element.
    pub fn close(name: impl Into<String>) -> Self {
        XmlEvent::EndElement { name: name.into() }
    }

    /// Convenience constructor for a text event.
    pub fn text(content: impl Into<String>) -> Self {
        XmlEvent::Text(content.into())
    }

    /// The element name if this is a start or end element event.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            XmlEvent::StartElement { name, .. } | XmlEvent::EndElement { name } => Some(name),
            _ => None,
        }
    }

    /// Does this event increase the tree depth (open an element)?
    ///
    /// `StartDocument` counts as opening: the paper treats `<$>` as a document
    /// message like any other, and the transducer depth stacks track it.
    pub fn opens(&self) -> bool {
        matches!(
            self,
            XmlEvent::StartElement { .. } | XmlEvent::StartDocument
        )
    }

    /// Does this event decrease the tree depth (close an element)?
    pub fn closes(&self) -> bool {
        matches!(self, XmlEvent::EndElement { .. } | XmlEvent::EndDocument)
    }
}

impl fmt::Display for XmlEvent {
    /// The compact stream rendering used in the paper's figures:
    /// `<$> <a> </a> </$>`. Attributes and text are rendered inline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlEvent::StartDocument => write!(f, "<$>"),
            XmlEvent::EndDocument => write!(f, "</$>"),
            XmlEvent::StartElement { name, attributes } => {
                write!(f, "<{name}")?;
                for a in attributes {
                    write!(
                        f,
                        " {}=\"{}\"",
                        a.name,
                        crate::escape::escape_attr(&a.value)
                    )?;
                }
                write!(f, ">")
            }
            XmlEvent::EndElement { name } => write!(f, "</{name}>"),
            XmlEvent::Text(t) => write!(f, "{}", crate::escape::escape_text(t)),
            XmlEvent::Comment(c) => write!(f, "<!--{c}-->"),
            XmlEvent::ProcessingInstruction { target, data } => {
                if data.is_empty() {
                    write!(f, "<?{target}?>")
                } else {
                    write!(f, "<?{target} {data}?>")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(XmlEvent::StartDocument.to_string(), "<$>");
        assert_eq!(XmlEvent::EndDocument.to_string(), "</$>");
        assert_eq!(XmlEvent::open("a").to_string(), "<a>");
        assert_eq!(XmlEvent::close("a").to_string(), "</a>");
    }

    #[test]
    fn display_escapes_attributes_and_text() {
        let e = XmlEvent::StartElement {
            name: "a".into(),
            attributes: vec![Attribute::new("x", "1\"2")],
        };
        assert_eq!(e.to_string(), r#"<a x="1&quot;2">"#);
        assert_eq!(XmlEvent::text("a<b").to_string(), "a&lt;b");
    }

    #[test]
    fn opens_and_closes_classification() {
        assert!(XmlEvent::StartDocument.opens());
        assert!(XmlEvent::open("x").opens());
        assert!(XmlEvent::EndDocument.closes());
        assert!(XmlEvent::close("x").closes());
        assert!(!XmlEvent::text("t").opens());
        assert!(!XmlEvent::text("t").closes());
        assert!(!XmlEvent::Comment("c".into()).opens());
    }

    #[test]
    fn element_name_access() {
        assert_eq!(XmlEvent::open("a").element_name(), Some("a"));
        assert_eq!(XmlEvent::close("b").element_name(), Some("b"));
        assert_eq!(XmlEvent::text("t").element_name(), None);
        assert_eq!(XmlEvent::StartDocument.element_name(), None);
    }
}
