//! Escaping of character data and decoding of entity references.
//!
//! The five predefined XML entities (`&lt; &gt; &amp; &apos; &quot;`) and
//! numeric character references (`&#10;`, `&#x1F600;`) are supported.

use std::borrow::Cow;

/// Escape text content: `&`, `<` and `>` are replaced by entities.
///
/// Returns a borrowed string when no escaping is necessary, avoiding an
/// allocation on the (dominant) happy path.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escape an attribute value for use inside double quotes: additionally
/// escapes `"`.
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, true)
}

fn escape_with(text: &str, attr: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '&' | '<' | '>') || (attr && c == '"');
    if !text.chars().any(needs) {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Decode entity references in raw character data.
///
/// Returns `None` if an entity is unknown or malformed; the caller attaches
/// position information. An unterminated `&...` sequence is rejected the same
/// way, as required for well-formed XML.
pub fn unescape(raw: &str) -> Option<Cow<'_, str>> {
    if !raw.contains('&') {
        return Some(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail.find(';')?;
        let entity = &tail[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
                out.push(char::from_u32(code)?);
            }
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    Some(Cow::Owned(out))
}

/// Decode entity references *lossily*: every unknown, malformed or
/// unterminated entity is replaced by U+FFFD (the Unicode replacement
/// character) and the rest of the data is preserved. Returns the decoded
/// text plus the number of replacements made (0 means [`unescape`] would
/// have succeeded identically).
///
/// Used by the reader's repair policies (see [`crate::recover`]): text is
/// never worth aborting a stream over, because the query language is purely
/// structural.
pub fn unescape_lossy(raw: &str) -> (String, usize) {
    let mut out = String::with_capacity(raw.len());
    let mut replaced = 0usize;
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        // An entity reference ends at the first `;`; a `&` or `<` before it
        // (or no `;` at all) means the reference is unterminated.
        let semi = match tail[1..].find([';', '&', '<']) {
            Some(i) if tail.as_bytes()[1 + i] == b';' => 1 + i,
            _ => {
                out.push('\u{FFFD}');
                replaced += 1;
                rest = &tail[1..];
                continue;
            }
        };
        match unescape(&tail[..semi + 1]) {
            Some(decoded) => out.push_str(&decoded),
            None => {
                out.push('\u{FFFD}');
                replaced += 1;
            }
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    (out, replaced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_escapes_markup() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        // Text escaping leaves double quotes alone.
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(
            unescape("&lt;a&gt; &amp; &apos;x&apos; &quot;y&quot;").unwrap(),
            "<a> & 'x' \"y\""
        );
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_bad_entities() {
        assert!(unescape("&nope;").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape(
            "&#
;"
        )
        .is_none());
        assert!(unescape("& unterminated").is_none());
        // Surrogate code point is not a char.
        assert!(unescape("&#xD800;").is_none());
    }

    #[test]
    fn unescape_lossy_replaces_and_counts() {
        assert_eq!(unescape_lossy("a &lt; b"), ("a < b".to_string(), 0));
        assert_eq!(unescape_lossy("x&nope;y"), ("x\u{FFFD}y".to_string(), 1));
        assert_eq!(
            unescape_lossy("&bad;&#xZZ;&amp;"),
            ("\u{FFFD}\u{FFFD}&".to_string(), 2)
        );
        // Unterminated reference: the `&` itself is replaced, the tail kept.
        assert_eq!(
            unescape_lossy("5 & 6 are &lt; 7"),
            ("5 \u{FFFD} 6 are < 7".to_string(), 1)
        );
        assert_eq!(unescape_lossy("&"), ("\u{FFFD}".to_string(), 1));
        assert_eq!(unescape_lossy("&;"), ("\u{FFFD}".to_string(), 1));
        // A `&` running into the next `&` only eats itself.
        assert_eq!(unescape_lossy("&&amp;"), ("\u{FFFD}&".to_string(), 1));
    }

    #[test]
    fn unescape_lossy_agrees_with_unescape_on_clean_input() {
        for s in ["", "plain", "&lt;&gt;&amp;&apos;&quot;", "&#65;&#x42;"] {
            let (lossy, n) = unescape_lossy(s);
            assert_eq!(n, 0, "on {s:?}");
            assert_eq!(lossy, unescape(s).unwrap(), "on {s:?}");
        }
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let samples = ["", "plain", "a<b>c&d\"e'f", "&&&&", "<<<>>>"];
        for s in samples {
            assert_eq!(
                unescape(&escape_attr(s)).unwrap(),
                s,
                "attr roundtrip of {s:?}"
            );
            assert_eq!(
                unescape(&escape_text(s)).unwrap(),
                s,
                "text roundtrip of {s:?}"
            );
        }
    }
}
