//! Escaping of character data and decoding of entity references.
//!
//! The five predefined XML entities (`&lt; &gt; &amp; &apos; &quot;`) and
//! numeric character references (`&#10;`, `&#x1F600;`) are supported.

use std::borrow::Cow;

/// Escape text content: `&`, `<` and `>` are replaced by entities.
///
/// Returns a borrowed string when no escaping is necessary, avoiding an
/// allocation on the (dominant) happy path.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escape an attribute value for use inside double quotes: additionally
/// escapes `"`.
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, true)
}

fn escape_with(text: &str, attr: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '&' | '<' | '>') || (attr && c == '"');
    if !text.chars().any(needs) {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Decode entity references in raw character data.
///
/// Returns `None` if an entity is unknown or malformed; the caller attaches
/// position information. An unterminated `&...` sequence is rejected the same
/// way, as required for well-formed XML.
pub fn unescape(raw: &str) -> Option<Cow<'_, str>> {
    if !raw.contains('&') {
        return Some(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail.find(';')?;
        let entity = &tail[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
                out.push(char::from_u32(code)?);
            }
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    Some(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_escapes_markup() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        // Text escaping leaves double quotes alone.
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(
            unescape("&lt;a&gt; &amp; &apos;x&apos; &quot;y&quot;").unwrap(),
            "<a> & 'x' \"y\""
        );
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_bad_entities() {
        assert!(unescape("&nope;").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape(
            "&#
;"
        )
        .is_none());
        assert!(unescape("& unterminated").is_none());
        // Surrogate code point is not a char.
        assert!(unescape("&#xD800;").is_none());
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let samples = ["", "plain", "a<b>c&d\"e'f", "&&&&", "<<<>>>"];
        for s in samples {
            assert_eq!(
                unescape(&escape_attr(s)).unwrap(),
                s,
                "attr roundtrip of {s:?}"
            );
            assert_eq!(
                unescape(&escape_text(s)).unwrap(),
                s,
                "text roundtrip of {s:?}"
            );
        }
    }
}
