//! An arena-allocated in-memory document tree.
//!
//! The tree corresponds to the *XML tree* representation of Fig. 1 in the
//! paper (after the XPath data model). It is the substrate for the in-memory
//! baseline processors (the Saxon/Fxgrep stand-ins of the evaluation section)
//! and the test oracle for the streamed SPEX engine.
//!
//! Nodes live in a single `Vec` arena and are addressed by [`NodeId`];
//! children are stored as contiguous index vectors, so document order is the
//! order of a depth-first traversal and `NodeId`s are comparable: a node that
//! starts earlier in the stream has a smaller id (ids are assigned in
//! document order by the builder).

use crate::error::{Result, XmlError};
use crate::event::{Attribute, XmlEvent};
use std::io::Read;

/// Index of a node in a [`Document`] arena. The root has id 0. Ids are
/// assigned in document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document root (the virtual `$` node).
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document root (`$` in the paper's stream notation).
    Root,
    /// An element node.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
    /// A processing-instruction node.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An in-memory XML document. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Parse a complete document from a string.
    pub fn parse_str(xml: &str) -> Result<Document> {
        Self::from_events(crate::reader::parse_events(xml)?)
    }

    /// Parse a complete document from a byte source.
    pub fn parse_reader<R: Read>(input: R) -> Result<Document> {
        let mut builder = TreeBuilder::new();
        for ev in crate::Reader::new(input) {
            builder.push(ev?)?;
        }
        builder.finish()
    }

    /// Build a document from an event sequence (must start with
    /// `StartDocument` and end with `EndDocument`).
    pub fn from_events(events: impl IntoIterator<Item = XmlEvent>) -> Result<Document> {
        let mut builder = TreeBuilder::new();
        for ev in events {
            builder.push(ev)?;
        }
        builder.finish()
    }

    /// Number of nodes, including the virtual root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A document always contains at least the virtual root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The payload of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The element name of `id`, if it is an element.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id` in document order (all node kinds).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Child *elements* of `id` in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|c| matches!(self.kind(*c), NodeKind::Element { .. }))
    }

    /// Depth of `id`: the root has depth 0, its element children depth 1, …
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum element depth in the document (the paper's *d*).
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        for idx in 0..self.nodes.len() {
            let id = NodeId(idx as u32);
            if matches!(self.kind(id), NodeKind::Element { .. }) {
                max = max.max(self.depth(id));
            }
        }
        max
    }

    /// Total number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }

    /// All element node ids in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|id| matches!(self.kind(*id), NodeKind::Element { .. }))
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        if let NodeKind::Text(t) = self.kind(id) {
            out.push_str(t);
        }
        for c in self.children(id) {
            self.collect_text(*c, out);
        }
    }

    /// Stream the subtree rooted at `id` as events (open/close/text/…);
    /// streaming the root yields the full document stream including
    /// `StartDocument` / `EndDocument` (`<$>` / `</$>`).
    pub fn subtree_events(&self, id: NodeId) -> Vec<XmlEvent> {
        let mut out = Vec::new();
        self.push_events(id, &mut out);
        out
    }

    fn push_events(&self, id: NodeId, out: &mut Vec<XmlEvent>) {
        match self.kind(id) {
            NodeKind::Root => {
                out.push(XmlEvent::StartDocument);
                for c in self.children(id) {
                    self.push_events(*c, out);
                }
                out.push(XmlEvent::EndDocument);
            }
            NodeKind::Element { name, attributes } => {
                out.push(XmlEvent::StartElement {
                    name: name.clone(),
                    attributes: attributes.clone(),
                });
                for c in self.children(id) {
                    self.push_events(*c, out);
                }
                out.push(XmlEvent::EndElement { name: name.clone() });
            }
            NodeKind::Text(t) => out.push(XmlEvent::Text(t.clone())),
            NodeKind::Comment(c) => out.push(XmlEvent::Comment(c.clone())),
            NodeKind::ProcessingInstruction { target, data } => {
                out.push(XmlEvent::ProcessingInstruction {
                    target: target.clone(),
                    data: data.clone(),
                })
            }
        }
    }

    /// Serialize the subtree rooted at `id` as compact XML text.
    pub fn subtree_string(&self, id: NodeId) -> String {
        crate::writer::events_to_string(&self.subtree_events(id))
    }

    /// Serialize the whole document as compact XML text (without the
    /// `<$>`/`</$>` wrappers, i.e. real XML).
    pub fn to_xml(&self) -> String {
        let events = self.subtree_events(NodeId::ROOT);
        crate::writer::events_to_string(
            events
                .iter()
                .filter(|e| !matches!(e, XmlEvent::StartDocument | XmlEvent::EndDocument)),
        )
    }
}

/// Incremental builder turning an event stream into a [`Document`].
#[derive(Debug)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
    started: bool,
    finished: bool,
}

impl TreeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            stack: Vec::new(),
            started: false,
            finished: false,
        }
    }

    /// Feed one event.
    pub fn push(&mut self, event: XmlEvent) -> Result<()> {
        match event {
            XmlEvent::StartDocument => {
                if self.started {
                    return Err(XmlError::syntax(
                        "duplicate StartDocument",
                        Default::default(),
                    ));
                }
                self.started = true;
                self.nodes.push(Node {
                    kind: NodeKind::Root,
                    parent: None,
                    children: Vec::new(),
                });
                self.stack.push(NodeId::ROOT);
            }
            XmlEvent::EndDocument => {
                if self.stack.len() != 1 {
                    return Err(XmlError::syntax(
                        "EndDocument with open elements",
                        Default::default(),
                    ));
                }
                self.stack.pop();
                self.finished = true;
            }
            XmlEvent::StartElement { name, attributes } => {
                let id = self.add(NodeKind::Element { name, attributes })?;
                self.stack.push(id);
            }
            XmlEvent::EndElement { name } => {
                let top = self.stack.pop().ok_or_else(|| {
                    XmlError::syntax("EndElement without open element", Default::default())
                })?;
                match &self.nodes[top.index()].kind {
                    NodeKind::Element { name: open, .. } if *open == name => {}
                    NodeKind::Element { name: open, .. } => {
                        return Err(XmlError::MismatchedTag {
                            expected: open.clone(),
                            found: name,
                            position: Default::default(),
                        })
                    }
                    _ => {
                        return Err(XmlError::syntax(
                            "EndElement closing the document root",
                            Default::default(),
                        ))
                    }
                }
            }
            XmlEvent::Text(t) => {
                self.add(NodeKind::Text(t))?;
            }
            XmlEvent::Comment(c) => {
                self.add(NodeKind::Comment(c))?;
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                self.add(NodeKind::ProcessingInstruction { target, data })?;
            }
        }
        Ok(())
    }

    fn add(&mut self, kind: NodeKind) -> Result<NodeId> {
        let parent = *self
            .stack
            .last()
            .ok_or_else(|| XmlError::syntax("content outside the document", Default::default()))?;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Finish building; fails if the stream was incomplete.
    pub fn finish(self) -> Result<Document> {
        if !self.finished {
            return Err(XmlError::UnexpectedEof {
                open_element: None,
                position: Default::default(),
            });
        }
        Ok(Document { nodes: self.nodes })
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        TreeBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Document {
        Document::parse_str("<a><a><c/></a><b/><c/></a>").unwrap()
    }

    #[test]
    fn figure_1_tree_shape() {
        let d = fig1();
        // Virtual root with single child a.
        let root_children: Vec<_> = d.child_elements(NodeId::ROOT).collect();
        assert_eq!(root_children.len(), 1);
        let a = root_children[0];
        assert_eq!(d.name(a), Some("a"));
        let kids: Vec<_> = d
            .child_elements(a)
            .map(|c| d.name(c).unwrap().to_string())
            .collect();
        assert_eq!(kids, vec!["a", "b", "c"]);
        assert_eq!(d.element_count(), 5);
        assert_eq!(d.max_depth(), 3); // root=0, a=1, inner a=2, inner c=3
    }

    #[test]
    fn node_ids_are_document_ordered() {
        let d = fig1();
        let ids: Vec<_> = d.elements().collect();
        let names: Vec<_> = ids.iter().map(|id| d.name(*id).unwrap()).collect();
        assert_eq!(names, vec!["a", "a", "c", "b", "c"]);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parent_and_depth() {
        let d = fig1();
        let ids: Vec<_> = d.elements().collect();
        let inner_c = ids[2];
        assert_eq!(d.depth(inner_c), 3);
        assert_eq!(d.parent(inner_c), Some(ids[1]));
        assert_eq!(d.parent(NodeId::ROOT), None);
        assert_eq!(d.depth(NodeId::ROOT), 0);
    }

    #[test]
    fn events_roundtrip_through_tree() {
        let xml = r#"<r a="1"><x>text</x><!--c--><?pi d?><y><z/></y>tail</r>"#;
        let events = crate::reader::parse_events(xml).unwrap();
        let d = Document::from_events(events.clone()).unwrap();
        assert_eq!(d.subtree_events(NodeId::ROOT), events);
    }

    #[test]
    fn to_xml_roundtrips() {
        let xml = r#"<r a="1"><x>te&amp;xt</x><y><z></z></y></r>"#;
        let d = Document::parse_str(xml).unwrap();
        assert_eq!(d.to_xml(), xml);
    }

    #[test]
    fn subtree_string_of_inner_node() {
        let d = fig1();
        let ids: Vec<_> = d.elements().collect();
        assert_eq!(d.subtree_string(ids[1]), "<a><c></c></a>");
    }

    #[test]
    fn text_content_concatenates() {
        let d = Document::parse_str("<a>one<b>two</b>three</a>").unwrap();
        assert_eq!(d.text_content(NodeId::ROOT), "onetwothree");
    }

    #[test]
    fn builder_rejects_bad_sequences() {
        let mut b = TreeBuilder::new();
        assert!(b.push(XmlEvent::open("a")).is_err()); // content before StartDocument

        let mut b = TreeBuilder::new();
        b.push(XmlEvent::StartDocument).unwrap();
        b.push(XmlEvent::open("a")).unwrap();
        assert!(b.push(XmlEvent::close("b")).is_err()); // mismatch

        let mut b = TreeBuilder::new();
        b.push(XmlEvent::StartDocument).unwrap();
        b.push(XmlEvent::open("a")).unwrap();
        assert!(b.push(XmlEvent::EndDocument).is_err()); // open element

        let b = TreeBuilder::new();
        assert!(b.finish().is_err()); // nothing fed
    }
}
