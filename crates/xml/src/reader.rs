//! A streaming, pull-based XML parser.
//!
//! [`Reader`] consumes bytes from any [`std::io::Read`] source and yields
//! [`XmlEvent`]s one at a time, using constant memory in the input size
//! (memory is bounded by the open-element stack, i.e. the document depth, and
//! the size of a single token). This is the property SPEX relies on: the
//! stream is never materialized.
//!
//! The parser is non-validating but checks well-formedness: tags must nest
//! properly, exactly one root element must exist, attribute values must be
//! quoted, and entities must be decodable.

use crate::error::{Position, Result, XmlError};
use crate::escape::{unescape, unescape_lossy};
use crate::event::{Attribute, XmlEvent};
use crate::recover::{Fault, FaultAction, FaultKind, RecoveryPolicy};
use crate::scan::{memchr, memchr3_or_non_ascii};
use crate::store::{EventId, EventStore, RawEvent};
use std::collections::VecDeque;
use std::io::Read;

const BUF_SIZE: usize = 8 * 1024;

/// Internal buffered byte source with single-byte lookahead and position
/// tracking.
struct Bytes<R: Read> {
    input: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    position: Position,
}

impl<R: Read> Bytes<R> {
    fn new(input: R) -> Self {
        Bytes {
            input,
            buf: vec![0; BUF_SIZE],
            pos: 0,
            len: 0,
            eof: false,
            position: Position::start(),
        }
    }

    fn fill(&mut self) -> Result<()> {
        if self.pos < self.len || self.eof {
            return Ok(());
        }
        loop {
            match self.input.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        self.fill()?;
        if self.pos < self.len {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    fn next(&mut self) -> Result<Option<u8>> {
        self.fill()?;
        if self.pos < self.len {
            let b = self.buf[self.pos];
            self.pos += 1;
            self.position.advance(b);
            Ok(Some(b))
        } else {
            Ok(None)
        }
    }

    /// Scan forward through the buffered chunk while `pred` holds, appending
    /// the consumed bytes to `out` (non-ASCII bytes widened to chars exactly
    /// like the byte-wise path; `saw_high` records that a
    /// [`fix_latin`] repack is needed). One call processes at most one
    /// buffer refill's worth of input; the caller loops on [`Scan::More`].
    fn scan_into(
        &mut self,
        out: &mut String,
        saw_high: &mut bool,
        pred: impl Fn(u8) -> bool,
    ) -> Result<Scan> {
        self.fill()?;
        if self.pos == self.len {
            return Ok(Scan::Eof);
        }
        let chunk = &self.buf[self.pos..self.len];
        let take = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
        let consumed = &chunk[..take];
        if consumed.is_ascii() {
            out.push_str(std::str::from_utf8(consumed).expect("ascii bytes are valid UTF-8"));
        } else {
            *saw_high = true;
            for &b in consumed {
                out.push(b as char);
            }
        }
        self.position.advance_bulk(consumed);
        self.pos += take;
        if take < chunk.len() {
            Ok(Scan::Stopped)
        } else {
            Ok(Scan::More)
        }
    }

    /// Like [`Bytes::scan_into`] without collecting the consumed bytes.
    fn skip_chunk(&mut self, pred: impl Fn(u8) -> bool) -> Result<Scan> {
        self.fill()?;
        if self.pos == self.len {
            return Ok(Scan::Eof);
        }
        let chunk = &self.buf[self.pos..self.len];
        let take = chunk.iter().position(|&b| !pred(b)).unwrap_or(chunk.len());
        self.position.advance_bulk(&chunk[..take]);
        self.pos += take;
        if take < chunk.len() {
            Ok(Scan::Stopped)
        } else {
            Ok(Scan::More)
        }
    }

    /// Consume `n` already-buffered bytes at once, updating the position
    /// exactly as `n` calls to [`Bytes::next`] would. The caller guarantees
    /// `pos + n <= len`.
    fn consume_bulk(&mut self, n: usize) {
        let end = self.pos + n;
        self.position.advance_bulk(&self.buf[self.pos..end]);
        self.pos = end;
    }

    /// Consume the next byte, failing with a syntax error on EOF.
    fn expect_any(&mut self, what: &str) -> Result<u8> {
        match self.next()? {
            Some(b) => Ok(b),
            None => Err(XmlError::UnexpectedEof {
                open_element: None,
                position: self.position,
            })
            .map_err(|e| attach_context(e, what)),
        }
    }
}

fn attach_context(e: XmlError, _what: &str) -> XmlError {
    e
}

/// Which byte-scanning strategy [`Reader::next_into`] uses (see
/// `DESIGN.md` §18).
///
/// `Fast` layers a SWAR-accelerated structural fast path (built on
/// [`crate::scan`]) over the byte-at-a-time state machine: the common
/// shapes — an open tag whose attributes contain no entities, a text run
/// with no entity references, a close tag matching the innermost open
/// element — are recognized in bulk and written straight into the
/// [`EventStore`]. Everything else (CDATA, comments, PIs, entities,
/// non-ASCII names, constructs spanning a buffer refill, and *any*
/// malformed input) falls back to the classic scanner **without having
/// consumed a byte**, so the two scanners are event-, fault- and
/// position-identical by construction; `Classic` disables the fast path
/// and serves as the differential oracle.
///
/// The choice only affects [`Reader::next_into`]; [`Reader::next_event`]
/// and [`Reader::next_raw`] always run the classic state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScannerKind {
    /// SWAR delimiter search + structural fast path, classic fallback.
    #[default]
    Fast,
    /// The byte-at-a-time state machine alone (the differential oracle).
    Classic,
}

impl std::str::FromStr for ScannerKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "fast" => Ok(ScannerKind::Fast),
            "classic" => Ok(ScannerKind::Classic),
            other => Err(format!("unknown scanner `{other}` (use fast|classic)")),
        }
    }
}

impl std::fmt::Display for ScannerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScannerKind::Fast => "fast",
            ScannerKind::Classic => "classic",
        })
    }
}

/// Outcome of one chunked scan step (see [`Bytes::scan_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scan {
    /// A byte failing the predicate was reached (and not consumed).
    Stopped,
    /// The input ended before the predicate failed.
    Eof,
    /// The buffered chunk was exhausted; refill and continue.
    More,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Nothing emitted yet: the next event is `StartDocument`.
    Fresh,
    /// Before the root element (prolog).
    Prolog,
    /// Inside the root element.
    Content,
    /// After the root element closed (epilog).
    Epilog,
    /// Multi-document mode: a new document begins; emit `EndDocument`
    /// first, then restart at `Fresh`.
    Boundary,
    /// `EndDocument` has been emitted (or a fatal error occurred).
    Done,
}

/// Streaming pull parser. See the [module documentation](self).
///
/// `Reader` implements [`Iterator`] over `Result<XmlEvent, XmlError>`; after
/// the first error (or after `EndDocument`) the iterator yields `None`.
pub struct Reader<R: Read> {
    bytes: Bytes<R>,
    state: State,
    /// Open-element stack (names), bounded by the document depth.
    stack: Vec<String>,
    /// Emitted-event index at which each open element's start event was
    /// delivered (parallel to `stack`); used to compute damage intervals.
    open_ticks: Vec<u64>,
    /// An event parsed but not yet delivered (used for `<a/>`).
    pending: Option<XmlEvent>,
    /// Synthesized events awaiting delivery (recovery repairs can produce
    /// several events at once, e.g. a cascade of auto-closes).
    queue: VecDeque<XmlEvent>,
    /// Accept a sequence of documents back to back (see
    /// [`Reader::multi_document`]).
    multi: bool,
    /// A `<` was already consumed while detecting a document boundary in
    /// multi-document mode; the prolog continues right after it.
    lt_consumed: bool,
    /// How to respond to malformed input (see [`crate::recover`]).
    policy: RecoveryPolicy,
    /// Faults repaired or contained so far (empty under `Strict`).
    faults: Vec<Fault>,
    /// Number of events delivered so far; the index of the *next* event.
    emitted: u64,
    /// Emitted-event index of the current document's root start element.
    root_open_tick: u64,
    /// Recycled `String` buffers. Events handed back through
    /// [`Reader::next_into`]/[`Reader::next_raw`] return their payload
    /// buffers here, so the steady-state parse loop allocates nothing.
    str_pool: Vec<String>,
    /// Recycled attribute vectors (same lifecycle as `str_pool`).
    attr_pool: Vec<Vec<Attribute>>,
    /// The most recent event delivered through [`Reader::next_raw`]; kept so
    /// the borrow handed to the caller stays valid until the next pull, then
    /// recycled.
    last: Option<XmlEvent>,
    /// Scanning strategy for [`Reader::next_into`] (see [`ScannerKind`]).
    scanner: ScannerKind,
    /// Scratch attribute spans for the structural fast path (chunk-relative
    /// byte ranges), reused across tags so the fast path never allocates.
    fast_attrs: Vec<AttrSpan>,
}

/// Chunk-relative byte spans of one attribute recognized by the structural
/// fast path: `name` and `value` index into the reader's buffered chunk.
#[derive(Debug, Clone, Copy)]
struct AttrSpan {
    name_lo: usize,
    name_hi: usize,
    value_lo: usize,
    value_hi: usize,
}

/// View validated-ASCII bytes as `&str`. The fast path proves slices ASCII
/// (via [`memchr3_or_non_ascii`]) before calling this; the fallback value is
/// unreachable and exists only to keep the function total without `unwrap`.
fn ascii_str(bytes: &[u8]) -> &str {
    debug_assert!(bytes.is_ascii());
    std::str::from_utf8(bytes).unwrap_or_default()
}

/// Upper bound on pooled buffers; beyond this, buffers are simply dropped
/// (a document with thousands of attributes should not pin memory forever).
const POOL_CAP: usize = 64;

/// Recording stops (with one final catch-all fault) after this many faults,
/// so a pathological stream cannot exhaust memory via the fault log.
const FAULT_CAP: usize = 4096;

impl Reader<&'static [u8]> {
    /// Parse from a string slice. (Not the `FromStr` trait: the returned
    /// reader is a different `Reader` instantiation.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Reader<std::io::Cursor<Vec<u8>>> {
        Reader::new(std::io::Cursor::new(s.as_bytes().to_vec()))
    }

    /// Parse from an owned byte vector.
    pub fn from_bytes(bytes: Vec<u8>) -> Reader<std::io::Cursor<Vec<u8>>> {
        Reader::new(std::io::Cursor::new(bytes))
    }
}

impl<R: Read> Reader<R> {
    /// Create a reader over an arbitrary byte source.
    pub fn new(input: R) -> Self {
        Reader {
            bytes: Bytes::new(input),
            state: State::Fresh,
            stack: Vec::new(),
            open_ticks: Vec::new(),
            pending: None,
            queue: VecDeque::new(),
            multi: false,
            lt_consumed: false,
            policy: RecoveryPolicy::Strict,
            faults: Vec::new(),
            emitted: 0,
            root_open_tick: 0,
            str_pool: Vec::new(),
            attr_pool: Vec::new(),
            last: None,
            scanner: ScannerKind::default(),
            fast_attrs: Vec::new(),
        }
    }

    /// Select the scanning strategy for [`Reader::next_into`] (default:
    /// [`ScannerKind::Fast`]). `Classic` disables the structural fast path
    /// and is retained as the differential oracle; see [`ScannerKind`].
    pub fn with_scanner(mut self, scanner: ScannerKind) -> Self {
        self.scanner = scanner;
        self
    }

    /// The scanning strategy this reader runs with.
    pub fn scanner(&self) -> ScannerKind {
        self.scanner
    }

    /// Set the recovery policy (default: [`RecoveryPolicy::Strict`]).
    ///
    /// Under `Repair` or `SkipSubtree` the reader fixes or contains input
    /// faults instead of failing, records each one (see [`Reader::faults`])
    /// and always delivers a balanced event stream ending in `EndDocument`.
    /// Only unrecoverable conditions (an I/O failure before any document
    /// content in strict mode, for instance) still surface as errors.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Accept a *sequence* of documents on one byte stream (back to back or
    /// whitespace-separated): after a root element closes, the next `<name`
    /// begins a new document — the reader emits `EndDocument` followed by a
    /// fresh `StartDocument`. This is the paper's unbounded-stream setting
    /// (§I): the SPEX engine evaluates consecutive documents on one
    /// evaluator without reset.
    pub fn multi_document(mut self) -> Self {
        self.multi = true;
        self
    }

    /// Current position in the input.
    pub fn position(&self) -> Position {
        self.bytes.position
    }

    /// The reader's resume point: `(events_emitted, position, lt_consumed)`.
    ///
    /// Meaningful at a document boundary (right after `EndDocument` was
    /// delivered). In multi-document mode the boundary was detected by
    /// consuming the next root's `<`, so the position points just past that
    /// byte and `lt_consumed` records the consumption; a reader restored
    /// with [`Reader::resume_at`] then continues byte-for-byte identically.
    pub fn resume_point(&self) -> (u64, Position, bool) {
        (self.emitted, self.bytes.position, self.lt_consumed)
    }

    /// Restore a *fresh* reader to a document-boundary resume point captured
    /// by [`Reader::resume_point`]. The underlying byte source must already
    /// be positioned at `position.offset` — the caller skips the input the
    /// original reader consumed before the boundary.
    pub fn resume_at(mut self, emitted: u64, position: Position, lt_consumed: bool) -> Self {
        self.emitted = emitted;
        self.bytes.position = position;
        self.lt_consumed = lt_consumed;
        self
    }

    /// Whether the next pull can deliver an event without consuming any
    /// further input bytes: an event is already parsed ahead (`<a/>`'s
    /// close), repair events are queued, or the reader is at a state
    /// boundary (`StartDocument` before the first byte, `EndDocument` at a
    /// detected document boundary, exhaustion after `Done`). Schedulers
    /// driving the reader from a readiness-based source use this together
    /// with [`Reader::position`] to pull only when the pull cannot block.
    pub fn has_ready_event(&self) -> bool {
        self.pending.is_some()
            || !self.queue.is_empty()
            || matches!(self.state, State::Fresh | State::Boundary | State::Done)
    }

    /// Shared access to the underlying byte source.
    pub fn source(&self) -> &R {
        &self.bytes.input
    }

    /// Exclusive access to the underlying byte source. Refilling or
    /// re-buffering the source's own state never disturbs the parse state;
    /// the reader only observes the source through `Read::read`.
    pub fn source_mut(&mut self) -> &mut R {
        &mut self.bytes.input
    }

    /// Current element nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The recovery policy this reader runs under.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Faults repaired or contained so far (always empty under
    /// [`RecoveryPolicy::Strict`]).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Take ownership of the recorded faults, leaving the log empty.
    pub fn take_faults(&mut self) -> Vec<Fault> {
        std::mem::take(&mut self.faults)
    }

    /// Did the input end prematurely (EOF or I/O failure while elements
    /// were still open) and get repaired by synthesizing closes?
    pub fn truncated(&self) -> bool {
        self.faults.iter().any(|f| f.kind == FaultKind::Truncated)
    }

    /// Number of events delivered so far (the next event's index / tick).
    pub fn events_emitted(&self) -> u64 {
        self.emitted
    }

    /// Pull the next event. `Ok(None)` means the stream finished cleanly
    /// (after `EndDocument` was delivered).
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>> {
        match self.next_event_impl() {
            Ok(Some(e)) => {
                self.emitted += 1;
                Ok(Some(e))
            }
            other => other,
        }
    }

    /// Pull the next event as a borrowing [`RawEvent`] over the reader's
    /// internal buffers. The view is valid until the next pull; the buffers
    /// behind it are recycled, so a steady-state parse loop through this
    /// method performs no per-event allocation.
    ///
    /// Semantics (event sequence, faults, errors) are identical to
    /// [`Reader::next_event`].
    pub fn next_raw(&mut self) -> Result<Option<RawEvent<'_>>> {
        if let Some(prev) = self.last.take() {
            self.recycle_event(prev);
        }
        self.last = self.next_event()?;
        Ok(self.last.as_ref().map(RawEvent::from_event))
    }

    /// Pull the next event directly into an [`EventStore`], returning its
    /// arena handle. Labels are interned into the store's symbol table at
    /// parse time; payload bytes are copied once into the shared buffer and
    /// the reader's own buffers are recycled, so the loop
    /// `while let Some(id) = reader.next_into(&mut store)? { … }` is the
    /// zero-copy producer side of the pipeline.
    pub fn next_into(&mut self, store: &mut EventStore) -> Result<Option<EventId>> {
        if let Some(prev) = self.last.take() {
            self.recycle_event(prev);
        }
        if self.scanner == ScannerKind::Fast {
            if let Some(id) = self.fast_next_into(store) {
                self.emitted += 1;
                return Ok(Some(id));
            }
        }
        match self.next_event()? {
            None => Ok(None),
            Some(ev) => {
                let id = store.push_owned(&ev);
                self.recycle_event(ev);
                Ok(Some(id))
            }
        }
    }

    // ----- structural fast path (ScannerKind::Fast; see DESIGN.md §18) -----
    //
    // Every method here either recognizes one *complete, well-formed*
    // construct inside the already-buffered chunk and consumes exactly its
    // bytes, or returns `None` having consumed nothing — in which case the
    // classic state machine re-reads the same bytes and handles the
    // construct (including raising the identical error/fault at the
    // identical position). The fast path performs no I/O: a buffer refill
    // can fail, and transport failures must flow through the classic
    // recovery machinery.

    /// Try to deliver the next event via the structural fast path. `None`
    /// means "no byte consumed, use the classic scanner".
    fn fast_next_into(&mut self, store: &mut EventStore) -> Option<EventId> {
        if !self.queue.is_empty() {
            return None; // synthesized repair events: classic delivery order
        }
        if self.pending.is_some() {
            // The pre-parsed close of `<a/>`: same work as the classic path
            // (deliver + recycle), minus the dispatch layers.
            let ev = self.pending.take()?;
            let id = store.push_owned(&ev);
            self.recycle_event(ev);
            return Some(id);
        }
        if self.state != State::Content {
            return None; // prolog/epilog/boundary constructs are rare: classic
        }
        if self.bytes.pos >= self.bytes.len {
            return None; // refill (and any I/O error) happens classically
        }
        let chunk = &self.bytes.buf[self.bytes.pos..self.bytes.len];
        if chunk[0] != b'<' {
            return self.fast_text(store);
        }
        match chunk.get(1) {
            Some(b'/') => self.fast_close_tag(store),
            Some(&b) if b < 0x80 && is_name_start(b) => self.fast_open_tag(store),
            // `<!`, `<?`, non-ASCII names, or a lone `<` at the chunk end.
            _ => None,
        }
    }

    /// Fast text run: ASCII character data up to a `<` inside the buffered
    /// chunk, with no entity reference. One fused sweep finds the end *and*
    /// proves the run entity-free ASCII; the bytes go into the store
    /// verbatim (entity decoding and the latin-1 widening repack are both
    /// no-ops on this shape).
    fn fast_text(&mut self, store: &mut EventStore) -> Option<EventId> {
        let chunk = &self.bytes.buf[self.bytes.pos..self.bytes.len];
        // Run may span a refill (no hit): classic. A `&` hit is an entity
        // reference (classic decode-and-fault path); a non-ASCII hit is
        // UTF-8 text (classic widen/repack path).
        let stop = memchr3_or_non_ascii(b'<', b'&', b'&', chunk)?;
        if chunk[stop] != b'<' {
            return None;
        }
        let run = &chunk[..stop];
        let id = store.push_text(ascii_str(run));
        self.bytes.consume_bulk(stop);
        Some(id)
    }

    /// Fast close tag: `</name>` (optionally with trailing whitespace before
    /// `>`) whose name matches the innermost open element. Mismatched and
    /// stray closes fall back to the classic path's fault machinery.
    fn fast_close_tag(&mut self, store: &mut EventStore) -> Option<EventId> {
        let chunk = &self.bytes.buf[self.bytes.pos..self.bytes.len];
        let gt = memchr(b'>', chunk.get(2..)?)? + 2;
        let inner = &chunk[2..gt];
        let first = *inner.first()?;
        if first >= 0x80 || !is_name_start(first) {
            return None;
        }
        let name_len = inner
            .iter()
            .position(|&b| !is_name_char(b))
            .unwrap_or(inner.len());
        if !inner[name_len..].iter().all(|b| b.is_ascii_whitespace()) {
            return None; // junk between name and `>`: classic error path
        }
        let name = &inner[..name_len];
        match self.stack.last() {
            Some(top) if top.as_bytes() == name => {}
            _ => return None, // mismatch/stray close: classic fault handling
        }
        let id = store.push_end(ascii_str(name));
        if let Some(popped) = self.stack.pop() {
            self.recycle_string(popped);
        }
        self.open_ticks.pop();
        if self.stack.is_empty() {
            self.state = State::Epilog;
        }
        self.bytes.consume_bulk(gt + 1);
        Some(id)
    }

    /// Fast open tag: `<name a="v" ...>` or `<name .../>` complete inside
    /// the buffered chunk, all ASCII, no entity reference or `<` anywhere in
    /// the tag. The attribute spans are collected into a reusable scratch
    /// vector, then handed to [`EventStore::push_start`] as borrowed `&str`s
    /// straight out of the input buffer — no intermediate `String`.
    ///
    /// A `>` inside a quoted attribute value makes the candidate fail
    /// validation (the quote never closes before the first `>`), so it falls
    /// back rather than mis-parsing.
    fn fast_open_tag(&mut self, store: &mut EventStore) -> Option<EventId> {
        let base = self.bytes.pos;
        self.fast_attrs.clear();
        let chunk = &self.bytes.buf[base..self.bytes.len];
        // One fused sweep: the first `>`, `<`, `&` or non-ASCII byte after
        // the opening `<`. Only a `>` keeps the candidate — anything else is
        // UTF-8 names/values, an entity, or malformed nesting, and a
        // quoted-value `>` before those merely fails the attribute walk
        // below (the quote never closes), so nothing is ever mis-parsed.
        // No hit at all means the tag may span a refill: classic.
        let gt = memchr3_or_non_ascii(b'>', b'<', b'&', chunk.get(1..)?)? + 1;
        if chunk[gt] != b'>' {
            return None;
        }
        // Name: byte 1 is a name-start (checked by the dispatcher).
        let mut i = 1;
        while i < gt && is_name_char(chunk[i]) {
            i += 1;
        }
        let name_hi = i;
        let mut self_closing = false;
        loop {
            while i < gt && chunk[i].is_ascii_whitespace() {
                i += 1;
            }
            if i == gt {
                break;
            }
            if chunk[i] == b'/' {
                if i + 1 == gt {
                    self_closing = true;
                    break;
                }
                return None; // `/` not directly before `>`: classic error path
            }
            if !is_name_start(chunk[i]) {
                return None;
            }
            let name_lo = i;
            while i < gt && is_name_char(chunk[i]) {
                i += 1;
            }
            let attr_name_hi = i;
            while i < gt && chunk[i].is_ascii_whitespace() {
                i += 1;
            }
            if i == gt || chunk[i] != b'=' {
                return None;
            }
            i += 1;
            while i < gt && chunk[i].is_ascii_whitespace() {
                i += 1;
            }
            if i == gt || (chunk[i] != b'"' && chunk[i] != b'\'') {
                return None;
            }
            let quote = chunk[i];
            i += 1;
            let value_lo = i;
            let value_hi = value_lo + memchr(quote, &chunk[i..gt])?;
            i = value_hi + 1;
            self.fast_attrs.push(AttrSpan {
                name_lo,
                name_hi: attr_name_hi,
                value_lo,
                value_hi,
            });
        }
        let id = {
            let buf = &self.bytes.buf;
            let name = ascii_str(&buf[base + 1..base + name_hi]);
            let attrs = self.fast_attrs.iter().map(|span| {
                (
                    ascii_str(&buf[base + span.name_lo..base + span.name_hi]),
                    ascii_str(&buf[base + span.value_lo..base + span.value_hi]),
                )
            });
            store.push_start(name, attrs)
        };
        if self_closing {
            // Same bookkeeping as the classic path: the close is pre-parsed
            // into `pending` and delivered on the next pull.
            let mut close = self.take_string();
            close.push_str(ascii_str(&self.bytes.buf[base + 1..base + name_hi]));
            self.pending = Some(XmlEvent::EndElement { name: close });
        } else {
            let mut open = self.take_string();
            open.push_str(ascii_str(&self.bytes.buf[base + 1..base + name_hi]));
            self.stack.push(open);
            // The start event is delivered right after this return, so its
            // tick is the current `emitted` index (as in the classic path).
            self.open_ticks.push(self.emitted);
        }
        self.bytes.consume_bulk(gt + 1);
        Some(id)
    }

    // ----- buffer recycling (the no-allocation steady state) -----

    fn take_string(&mut self) -> String {
        let mut s = self.str_pool.pop().unwrap_or_default();
        s.clear();
        s
    }

    fn recycle_string(&mut self, s: String) {
        if self.str_pool.len() < POOL_CAP && s.capacity() > 0 {
            self.str_pool.push(s);
        }
    }

    fn take_attrs(&mut self) -> Vec<Attribute> {
        self.attr_pool.pop().unwrap_or_default()
    }

    /// Reclaim the payload buffers of a consumed event.
    fn recycle_event(&mut self, event: XmlEvent) {
        match event {
            XmlEvent::StartElement {
                name,
                mut attributes,
            } => {
                self.recycle_string(name);
                for a in attributes.drain(..) {
                    self.recycle_string(a.name);
                    self.recycle_string(a.value);
                }
                if self.attr_pool.len() < POOL_CAP {
                    self.attr_pool.push(attributes);
                }
            }
            XmlEvent::EndElement { name } => self.recycle_string(name),
            XmlEvent::Text(t) | XmlEvent::Comment(t) => self.recycle_string(t),
            XmlEvent::ProcessingInstruction { target, data } => {
                self.recycle_string(target);
                self.recycle_string(data);
            }
            XmlEvent::StartDocument | XmlEvent::EndDocument => {}
        }
    }

    fn next_event_impl(&mut self) -> Result<Option<XmlEvent>> {
        loop {
            if let Some(e) = self.queue.pop_front() {
                return Ok(Some(e));
            }
            if let Some(e) = self.pending.take() {
                return Ok(Some(e));
            }
            let step: Result<Option<XmlEvent>> = match self.state {
                State::Fresh => {
                    self.state = State::Prolog;
                    return Ok(Some(XmlEvent::StartDocument));
                }
                State::Prolog => self.prolog_event(),
                State::Content => self.content_event(),
                State::Epilog => match self.epilog_event() {
                    Ok(Some(e)) => Ok(Some(e)),
                    Ok(None) => {
                        if self.state == State::Done || self.state == State::Boundary {
                            return Ok(Some(XmlEvent::EndDocument));
                        }
                        Ok(None)
                    }
                    Err(e) => Err(e),
                },
                State::Boundary => {
                    self.state = State::Fresh;
                    continue;
                }
                State::Done => return Ok(None),
            };
            match step {
                Ok(Some(e)) => return Ok(Some(e)),
                Ok(None) => {}
                Err(e) => {
                    if self.policy == RecoveryPolicy::Strict {
                        return Err(e);
                    }
                    self.recover(e)?;
                }
            }
        }
    }

    // ----- recovery machinery (never reached under `Strict`) -----

    fn record_fault(
        &mut self,
        kind: FaultKind,
        position: Position,
        action: FaultAction,
        detail: String,
        event_from: u64,
        event_to: u64,
    ) {
        if self.faults.len() == FAULT_CAP {
            // One final catch-all entry: everything from here on is treated
            // as damaged, so the quarantine stays sound without an
            // unbounded log.
            self.faults.push(Fault {
                kind: FaultKind::Garbage,
                position,
                action: FaultAction::Dropped,
                detail: format!("fault log capped at {FAULT_CAP}; rest of stream quarantined"),
                event_from: self.emitted,
                event_to: u64::MAX,
            });
        }
        if self.faults.len() > FAULT_CAP {
            return;
        }
        self.faults.push(Fault {
            kind,
            position,
            action,
            detail,
            event_from,
            event_to,
        });
    }

    /// Central fault dispatcher: repair or contain `err`, queueing any
    /// synthesized events. Errors returned from here are terminal.
    fn recover(&mut self, err: XmlError) -> Result<()> {
        let position = err.position().unwrap_or(self.bytes.position);
        match err {
            XmlError::UnexpectedEof { .. } => {
                self.truncate(position, "unexpected end of input");
                Ok(())
            }
            XmlError::Io(msg) => {
                // A failing transport is indistinguishable from truncation
                // for the consumer: salvage what was already determined.
                self.truncate(position, &format!("I/O failure ({msg})"));
                Ok(())
            }
            XmlError::EmptyDocument => {
                // Recovery-mode reading of an empty/whitespace prefix: treat
                // as a truncated document so the stream still closes.
                self.record_fault(
                    FaultKind::Truncated,
                    position,
                    FaultAction::SynthesizedCloses,
                    "no root element before end of input".to_string(),
                    self.emitted,
                    u64::MAX,
                );
                self.queue.push_back(XmlEvent::EndDocument);
                self.state = State::Done;
                Ok(())
            }
            XmlError::TrailingContent { .. } => {
                self.drop_trailing(position);
                Ok(())
            }
            XmlError::Syntax { message, .. } => match self.state {
                State::Content
                    if self.policy == RecoveryPolicy::SkipSubtree && !self.stack.is_empty() =>
                {
                    self.skip_enclosing_subtree(position, &message)
                }
                State::Content | State::Prolog => {
                    self.resync_garbage(position, &message);
                    Ok(())
                }
                State::Epilog => {
                    self.drop_trailing(position);
                    Ok(())
                }
                // Fresh/Boundary/Done never produce syntax errors.
                _ => Err(XmlError::Syntax { message, position }),
            },
            // Mismatched closes and bad entities are repaired inline before
            // they become errors; reaching here is impossible in recovery
            // mode, but stay conservative.
            other => Err(other),
        }
    }

    /// End-of-input (or transport failure) with elements still open:
    /// synthesize closes for the whole stack plus `EndDocument`.
    fn truncate(&mut self, position: Position, why: &str) {
        let open = self.stack.len();
        self.record_fault(
            FaultKind::Truncated,
            position,
            FaultAction::SynthesizedCloses,
            format!("{why}: synthesized {open} close(s) for open elements"),
            self.emitted,
            u64::MAX,
        );
        while let Some(name) = self.stack.pop() {
            self.open_ticks.pop();
            self.queue.push_back(XmlEvent::EndElement { name });
        }
        self.queue.push_back(XmlEvent::EndDocument);
        self.pending = None;
        self.state = State::Done;
    }

    /// Discard input bytes up to the next `<` (or EOF) and continue parsing
    /// in place. Guaranteed to make progress.
    fn resync_garbage(&mut self, position: Position, what: &str) {
        self.record_fault(
            FaultKind::Garbage,
            position,
            FaultAction::Dropped,
            format!("{what}; skipped to next `<`"),
            self.emitted,
            self.emitted,
        );
        let start = self.bytes.position.offset;
        loop {
            match self.bytes.peek() {
                // Stop at the next `<` — unless it is the very byte the
                // fault was raised at (consume it to guarantee progress).
                Ok(Some(b'<')) if self.bytes.position.offset > start => break,
                Ok(Some(_)) => {
                    let _ = self.bytes.next();
                }
                Ok(None) | Err(_) => break, // EOF/IO surfaces on the next parse step
            }
        }
    }

    /// `SkipSubtree`: close the smallest enclosing element early, then skim
    /// the raw bytes (quote/comment/CDATA-aware) until its real close tag,
    /// so sibling subtrees stay evaluable.
    fn skip_enclosing_subtree(&mut self, position: Position, what: &str) -> Result<()> {
        let Some(name) = self.stack.pop() else {
            self.resync_garbage(position, what);
            return Ok(());
        };
        let open_tick = self.open_ticks.pop().unwrap_or(0);
        self.record_fault(
            FaultKind::Garbage,
            position,
            FaultAction::SkippedSubtree,
            format!("{what}; skipped the rest of <{name}>"),
            open_tick,
            self.emitted,
        );
        self.queue.push_back(XmlEvent::EndElement { name });
        if self.stack.is_empty() {
            self.state = State::Epilog;
        }
        if let Err(e) = self.skim_until_close() {
            // Transport failure while skimming: the stream is truncated.
            // The skipped element's close is already queued.
            self.truncate(self.bytes.position, &format!("I/O failure ({e})"));
        }
        Ok(())
    }

    /// Byte-level tolerant scan consuming the remainder of one open element
    /// (depth 1 at entry) without emitting events. Understands quoted
    /// attribute values, comments, CDATA sections and processing
    /// instructions well enough not to miscount `<`/`>`.
    fn skim_until_close(&mut self) -> std::result::Result<(), std::io::Error> {
        let mut depth = 1usize;
        let fail = |e: XmlError| std::io::Error::other(e.to_string());
        loop {
            // Find the next markup start.
            loop {
                match self.bytes.next().map_err(fail)? {
                    None => return Ok(()), // EOF: outer loop ends the stream
                    Some(b'<') => break,
                    Some(_) => {}
                }
            }
            match self.bytes.peek().map_err(fail)? {
                None => return Ok(()),
                Some(b'/') => {
                    loop {
                        match self.bytes.next().map_err(fail)? {
                            None => return Ok(()),
                            Some(b'>') => break,
                            Some(_) => {}
                        }
                    }
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(b'!') => {
                    self.bytes.next().map_err(fail)?;
                    match self.bytes.peek().map_err(fail)? {
                        Some(b'-') => self.skim_until(b"-->").map_err(fail)?,
                        Some(b'[') => self.skim_until(b"]]>").map_err(fail)?,
                        _ => self.skim_until(b">").map_err(fail)?,
                    }
                }
                Some(b'?') => {
                    self.bytes.next().map_err(fail)?;
                    self.skim_until(b"?>").map_err(fail)?;
                }
                Some(_) => {
                    // Open tag: scan to its `>`, honouring quotes; a
                    // trailing `/` means self-closing (depth unchanged).
                    let mut quote: Option<u8> = None;
                    let mut prev = 0u8;
                    loop {
                        match self.bytes.next().map_err(fail)? {
                            None => return Ok(()),
                            Some(b) => {
                                match quote {
                                    Some(q) if b == q => quote = None,
                                    Some(_) => {}
                                    None if b == b'"' || b == b'\'' => quote = Some(b),
                                    None if b == b'>' => {
                                        if prev != b'/' {
                                            depth += 1;
                                        }
                                        break;
                                    }
                                    None => {}
                                }
                                prev = b;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Consume bytes until (and including) the terminator sequence or EOF.
    ///
    /// The terminators used here (`-->`, `]]>`, `?>`, `>`) all have prefixes
    /// consisting of one repeated character, so the overlap handling below
    /// (stay at full prefix length on a repeat, e.g. `--->`) is exact.
    fn skim_until(&mut self, terminator: &[u8]) -> Result<()> {
        let mut matched = 0usize;
        loop {
            match self.bytes.next()? {
                None => return Ok(()),
                Some(b) => {
                    if b == terminator[matched] {
                        matched += 1;
                        if matched == terminator.len() {
                            return Ok(());
                        }
                    } else if matched > 0 && b == terminator[0] && terminator[matched - 1] == b {
                        // e.g. scanning for `-->` over `--->`: stay matched.
                    } else if b == terminator[0] {
                        matched = 1;
                    } else {
                        matched = 0;
                    }
                }
            }
        }
    }

    /// Content after the root element: report it, then (single-document
    /// mode) discard the rest of the input, or (multi-document mode) resync
    /// to the next `<` so later documents survive.
    fn drop_trailing(&mut self, position: Position) {
        self.record_fault(
            FaultKind::TrailingContent,
            position,
            FaultAction::Dropped,
            "dropped content after the root element".to_string(),
            // The root element's fragment is suspect: a damaged close may
            // have ended it early (see DESIGN.md §10).
            self.root_open_tick,
            self.emitted,
        );
        if self.multi {
            let start = self.bytes.position.offset;
            loop {
                match self.bytes.peek() {
                    Ok(Some(b'<')) if self.bytes.position.offset > start => break,
                    Ok(Some(_)) => {
                        let _ = self.bytes.next();
                    }
                    _ => break,
                }
            }
        } else {
            while let Ok(Some(_)) = self.bytes.next() {}
            self.queue.push_back(XmlEvent::EndDocument);
            self.state = State::Done;
        }
    }

    /// Handle one prolog construct. Returns an event to deliver, or `None`
    /// if the construct was consumed silently (whitespace, XML declaration,
    /// DOCTYPE) or the root element was opened (state switches to `Content`
    /// and the start-element event is stored in `pending`... no: returned).
    fn prolog_event(&mut self) -> Result<Option<XmlEvent>> {
        if !self.lt_consumed {
            self.skip_whitespace()?;
        }
        match if self.lt_consumed {
            Some(b'<')
        } else {
            self.bytes.peek()?
        } {
            None => Err(XmlError::EmptyDocument),
            Some(b'<') => {
                if self.lt_consumed {
                    self.lt_consumed = false;
                } else {
                    self.bytes.next()?;
                }
                match self.bytes.peek()? {
                    Some(b'?') => {
                        self.bytes.next()?;
                        Ok(self.parse_pi()?)
                    }
                    Some(b'!') => {
                        self.bytes.next()?;
                        match self.bytes.peek()? {
                            Some(b'-') => Ok(Some(self.parse_comment()?)),
                            Some(b'D') => {
                                self.skip_doctype()?;
                                Ok(None)
                            }
                            _ => Err(XmlError::syntax(
                                "unexpected `<!` construct in prolog",
                                self.bytes.position,
                            )),
                        }
                    }
                    Some(b'/') => Err(XmlError::syntax(
                        "close tag before any element was opened",
                        self.bytes.position,
                    )),
                    _ => {
                        self.root_open_tick = self.emitted;
                        let ev = self.parse_open_tag()?;
                        // A self-closing root (`<a/>`) leaves the stack empty:
                        // go straight to the epilog once the pending
                        // `EndElement` is delivered.
                        self.state = if self.stack.is_empty() {
                            State::Epilog
                        } else {
                            State::Content
                        };
                        Ok(Some(ev))
                    }
                }
            }
            Some(_) => Err(XmlError::syntax(
                "character data before the root element",
                self.bytes.position,
            )),
        }
    }

    /// Handle one content construct. `Ok(None)` means the construct was
    /// consumed without producing an event directly (a repaired close tag
    /// queues its events instead).
    fn content_event(&mut self) -> Result<Option<XmlEvent>> {
        // Text (possibly spanning CDATA sections) or markup.
        match self.bytes.peek()? {
            None => Err(XmlError::UnexpectedEof {
                open_element: self.stack.last().cloned(),
                position: self.bytes.position,
            }),
            Some(b'<') => self.markup_event(),
            Some(_) => {
                let text = self.parse_text()?;
                Ok(Some(XmlEvent::Text(text)))
            }
        }
    }

    /// Parse a `<...>` construct in content context.
    fn markup_event(&mut self) -> Result<Option<XmlEvent>> {
        self.bytes.next()?; // consume '<'
        match self.bytes.peek()? {
            Some(b'/') => {
                self.bytes.next()?;
                self.parse_close_tag()
            }
            Some(b'?') => {
                self.bytes.next()?;
                match self.parse_pi()? {
                    Some(ev) => Ok(Some(ev)),
                    // The XML declaration is only legal at the very start;
                    // treat it here as a syntax error.
                    None => Err(XmlError::syntax(
                        "XML declaration inside the document",
                        self.bytes.position,
                    )),
                }
            }
            Some(b'!') => {
                self.bytes.next()?;
                match self.bytes.peek()? {
                    Some(b'-') => self.parse_comment().map(Some),
                    Some(b'[') => {
                        let text = self.parse_cdata()?;
                        Ok(Some(XmlEvent::Text(text)))
                    }
                    _ => Err(XmlError::syntax(
                        "unexpected `<!` construct in content",
                        self.bytes.position,
                    )),
                }
            }
            _ => self.parse_open_tag().map(Some),
        }
    }

    fn epilog_event(&mut self) -> Result<Option<XmlEvent>> {
        self.skip_whitespace()?;
        match self.bytes.peek()? {
            None => {
                self.state = State::Done;
                Ok(None)
            }
            Some(b'<') => {
                self.bytes.next()?;
                match self.bytes.peek()? {
                    Some(b'?') => {
                        self.bytes.next()?;
                        Ok(self.parse_pi()?)
                    }
                    Some(b'!') => {
                        self.bytes.next()?;
                        match self.bytes.peek()? {
                            Some(b'-') => Ok(Some(self.parse_comment()?)),
                            Some(b'D') if self.multi => {
                                // DOCTYPE of the *next* document.
                                self.skip_doctype()?;
                                self.state = State::Boundary;
                                Ok(None)
                            }
                            _ => Err(XmlError::TrailingContent {
                                position: self.bytes.position,
                            }),
                        }
                    }
                    Some(b) if self.multi && is_name_start(b) => {
                        // A new root element: document boundary. The `<` is
                        // already consumed; the next prolog continues after
                        // it.
                        self.state = State::Boundary;
                        self.lt_consumed = true;
                        Ok(None)
                    }
                    _ => Err(XmlError::TrailingContent {
                        position: self.bytes.position,
                    }),
                }
            }
            Some(_) => Err(XmlError::TrailingContent {
                position: self.bytes.position,
            }),
        }
    }

    fn skip_whitespace(&mut self) -> Result<()> {
        loop {
            match self.bytes.skip_chunk(|b| b.is_ascii_whitespace())? {
                Scan::Stopped | Scan::Eof => return Ok(()),
                Scan::More => {}
            }
        }
    }

    /// Parse a name (element or attribute). The first byte must already be
    /// valid; subsequent bytes follow the (ASCII-approximated) NameChar rules.
    /// Non-ASCII bytes are accepted verbatim so UTF-8 names pass through.
    fn parse_name(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let mut name = self.take_string();
        match self.bytes.peek()? {
            Some(b) if is_name_start(b) => {}
            _ => return Err(XmlError::syntax("expected a name", start)),
        }
        let mut high = false;
        loop {
            // `b >= 0x80` passes through UTF-8 continuation/start bytes.
            match self
                .bytes
                .scan_into(&mut name, &mut high, |b| is_name_char(b) || b >= 0x80)?
            {
                Scan::Stopped | Scan::Eof => break,
                Scan::More => {}
            }
        }
        if name.is_empty() {
            return Err(XmlError::syntax("empty name", start));
        }
        Ok(if high { fix_latin(name) } else { name })
    }

    fn parse_open_tag(&mut self) -> Result<XmlEvent> {
        let name = self.parse_name()?;
        let mut attributes = self.take_attrs();
        loop {
            self.skip_whitespace()?;
            match self.bytes.peek()? {
                Some(b'>') => {
                    self.bytes.next()?;
                    // Copy the name into a pooled buffer for the open-element
                    // stack instead of `clone()`: no allocation once warm.
                    let mut open = self.take_string();
                    open.push_str(&name);
                    self.stack.push(open);
                    // The start event is delivered right after this return,
                    // so its tick is the current `emitted` index.
                    self.open_ticks.push(self.emitted);
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b'/') => {
                    self.bytes.next()?;
                    let b = self.bytes.expect_any("`>` after `/`")?;
                    if b != b'>' {
                        return Err(XmlError::syntax(
                            "expected `>` after `/` in empty-element tag",
                            self.bytes.position,
                        ));
                    }
                    // Self-closing element: two events, nothing pushed to the
                    // open-element stack (the element opens and closes
                    // atomically). If this was the root element the caller
                    // transitions to the epilog based on the empty stack.
                    let mut close = self.take_string();
                    close.push_str(&name);
                    self.pending = Some(XmlEvent::EndElement { name: close });
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace()?;
                    let eq = self.bytes.expect_any("`=` in attribute")?;
                    if eq != b'=' {
                        return Err(XmlError::syntax(
                            format!("expected `=` after attribute name `{attr_name}`"),
                            self.bytes.position,
                        ));
                    }
                    self.skip_whitespace()?;
                    let value = self.parse_attr_value()?;
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                Some(_) => {
                    return Err(XmlError::syntax(
                        "unexpected character in start tag",
                        self.bytes.position,
                    ))
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: Some(name),
                        position: self.bytes.position,
                    })
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let quote = self.bytes.expect_any("attribute value")?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::syntax("attribute value must be quoted", start));
        }
        let mut raw = self.take_string();
        let mut high = false;
        loop {
            match self
                .bytes
                .scan_into(&mut raw, &mut high, |b| b != quote && b != b'<')?
            {
                Scan::Stopped => match self.bytes.next()? {
                    Some(b) if b == quote => break,
                    _ => {
                        return Err(XmlError::syntax(
                            "`<` in attribute value",
                            self.bytes.position,
                        ))
                    }
                },
                Scan::Eof => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Scan::More => {}
            }
        }
        let raw = if high { fix_latin(raw) } else { raw };
        self.decode_entities(raw, start)
    }

    /// Decode entity references in `raw`; under a repair policy undecodable
    /// references become U+FFFD replacement text and are reported as a
    /// [`FaultKind::BadEntity`] fault instead of an error.
    fn decode_entities(&mut self, raw: String, start: Position) -> Result<String> {
        // No reference, no work: hand the buffer back untouched. (This is
        // the dominant path; it also means no copy out of a pooled buffer.)
        if !raw.contains('&') {
            return Ok(raw);
        }
        match unescape(&raw) {
            Some(v) => {
                // `raw` contains `&`, so a successful decode is always owned.
                let v = v.into_owned();
                self.recycle_string(raw);
                Ok(v)
            }
            None if self.policy == RecoveryPolicy::Strict => Err(XmlError::BadEntity {
                entity: raw,
                position: start,
            }),
            None => {
                let (fixed, replaced) = unescape_lossy(&raw);
                self.record_fault(
                    FaultKind::BadEntity,
                    start,
                    FaultAction::Replaced,
                    format!("replaced {replaced} undecodable entity reference(s)"),
                    self.emitted,
                    self.emitted,
                );
                self.recycle_string(raw);
                Ok(fixed)
            }
        }
    }

    /// Parse a close tag (`</` already consumed). Under a repair policy a
    /// mismatched close auto-closes the intervening open elements (queueing
    /// their end events) and a stray close is dropped; both return
    /// `Ok(None)` with a recorded [`Fault`].
    fn parse_close_tag(&mut self) -> Result<Option<XmlEvent>> {
        let pos = self.bytes.position;
        let name = self.parse_name()?;
        self.skip_whitespace()?;
        let b = self.bytes.expect_any("`>` in close tag")?;
        if b != b'>' {
            return Err(XmlError::syntax(
                "expected `>` in close tag",
                self.bytes.position,
            ));
        }
        match self.stack.last() {
            Some(open) if *open == name => {
                if let Some(popped) = self.stack.pop() {
                    self.recycle_string(popped);
                }
                self.open_ticks.pop();
                if self.stack.is_empty() {
                    self.state = State::Epilog;
                }
                Ok(Some(XmlEvent::EndElement { name }))
            }
            Some(open) if self.policy == RecoveryPolicy::Strict => Err(XmlError::MismatchedTag {
                expected: open.clone(),
                found: name,
                position: pos,
            }),
            Some(_) => {
                if let Some(idx) = self.stack.iter().rposition(|n| *n == name) {
                    // Mismatched close: auto-close everything above the
                    // matching open, then close it. The damage interval
                    // starts at the outermost auto-closed element's open:
                    // every event since then may sit at the wrong depth.
                    let auto = self.stack.len() - idx - 1;
                    let damage_from = self.open_ticks.get(idx + 1).copied().unwrap_or(0);
                    while self.stack.len() > idx {
                        if let Some(top) = self.stack.pop() {
                            self.open_ticks.pop();
                            self.queue.push_back(XmlEvent::EndElement { name: top });
                        }
                    }
                    self.record_fault(
                        FaultKind::MismatchedClose,
                        pos,
                        FaultAction::AutoClosed,
                        format!("auto-closed {auto} open element(s) at </{name}>"),
                        damage_from,
                        self.emitted + auto as u64,
                    );
                    if self.stack.is_empty() {
                        self.state = State::Epilog;
                    }
                } else {
                    // Stray close: no such element is open. Conservatively
                    // taint everything since the innermost open element's
                    // start (a duplicated close may have silently closed a
                    // same-named ancestor earlier).
                    let damage_from = self.open_ticks.last().copied().unwrap_or(0);
                    self.record_fault(
                        FaultKind::StrayClose,
                        pos,
                        FaultAction::Dropped,
                        format!("dropped stray close tag </{name}>"),
                        damage_from,
                        self.emitted,
                    );
                }
                Ok(None)
            }
            None => Err(XmlError::syntax("close tag without open element", pos)),
        }
    }

    /// Parse raw character data up to the next `<`, decoding entities and
    /// merging adjacent CDATA sections.
    fn parse_text(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let mut raw = self.take_string();
        let mut high = false;
        loop {
            match self.bytes.scan_into(&mut raw, &mut high, |b| b != b'<') {
                Ok(Scan::Stopped) | Ok(Scan::Eof) => break,
                Ok(Scan::More) => {}
                // Under a repair policy, salvage the text received so far;
                // the transport failure is sticky and resurfaces (as a
                // truncation) on the next pull.
                Err(_) if self.policy != RecoveryPolicy::Strict && !raw.is_empty() => break,
                Err(e) => return Err(e),
            }
        }
        let raw = if high { fix_latin(raw) } else { raw };
        self.decode_entities(raw, start)
    }

    /// Parse a comment; the leading `<!` is already consumed and `-` peeked.
    fn parse_comment(&mut self) -> Result<XmlEvent> {
        let pos = self.bytes.position;
        for _ in 0..2 {
            let b = self.bytes.expect_any("comment opener")?;
            if b != b'-' {
                return Err(XmlError::syntax("malformed comment opener", pos));
            }
        }
        let mut content = self.take_string();
        let mut dashes = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b'-') => dashes += 1,
                Some(b'>') if dashes >= 2 => {
                    // remove the two trailing dashes we buffered
                    for _ in 0..dashes.saturating_sub(2) {
                        content.push('-');
                    }
                    return Ok(XmlEvent::Comment(fix_latin(content)));
                }
                Some(b) => {
                    for _ in 0..dashes {
                        content.push('-');
                    }
                    dashes = 0;
                    content.push(b as char);
                }
            }
        }
    }

    /// Parse `<![CDATA[ ... ]]>`; `<!` consumed, `[` peeked.
    fn parse_cdata(&mut self) -> Result<String> {
        let pos = self.bytes.position;
        for expected in b"[CDATA[" {
            let b = self.bytes.expect_any("CDATA opener")?;
            if b != *expected {
                return Err(XmlError::syntax("malformed CDATA opener", pos));
            }
        }
        let mut content = self.take_string();
        let mut brackets = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b']') => brackets += 1,
                Some(b'>') if brackets >= 2 => {
                    for _ in 0..brackets.saturating_sub(2) {
                        content.push(']');
                    }
                    return Ok(fix_latin(content));
                }
                Some(b) => {
                    for _ in 0..brackets {
                        content.push(']');
                    }
                    brackets = 0;
                    content.push(b as char);
                }
            }
        }
    }

    /// Parse a processing instruction; `<?` already consumed. Returns `None`
    /// for the XML declaration (`<?xml ...?>`), which is consumed silently.
    fn parse_pi(&mut self) -> Result<Option<XmlEvent>> {
        let target = self.parse_name()?;
        let mut data = self.take_string();
        let mut question = false;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b'?') => {
                    if question {
                        data.push('?');
                    }
                    question = true;
                }
                Some(b'>') if question => break,
                Some(b) => {
                    if question {
                        data.push('?');
                        question = false;
                    }
                    data.push(b as char);
                }
            }
        }
        if target.eq_ignore_ascii_case("xml") {
            self.recycle_string(target);
            self.recycle_string(data);
            return Ok(None);
        }
        // Trim in place rather than `data.trim().to_string()`.
        data.truncate(data.trim_end().len());
        let lead = data.len() - data.trim_start().len();
        if lead > 0 {
            data.drain(..lead);
        }
        let data = fix_latin(data);
        Ok(Some(XmlEvent::ProcessingInstruction { target, data }))
    }

    /// Skip `<!DOCTYPE ...>`, including an internal subset `[...]`.
    fn skip_doctype(&mut self) -> Result<()> {
        // Consume "DOCTYPE"
        for expected in b"DOCTYPE" {
            let b = self.bytes.expect_any("DOCTYPE")?;
            if b != *expected {
                return Err(XmlError::syntax("malformed DOCTYPE", self.bytes.position));
            }
        }
        let mut depth = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: None,
                        position: self.bytes.position,
                    })
                }
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }
}

/// Bytes were pushed into `String`s as single chars (latin-1 style); re-pack
/// any bytes ≥ 0x80 back into proper UTF-8.
///
/// The parser reads byte-wise and stores each byte as a `char`; for ASCII
/// documents this is already correct, and for UTF-8 input the bytes ≥ 0x80
/// were widened to chars U+0080..U+00FF. This helper re-encodes them as the
/// original byte sequence and validates the result as UTF-8; invalid UTF-8 is
/// replaced (lossily) so the parser never fails on encoding alone.
fn fix_latin(s: String) -> String {
    if s.bytes().all(|b| b < 0x80) && s.chars().all(|c| (c as u32) < 0x80) {
        return s;
    }
    let bytes: Vec<u8> = s
        .chars()
        .map(|c| {
            let v = c as u32;
            debug_assert!(v < 0x100, "parser only widens single bytes");
            v as u8
        })
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
}

impl<R: Read> Iterator for Reader<R> {
    type Item = Result<XmlEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Done;
                self.pending = None;
                self.queue.clear();
                Some(Err(e))
            }
        }
    }
}

/// Parse a complete string into a vector of events (convenience for tests
/// and small documents; not for streaming use).
pub fn parse_events(xml: &str) -> Result<Vec<XmlEvent>> {
    Reader::from_str(xml).collect()
}

/// Parse a complete string under a recovery policy, returning the repaired
/// event stream and the faults that were fixed or contained along the way.
/// Convenience for tests and small documents; not for streaming use.
pub fn parse_events_recovering(
    xml: &str,
    policy: RecoveryPolicy,
) -> Result<(Vec<XmlEvent>, Vec<Fault>)> {
    let mut reader = Reader::from_str(xml).with_recovery(policy);
    let mut events = Vec::new();
    while let Some(ev) = reader.next_event()? {
        events.push(ev);
    }
    Ok((events, reader.take_faults()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(xml: &str) -> Vec<XmlEvent> {
        parse_events(xml).unwrap_or_else(|e| panic!("parse {xml:?}: {e}"))
    }

    fn err(xml: &str) -> XmlError {
        match parse_events(xml) {
            Ok(evs) => panic!("expected error for {xml:?}, got {evs:?}"),
            Err(e) => e,
        }
    }

    #[test]
    fn figure_1_stream() {
        // The exact document of Fig. 1 of the paper.
        let xml = r#"<?xml version="1.0"?><a><a><c/></a><b/><c/></a>"#;
        let evs = ok(xml);
        let rendered: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "<$>", "<a>", "<a>", "<c>", "</c>", "</a>", "<b>", "</b>", "<c>", "</c>", "</a>",
                "</$>"
            ]
        );
    }

    #[test]
    fn next_into_matches_next_event() {
        let xml = r#"<a x="1 &amp; 2"><b>t &lt; u</b><!--c--><?pi d?><c/></a>"#;
        let owned = ok(xml);
        let mut store = EventStore::new();
        let mut reader = Reader::from_str(xml);
        let mut ids = Vec::new();
        while let Some(id) = reader.next_into(&mut store).unwrap() {
            ids.push(id);
        }
        let via_store: Vec<XmlEvent> = ids
            .iter()
            .map(|id| store.get(*id).to_owned_event())
            .collect();
        assert_eq!(via_store, owned);
    }

    #[test]
    fn next_raw_matches_next_event() {
        let xml = "<a><b k='v'>x &amp; y</b></a>";
        let owned = ok(xml);
        let mut reader = Reader::from_str(xml);
        let mut seen = Vec::new();
        while let Some(raw) = reader.next_raw().unwrap() {
            seen.push(raw.to_owned_event());
        }
        assert_eq!(seen, owned);
    }

    #[test]
    fn attributes_and_both_quote_styles() {
        let evs = ok(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[1] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute::new("x", "1"));
                assert_eq!(attributes[1], Attribute::new("y", "two & three"));
            }
            other => panic!("expected start element, got {other:?}"),
        }
    }

    #[test]
    fn text_with_entities() {
        let evs = ok("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(evs[2], XmlEvent::text("1 < 2 && 3 > 2"));
    }

    #[test]
    fn cdata_is_text() {
        let evs = ok("<a><![CDATA[<not> & markup]]></a>");
        assert_eq!(evs[2], XmlEvent::text("<not> & markup"));
    }

    #[test]
    fn cdata_with_brackets() {
        let evs = ok("<a><![CDATA[x]]y]]]></a>");
        assert_eq!(evs[2], XmlEvent::text("x]]y]"));
    }

    #[test]
    fn comments_and_pis() {
        let evs = ok("<!-- head --><a><?pi some data?><!--in--></a><!--tail-->");
        assert_eq!(evs[1], XmlEvent::Comment(" head ".into()));
        assert_eq!(
            evs[3],
            XmlEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "some data".into()
            }
        );
        assert_eq!(evs[4], XmlEvent::Comment("in".into()));
        assert_eq!(evs[6], XmlEvent::Comment("tail".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = ok(r#"<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>"#);
        assert_eq!(evs[1], XmlEvent::open("a"));
    }

    #[test]
    fn self_closing_root() {
        let evs = ok("<a/>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartDocument,
                XmlEvent::open("a"),
                XmlEvent::close("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn utf8_text_roundtrips() {
        let evs = ok("<a>grüße 東京 🚀</a>");
        assert_eq!(evs[2], XmlEvent::text("grüße 東京 🚀"));
    }

    #[test]
    fn utf8_element_names() {
        let evs = ok("<grüße>x</grüße>");
        assert_eq!(evs[1].element_name(), Some("grüße"));
    }

    #[test]
    fn mismatched_tags_detected() {
        assert!(matches!(
            err("<a><b></a></b>"),
            XmlError::MismatchedTag { .. }
        ));
    }

    #[test]
    fn unexpected_eof_detected() {
        assert!(matches!(err("<a><b>"), XmlError::UnexpectedEof { .. }));
        assert!(matches!(
            err("<a attr="),
            XmlError::UnexpectedEof { .. } | XmlError::Syntax { .. }
        ));
    }

    #[test]
    fn trailing_content_detected() {
        assert!(matches!(err("<a/><b/>"), XmlError::TrailingContent { .. }));
        assert!(matches!(err("<a/>text"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn empty_document_detected() {
        assert!(matches!(err(""), XmlError::EmptyDocument));
        assert!(matches!(
            err("   <!-- only comment -->  "),
            XmlError::EmptyDocument
        ));
    }

    #[test]
    fn bad_entity_detected() {
        assert!(matches!(err("<a>&nope;</a>"), XmlError::BadEntity { .. }));
    }

    #[test]
    fn depth_is_tracked() {
        // Note: a self-closing `<c/>` never enters the open-element stack, so
        // an explicit pair is used here.
        let mut r = Reader::from_str("<a><b><c></c></b></a>");
        let mut max = 0;
        while let Some(ev) = r.next_event().unwrap() {
            let _ = ev;
            max = max.max(r.depth());
        }
        assert_eq!(max, 3);
    }

    #[test]
    fn whitespace_text_is_reported() {
        let evs = ok("<a> <b/> </a>");
        assert_eq!(evs[2], XmlEvent::text(" "));
        assert_eq!(evs[5], XmlEvent::text(" "));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut it = Reader::from_str("<a><b></a>");
        let mut saw_err = false;
        let mut after_err = 0;
        for item in &mut it {
            if saw_err {
                after_err += 1;
            }
            if item.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
        assert_eq!(after_err, 0);
    }

    #[test]
    fn error_positions_are_useful() {
        match err("<a>\n  <b></c></b></a>") {
            XmlError::MismatchedTag { position, .. } => {
                assert_eq!(position.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_document_mode_splits_documents() {
        let input = "<a><x/></a>\n<b/>  <c>t</c>";
        let events: Vec<XmlEvent> = Reader::from_bytes(input.as_bytes().to_vec())
            .multi_document()
            .collect::<Result<_>>()
            .unwrap();
        let rendered: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "<$>", "<a>", "<x>", "</x>", "</a>", "</$>", "<$>", "<b>", "</b>", "</$>", "<$>",
                "<c>", "t", "</c>", "</$>"
            ]
        );
    }

    #[test]
    fn multi_document_mode_with_prologs() {
        let input = "<?xml version=\"1.0\"?><a/><?xml version=\"1.0\"?><b/>";
        let events: Vec<XmlEvent> = Reader::from_bytes(input.as_bytes().to_vec())
            .multi_document()
            .collect::<Result<_>>()
            .unwrap();
        let docs = events
            .iter()
            .filter(|e| matches!(e, XmlEvent::StartDocument))
            .count();
        assert_eq!(docs, 2);
    }

    #[test]
    fn single_document_mode_still_rejects_trailing() {
        assert!(matches!(err("<a/><b/>"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn multi_document_mode_reports_errors_in_later_documents() {
        let input = "<a/><b><c></b>";
        let mut saw_err = false;
        for item in Reader::from_bytes(input.as_bytes().to_vec()).multi_document() {
            if item.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
    }

    fn repaired(xml: &str, policy: RecoveryPolicy) -> (Vec<String>, Vec<Fault>) {
        let (events, faults) = parse_events_recovering(xml, policy)
            .unwrap_or_else(|e| panic!("recovering parse of {xml:?}: {e}"));
        (events.iter().map(|e| e.to_string()).collect(), faults)
    }

    #[test]
    fn eof_inside_name_errors_cleanly() {
        // Regression: the name/text scan loops used to unwrap() the byte
        // after peeking; EOF mid-name must surface as a clean error.
        for xml in ["<ab", "<ab cd", "<a><b></b", "<a>text"] {
            assert!(
                matches!(err(xml), XmlError::UnexpectedEof { .. }),
                "on {xml:?}"
            );
        }
    }

    #[test]
    fn eof_positions_point_at_end_of_input() {
        for xml in ["<ab", "<a><b>", "<a attr"] {
            match err(xml) {
                XmlError::UnexpectedEof { position, .. } => {
                    assert_eq!(position.offset, xml.len() as u64, "on {xml:?}")
                }
                other => panic!("expected EOF error for {xml:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn strict_policy_is_the_default_and_unchanged() {
        let r = Reader::from_str("<a/>");
        assert_eq!(r.recovery_policy(), RecoveryPolicy::Strict);
        let (rendered, faults) = repaired("<a><b>x</b></a>", RecoveryPolicy::Strict);
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "x", "</b>", "</a>", "</$>"]
        );
        assert!(faults.is_empty());
    }

    #[test]
    fn repair_auto_closes_mismatched_tags() {
        // `</b>` is missing: the close of `a` auto-closes `b`.
        let (rendered, faults) = repaired("<a><b>x</a>", RecoveryPolicy::Repair);
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "x", "</b>", "</a>", "</$>"]
        );
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::MismatchedClose);
        assert_eq!(faults[0].action, FaultAction::AutoClosed);
        // Damage covers <b>'s open (tick 2) through the synthesized closes.
        assert_eq!(faults[0].event_from, 2);
        assert_eq!(faults[0].event_to, 5);
    }

    #[test]
    fn repair_drops_stray_closes() {
        let (rendered, faults) = repaired("<a><b/></c></a>", RecoveryPolicy::Repair);
        assert_eq!(rendered, vec!["<$>", "<a>", "<b>", "</b>", "</a>", "</$>"]);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::StrayClose);
        assert_eq!(faults[0].action, FaultAction::Dropped);
    }

    #[test]
    fn repair_replaces_bad_entities() {
        let (rendered, faults) = repaired("<a>x &nope; y</a>", RecoveryPolicy::Repair);
        assert_eq!(rendered, vec!["<$>", "<a>", "x \u{FFFD} y", "</a>", "</$>"]);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::BadEntity);
        assert_eq!(faults[0].action, FaultAction::Replaced);
    }

    #[test]
    fn repair_replaces_bad_entities_in_attributes() {
        let (events, faults) =
            parse_events_recovering("<a x='&bad;'/>", RecoveryPolicy::Repair).unwrap();
        match &events[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "\u{FFFD}");
            }
            other => panic!("expected start element, got {other:?}"),
        }
        assert_eq!(faults[0].kind, FaultKind::BadEntity);
    }

    #[test]
    fn repair_synthesizes_closes_on_truncation() {
        let (rendered, faults) = repaired("<a><b><c>partial", RecoveryPolicy::Repair);
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "<c>", "partial", "</c>", "</b>", "</a>", "</$>"]
        );
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Truncated);
        assert_eq!(faults[0].action, FaultAction::SynthesizedCloses);
        assert_eq!(faults[0].event_to, u64::MAX);
    }

    #[test]
    fn repair_treats_io_failure_as_truncation() {
        struct FailAfter(Vec<u8>, usize);
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Err(std::io::Error::other("connection reset"));
                }
                let n = buf.len().min(self.0.len() - self.1).min(3);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let mut r =
            Reader::new(FailAfter(b"<a><b>hi".to_vec(), 0)).with_recovery(RecoveryPolicy::Repair);
        let mut rendered = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            rendered.push(ev.to_string());
        }
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "hi", "</b>", "</a>", "</$>"]
        );
        assert!(r.truncated());
    }

    #[test]
    fn repair_drops_trailing_content() {
        let (rendered, faults) = repaired("<a/>junk<b/>", RecoveryPolicy::Repair);
        assert_eq!(rendered, vec!["<$>", "<a>", "</a>", "</$>"]);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::TrailingContent);
    }

    #[test]
    fn repair_resyncs_over_garbage_markup() {
        let (rendered, faults) = repaired("<a><b/><%%%><c/></a>", RecoveryPolicy::Repair);
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "</b>", "<c>", "</c>", "</a>", "</$>"]
        );
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Garbage);
        assert_eq!(faults[0].action, FaultAction::Dropped);
    }

    #[test]
    fn skip_subtree_discards_smallest_enclosing_element() {
        // Garbage inside <bad>: the whole <bad> subtree is skipped, the
        // sibling <c> survives.
        let (rendered, faults) = repaired(
            "<a><bad><x/><%%%><y/></bad><c/></a>",
            RecoveryPolicy::SkipSubtree,
        );
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<bad>", "<x>", "</x>", "</bad>", "<c>", "</c>", "</a>", "</$>"]
        );
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Garbage);
        assert_eq!(faults[0].action, FaultAction::SkippedSubtree);
    }

    #[test]
    fn skip_subtree_skim_honours_quotes_comments_and_cdata() {
        let xml = "<a><bad><%%%><x q=\"</bad>\"/><!-- </bad> --><![CDATA[</bad>]]></bad><c/></a>";
        let (rendered, _) = repaired(xml, RecoveryPolicy::SkipSubtree);
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<bad>", "</bad>", "<c>", "</c>", "</a>", "</$>"]
        );
    }

    #[test]
    fn skip_subtree_at_root_ends_document() {
        let (rendered, faults) = repaired("<a><%%%><x/></a>", RecoveryPolicy::SkipSubtree);
        assert_eq!(rendered, vec!["<$>", "<a>", "</a>", "</$>"]);
        assert_eq!(faults[0].action, FaultAction::SkippedSubtree);
    }

    #[test]
    fn recovery_always_yields_balanced_streams() {
        // Depth across the emitted stream never goes negative and ends at 0.
        for xml in [
            "<a><b>x</a>",
            "<a><b/></c></a>",
            "<a><b><c>partial",
            "<a/>junk",
            "<a><%%%></a>",
            "<a><b></b>",
            "",
            "<",
            "<a",
            "<!DOCT",
        ] {
            for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
                let (events, _) = parse_events_recovering(xml, policy)
                    .unwrap_or_else(|e| panic!("on {xml:?}: {e}"));
                let mut depth = 0i64;
                for ev in &events {
                    if ev.opens() {
                        depth += 1;
                    }
                    if ev.closes() {
                        depth -= 1;
                        assert!(depth >= 0, "negative depth on {xml:?}: {events:?}");
                    }
                }
                assert_eq!(depth, 0, "unbalanced stream on {xml:?}: {events:?}");
            }
        }
    }

    #[test]
    fn multi_document_recovery_preserves_later_documents() {
        let input = "<a><b>x</a>junk<c/>";
        let mut r = Reader::from_bytes(input.as_bytes().to_vec())
            .multi_document()
            .with_recovery(RecoveryPolicy::Repair);
        let mut rendered = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            rendered.push(ev.to_string());
        }
        assert_eq!(
            rendered,
            vec!["<$>", "<a>", "<b>", "x", "</b>", "</a>", "</$>", "<$>", "<c>", "</c>", "</$>"]
        );
    }

    #[test]
    fn fault_positions_point_at_the_corruption_site() {
        let xml = "<a><b>x</b></c></a>";
        let (_, faults) = repaired(xml, RecoveryPolicy::Repair);
        assert_eq!(faults.len(), 1);
        // The stray `</c>` starts at byte 11; the recorded position is the
        // name start (after `</`).
        assert_eq!(faults[0].position.offset, 13);
    }

    #[test]
    fn comment_with_embedded_dashes() {
        let evs = ok("<a><!--a-b--c--></a>");
        assert_eq!(evs[2], XmlEvent::Comment("a-b--c".into()));
    }

    #[test]
    fn pi_with_question_marks() {
        let evs = ok("<a><?p a?b??></a>");
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction {
                target: "p".into(),
                data: "a?b?".into()
            }
        );
    }

    // ----- structural fast path vs classic scanner (DESIGN.md §18) -----

    /// Drain one document through `next_into` under `scanner`, returning
    /// the stored events (re-owned for comparison), the fault log, the
    /// final position, and the terminal error (if any).
    fn drain_into(
        xml: &str,
        scanner: ScannerKind,
        policy: RecoveryPolicy,
        multi: bool,
    ) -> (Vec<XmlEvent>, Vec<Fault>, Position, Option<String>) {
        let mut reader = Reader::from_str(xml)
            .with_recovery(policy)
            .with_scanner(scanner);
        if multi {
            reader = reader.multi_document();
        }
        let mut store = EventStore::new();
        let mut events = Vec::new();
        let mut error = None;
        loop {
            match reader.next_into(&mut store) {
                Ok(Some(id)) => events.push(store.get(id).to_owned_event()),
                Ok(None) => break,
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
        (events, reader.take_faults(), reader.position(), error)
    }

    /// Both scanners must produce byte-identical events, faults (kind,
    /// position, action, detail, damage interval), final positions and
    /// errors — on any input, under every policy, single- and multi-doc.
    fn assert_scanners_agree(xml: &str) {
        for policy in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Repair,
            RecoveryPolicy::SkipSubtree,
        ] {
            for multi in [false, true] {
                let fast = drain_into(xml, ScannerKind::Fast, policy, multi);
                let classic = drain_into(xml, ScannerKind::Classic, policy, multi);
                assert_eq!(fast, classic, "{policy:?} multi={multi} on {xml:?}");
            }
        }
    }

    #[test]
    fn scanners_agree_on_clean_documents() {
        for xml in [
            r#"<?xml version="1.0"?><a><a><c/></a><b/><c/></a>"#,
            "<a><b attr='1' b=\"2\">text run</b><c/></a>",
            "<a  x = '1'   y=\"2\" ><b/></a>",
            "<root>plain text<child>nested</child>tail text</root>",
            "<a>\n  line\n  breaks\n</a>",
            "<a:ns x:y='1'><b-c.d/></a:ns>",
        ] {
            assert_scanners_agree(xml);
        }
    }

    #[test]
    fn scanners_agree_on_fallback_shapes() {
        // Every shape the fast path must hand back to the classic scanner.
        for xml in [
            "<a>x &amp; y</a>",                   // entity in text
            "<a k='v &lt; w'>t</a>",              // entity in attribute
            "<a><![CDATA[<raw> & bytes]]></a>",   // CDATA
            "<a><!-- comment --><?pi data?></a>", // comment + PI
            "<a>grüße 東京</a>",                  // UTF-8 text
            "<grüße küss='ö'>x</grüße>",          // UTF-8 names/values
            "<a x='v>w'>quoted gt</a>",           // `>` inside a quote
            "<a>text<b>more</b></a><!--tail-->",  // epilog constructs
        ] {
            assert_scanners_agree(xml);
        }
    }

    #[test]
    fn scanners_agree_on_malformed_input() {
        for xml in [
            "<a><b>x</b>",                // truncated (open elements at EOF)
            "<a><b>x</c></a>",            // mismatched close
            "<a><b>x</b></b></a>",        // stray close
            "<a><b x=unquoted>t</b></a>", // unquoted attribute value
            "<a><b <c>>t</a>",            // `<` inside a tag
            "<a>&bogus;</a>",             // undecodable entity
            "<a></a>trailing garbage",    // trailing content
            "<a><b/ ></a>",               // `/` not before `>`
            "<a></ a></a>",               // space before close name
            "<>empty</>",                 // empty names
        ] {
            assert_scanners_agree(xml);
        }
    }

    #[test]
    fn scanners_agree_on_multi_document_streams() {
        assert_scanners_agree("<a><b/>x</a><c>y</c> <d/>");
    }

    #[test]
    fn fast_path_preserves_positions_and_ticks() {
        // The stray `</c>` offset assertion of
        // `fault_positions_point_at_the_corruption_site`, through the fast
        // path: positions must be byte-identical even though the healthy
        // prefix was consumed in bulk.
        let xml = "<a><b>x</b></c></a>";
        let (_, faults, _, _) = drain_into(xml, ScannerKind::Fast, RecoveryPolicy::Repair, false);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].position.offset, 13);
    }

    #[test]
    fn fast_path_is_event_identical_across_buffer_refills() {
        // A document larger than BUF_SIZE forces constructs to straddle
        // refills; the fast path must fall back there without losing bytes.
        let mut xml = String::from("<root>");
        let filler = "x".repeat(97);
        for i in 0..200 {
            xml.push_str(&format!("<item id='{i}'>{filler}</item>"));
        }
        xml.push_str("</root>");
        assert!(xml.len() > BUF_SIZE);
        assert_scanners_agree(&xml);
    }
}
