//! A streaming, pull-based XML parser.
//!
//! [`Reader`] consumes bytes from any [`std::io::Read`] source and yields
//! [`XmlEvent`]s one at a time, using constant memory in the input size
//! (memory is bounded by the open-element stack, i.e. the document depth, and
//! the size of a single token). This is the property SPEX relies on: the
//! stream is never materialized.
//!
//! The parser is non-validating but checks well-formedness: tags must nest
//! properly, exactly one root element must exist, attribute values must be
//! quoted, and entities must be decodable.

use crate::error::{Position, Result, XmlError};
use crate::escape::unescape;
use crate::event::{Attribute, XmlEvent};
use std::io::Read;

const BUF_SIZE: usize = 8 * 1024;

/// Internal buffered byte source with single-byte lookahead and position
/// tracking.
struct Bytes<R: Read> {
    input: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    position: Position,
}

impl<R: Read> Bytes<R> {
    fn new(input: R) -> Self {
        Bytes {
            input,
            buf: vec![0; BUF_SIZE],
            pos: 0,
            len: 0,
            eof: false,
            position: Position::start(),
        }
    }

    fn fill(&mut self) -> Result<()> {
        if self.pos < self.len || self.eof {
            return Ok(());
        }
        loop {
            match self.input.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        self.fill()?;
        if self.pos < self.len {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    fn next(&mut self) -> Result<Option<u8>> {
        self.fill()?;
        if self.pos < self.len {
            let b = self.buf[self.pos];
            self.pos += 1;
            self.position.advance(b);
            Ok(Some(b))
        } else {
            Ok(None)
        }
    }

    /// Consume the next byte, failing with a syntax error on EOF.
    fn expect_any(&mut self, what: &str) -> Result<u8> {
        match self.next()? {
            Some(b) => Ok(b),
            None => Err(XmlError::UnexpectedEof {
                open_element: None,
                position: self.position,
            })
            .map_err(|e| attach_context(e, what)),
        }
    }
}

fn attach_context(e: XmlError, _what: &str) -> XmlError {
    e
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Nothing emitted yet: the next event is `StartDocument`.
    Fresh,
    /// Before the root element (prolog).
    Prolog,
    /// Inside the root element.
    Content,
    /// After the root element closed (epilog).
    Epilog,
    /// Multi-document mode: a new document begins; emit `EndDocument`
    /// first, then restart at `Fresh`.
    Boundary,
    /// `EndDocument` has been emitted (or a fatal error occurred).
    Done,
}

/// Streaming pull parser. See the [module documentation](self).
///
/// `Reader` implements [`Iterator`] over `Result<XmlEvent, XmlError>`; after
/// the first error (or after `EndDocument`) the iterator yields `None`.
pub struct Reader<R: Read> {
    bytes: Bytes<R>,
    state: State,
    /// Open-element stack (names), bounded by the document depth.
    stack: Vec<String>,
    /// An event parsed but not yet delivered (used for `<a/>`).
    pending: Option<XmlEvent>,
    /// Accept a sequence of documents back to back (see
    /// [`Reader::multi_document`]).
    multi: bool,
    /// A `<` was already consumed while detecting a document boundary in
    /// multi-document mode; the prolog continues right after it.
    lt_consumed: bool,
}

impl Reader<&'static [u8]> {
    /// Parse from a string slice. (Not the `FromStr` trait: the returned
    /// reader is a different `Reader` instantiation.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Reader<std::io::Cursor<Vec<u8>>> {
        Reader::new(std::io::Cursor::new(s.as_bytes().to_vec()))
    }

    /// Parse from an owned byte vector.
    pub fn from_bytes(bytes: Vec<u8>) -> Reader<std::io::Cursor<Vec<u8>>> {
        Reader::new(std::io::Cursor::new(bytes))
    }
}

impl<R: Read> Reader<R> {
    /// Create a reader over an arbitrary byte source.
    pub fn new(input: R) -> Self {
        Reader {
            bytes: Bytes::new(input),
            state: State::Fresh,
            stack: Vec::new(),
            pending: None,
            multi: false,
            lt_consumed: false,
        }
    }

    /// Accept a *sequence* of documents on one byte stream (back to back or
    /// whitespace-separated): after a root element closes, the next `<name`
    /// begins a new document — the reader emits `EndDocument` followed by a
    /// fresh `StartDocument`. This is the paper's unbounded-stream setting
    /// (§I): the SPEX engine evaluates consecutive documents on one
    /// evaluator without reset.
    pub fn multi_document(mut self) -> Self {
        self.multi = true;
        self
    }

    /// Current position in the input.
    pub fn position(&self) -> Position {
        self.bytes.position
    }

    /// Current element nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pull the next event. `Ok(None)` means the stream finished cleanly
    /// (after `EndDocument` was delivered).
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>> {
        if let Some(e) = self.pending.take() {
            return Ok(Some(e));
        }
        loop {
            match self.state {
                State::Fresh => {
                    self.state = State::Prolog;
                    return Ok(Some(XmlEvent::StartDocument));
                }
                State::Prolog => {
                    if let Some(e) = self.prolog_event()? {
                        return Ok(Some(e));
                    }
                    // prolog_event advanced the state; loop.
                }
                State::Content => return self.content_event().map(Some),
                State::Epilog => {
                    if let Some(e) = self.epilog_event()? {
                        return Ok(Some(e));
                    }
                    if self.state == State::Done || self.state == State::Boundary {
                        return Ok(Some(XmlEvent::EndDocument));
                    }
                }
                State::Boundary => {
                    self.state = State::Fresh;
                }
                State::Done => return Ok(None),
            }
        }
    }

    /// Handle one prolog construct. Returns an event to deliver, or `None`
    /// if the construct was consumed silently (whitespace, XML declaration,
    /// DOCTYPE) or the root element was opened (state switches to `Content`
    /// and the start-element event is stored in `pending`... no: returned).
    fn prolog_event(&mut self) -> Result<Option<XmlEvent>> {
        if !self.lt_consumed {
            self.skip_whitespace()?;
        }
        match if self.lt_consumed {
            Some(b'<')
        } else {
            self.bytes.peek()?
        } {
            None => Err(XmlError::EmptyDocument),
            Some(b'<') => {
                if self.lt_consumed {
                    self.lt_consumed = false;
                } else {
                    self.bytes.next()?;
                }
                match self.bytes.peek()? {
                    Some(b'?') => {
                        self.bytes.next()?;
                        Ok(self.parse_pi()?)
                    }
                    Some(b'!') => {
                        self.bytes.next()?;
                        match self.bytes.peek()? {
                            Some(b'-') => Ok(Some(self.parse_comment()?)),
                            Some(b'D') => {
                                self.skip_doctype()?;
                                Ok(None)
                            }
                            _ => Err(XmlError::syntax(
                                "unexpected `<!` construct in prolog",
                                self.bytes.position,
                            )),
                        }
                    }
                    Some(b'/') => Err(XmlError::syntax(
                        "close tag before any element was opened",
                        self.bytes.position,
                    )),
                    _ => {
                        let ev = self.parse_open_tag()?;
                        // A self-closing root (`<a/>`) leaves the stack empty:
                        // go straight to the epilog once the pending
                        // `EndElement` is delivered.
                        self.state = if self.stack.is_empty() {
                            State::Epilog
                        } else {
                            State::Content
                        };
                        Ok(Some(ev))
                    }
                }
            }
            Some(_) => Err(XmlError::syntax(
                "character data before the root element",
                self.bytes.position,
            )),
        }
    }

    fn content_event(&mut self) -> Result<XmlEvent> {
        // Text (possibly spanning CDATA sections) or markup.
        match self.bytes.peek()? {
            None => Err(XmlError::UnexpectedEof {
                open_element: self.stack.last().cloned(),
                position: self.bytes.position,
            }),
            Some(b'<') => self.markup_event(),
            Some(_) => {
                let text = self.parse_text()?;
                Ok(XmlEvent::Text(text))
            }
        }
    }

    /// Parse a `<...>` construct in content context.
    fn markup_event(&mut self) -> Result<XmlEvent> {
        self.bytes.next()?; // consume '<'
        match self.bytes.peek()? {
            Some(b'/') => {
                self.bytes.next()?;
                let ev = self.parse_close_tag()?;
                if self.stack.is_empty() {
                    self.state = State::Epilog;
                }
                Ok(ev)
            }
            Some(b'?') => {
                self.bytes.next()?;
                match self.parse_pi()? {
                    Some(ev) => Ok(ev),
                    // The XML declaration is only legal at the very start;
                    // treat it here as a syntax error.
                    None => Err(XmlError::syntax(
                        "XML declaration inside the document",
                        self.bytes.position,
                    )),
                }
            }
            Some(b'!') => {
                self.bytes.next()?;
                match self.bytes.peek()? {
                    Some(b'-') => self.parse_comment(),
                    Some(b'[') => {
                        let text = self.parse_cdata()?;
                        Ok(XmlEvent::Text(text))
                    }
                    _ => Err(XmlError::syntax(
                        "unexpected `<!` construct in content",
                        self.bytes.position,
                    )),
                }
            }
            _ => self.parse_open_tag(),
        }
    }

    fn epilog_event(&mut self) -> Result<Option<XmlEvent>> {
        self.skip_whitespace()?;
        match self.bytes.peek()? {
            None => {
                self.state = State::Done;
                Ok(None)
            }
            Some(b'<') => {
                self.bytes.next()?;
                match self.bytes.peek()? {
                    Some(b'?') => {
                        self.bytes.next()?;
                        Ok(self.parse_pi()?)
                    }
                    Some(b'!') => {
                        self.bytes.next()?;
                        match self.bytes.peek()? {
                            Some(b'-') => Ok(Some(self.parse_comment()?)),
                            Some(b'D') if self.multi => {
                                // DOCTYPE of the *next* document.
                                self.skip_doctype()?;
                                self.state = State::Boundary;
                                Ok(None)
                            }
                            _ => Err(XmlError::TrailingContent {
                                position: self.bytes.position,
                            }),
                        }
                    }
                    Some(b) if self.multi && is_name_start(b) => {
                        // A new root element: document boundary. The `<` is
                        // already consumed; the next prolog continues after
                        // it.
                        self.state = State::Boundary;
                        self.lt_consumed = true;
                        Ok(None)
                    }
                    _ => Err(XmlError::TrailingContent {
                        position: self.bytes.position,
                    }),
                }
            }
            Some(_) => Err(XmlError::TrailingContent {
                position: self.bytes.position,
            }),
        }
    }

    fn skip_whitespace(&mut self) -> Result<()> {
        while let Some(b) = self.bytes.peek()? {
            if b.is_ascii_whitespace() {
                self.bytes.next()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Parse a name (element or attribute). The first byte must already be
    /// valid; subsequent bytes follow the (ASCII-approximated) NameChar rules.
    /// Non-ASCII bytes are accepted verbatim so UTF-8 names pass through.
    fn parse_name(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let mut name = String::new();
        match self.bytes.peek()? {
            Some(b) if is_name_start(b) => {}
            _ => return Err(XmlError::syntax("expected a name", start)),
        }
        while let Some(b) = self.bytes.peek()? {
            if is_name_char(b) {
                name.push(self.bytes.next()?.unwrap() as char);
            } else if b >= 0x80 {
                // Pass through UTF-8 continuation/start bytes.
                name.push(self.bytes.next()?.unwrap() as char);
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(XmlError::syntax("empty name", start));
        }
        Ok(fix_latin(name))
    }

    fn parse_open_tag(&mut self) -> Result<XmlEvent> {
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace()?;
            match self.bytes.peek()? {
                Some(b'>') => {
                    self.bytes.next()?;
                    self.stack.push(name.clone());
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b'/') => {
                    self.bytes.next()?;
                    let b = self.bytes.expect_any("`>` after `/`")?;
                    if b != b'>' {
                        return Err(XmlError::syntax(
                            "expected `>` after `/` in empty-element tag",
                            self.bytes.position,
                        ));
                    }
                    // Self-closing element: two events, nothing pushed to the
                    // open-element stack (the element opens and closes
                    // atomically). If this was the root element the caller
                    // transitions to the epilog based on the empty stack.
                    self.pending = Some(XmlEvent::EndElement { name: name.clone() });
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace()?;
                    let eq = self.bytes.expect_any("`=` in attribute")?;
                    if eq != b'=' {
                        return Err(XmlError::syntax(
                            format!("expected `=` after attribute name `{attr_name}`"),
                            self.bytes.position,
                        ));
                    }
                    self.skip_whitespace()?;
                    let value = self.parse_attr_value()?;
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                Some(_) => {
                    return Err(XmlError::syntax(
                        "unexpected character in start tag",
                        self.bytes.position,
                    ))
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: Some(name),
                        position: self.bytes.position,
                    })
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let quote = self.bytes.expect_any("attribute value")?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::syntax("attribute value must be quoted", start));
        }
        let mut raw = String::new();
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b) if b == quote => break,
                Some(b'<') => {
                    return Err(XmlError::syntax(
                        "`<` in attribute value",
                        self.bytes.position,
                    ))
                }
                Some(b) => raw.push(b as char),
            }
        }
        let raw = fix_latin(raw);
        match unescape(&raw) {
            Some(v) => Ok(v.into_owned()),
            None => Err(XmlError::BadEntity {
                entity: raw,
                position: start,
            }),
        }
    }

    fn parse_close_tag(&mut self) -> Result<XmlEvent> {
        let pos = self.bytes.position;
        let name = self.parse_name()?;
        self.skip_whitespace()?;
        let b = self.bytes.expect_any("`>` in close tag")?;
        if b != b'>' {
            return Err(XmlError::syntax(
                "expected `>` in close tag",
                self.bytes.position,
            ));
        }
        match self.stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => Err(XmlError::MismatchedTag {
                expected: open,
                found: name,
                position: pos,
            }),
            None => Err(XmlError::syntax("close tag without open element", pos)),
        }
    }

    /// Parse raw character data up to the next `<`, decoding entities and
    /// merging adjacent CDATA sections.
    fn parse_text(&mut self) -> Result<String> {
        let start = self.bytes.position;
        let mut raw = String::new();
        while let Some(b) = self.bytes.peek()? {
            if b == b'<' {
                break;
            }
            raw.push(self.bytes.next()?.unwrap() as char);
        }
        let raw = fix_latin(raw);
        match unescape(&raw) {
            Some(v) => Ok(v.into_owned()),
            None => Err(XmlError::BadEntity {
                entity: raw,
                position: start,
            }),
        }
    }

    /// Parse a comment; the leading `<!` is already consumed and `-` peeked.
    fn parse_comment(&mut self) -> Result<XmlEvent> {
        let pos = self.bytes.position;
        for _ in 0..2 {
            let b = self.bytes.expect_any("comment opener")?;
            if b != b'-' {
                return Err(XmlError::syntax("malformed comment opener", pos));
            }
        }
        let mut content = String::new();
        let mut dashes = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b'-') => dashes += 1,
                Some(b'>') if dashes >= 2 => {
                    // remove the two trailing dashes we buffered
                    for _ in 0..dashes.saturating_sub(2) {
                        content.push('-');
                    }
                    return Ok(XmlEvent::Comment(fix_latin(content)));
                }
                Some(b) => {
                    for _ in 0..dashes {
                        content.push('-');
                    }
                    dashes = 0;
                    content.push(b as char);
                }
            }
        }
    }

    /// Parse `<![CDATA[ ... ]]>`; `<!` consumed, `[` peeked.
    fn parse_cdata(&mut self) -> Result<String> {
        let pos = self.bytes.position;
        for expected in b"[CDATA[" {
            let b = self.bytes.expect_any("CDATA opener")?;
            if b != *expected {
                return Err(XmlError::syntax("malformed CDATA opener", pos));
            }
        }
        let mut content = String::new();
        let mut brackets = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b']') => brackets += 1,
                Some(b'>') if brackets >= 2 => {
                    for _ in 0..brackets.saturating_sub(2) {
                        content.push(']');
                    }
                    return Ok(fix_latin(content));
                }
                Some(b) => {
                    for _ in 0..brackets {
                        content.push(']');
                    }
                    brackets = 0;
                    content.push(b as char);
                }
            }
        }
    }

    /// Parse a processing instruction; `<?` already consumed. Returns `None`
    /// for the XML declaration (`<?xml ...?>`), which is consumed silently.
    fn parse_pi(&mut self) -> Result<Option<XmlEvent>> {
        let target = self.parse_name()?;
        let mut data = String::new();
        let mut question = false;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: self.stack.last().cloned(),
                        position: self.bytes.position,
                    })
                }
                Some(b'?') => {
                    if question {
                        data.push('?');
                    }
                    question = true;
                }
                Some(b'>') if question => break,
                Some(b) => {
                    if question {
                        data.push('?');
                        question = false;
                    }
                    data.push(b as char);
                }
            }
        }
        if target.eq_ignore_ascii_case("xml") {
            return Ok(None);
        }
        let data = fix_latin(data.trim().to_string());
        Ok(Some(XmlEvent::ProcessingInstruction { target, data }))
    }

    /// Skip `<!DOCTYPE ...>`, including an internal subset `[...]`.
    fn skip_doctype(&mut self) -> Result<()> {
        // Consume "DOCTYPE"
        for expected in b"DOCTYPE" {
            let b = self.bytes.expect_any("DOCTYPE")?;
            if b != *expected {
                return Err(XmlError::syntax("malformed DOCTYPE", self.bytes.position));
            }
        }
        let mut depth = 0usize;
        loop {
            match self.bytes.next()? {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_element: None,
                        position: self.bytes.position,
                    })
                }
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }
}

/// Bytes were pushed into `String`s as single chars (latin-1 style); re-pack
/// any bytes ≥ 0x80 back into proper UTF-8.
///
/// The parser reads byte-wise and stores each byte as a `char`; for ASCII
/// documents this is already correct, and for UTF-8 input the bytes ≥ 0x80
/// were widened to chars U+0080..U+00FF. This helper re-encodes them as the
/// original byte sequence and validates the result as UTF-8; invalid UTF-8 is
/// replaced (lossily) so the parser never fails on encoding alone.
fn fix_latin(s: String) -> String {
    if s.bytes().all(|b| b < 0x80) && s.chars().all(|c| (c as u32) < 0x80) {
        return s;
    }
    let bytes: Vec<u8> = s
        .chars()
        .map(|c| {
            let v = c as u32;
            debug_assert!(v < 0x100, "parser only widens single bytes");
            v as u8
        })
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
}

impl<R: Read> Iterator for Reader<R> {
    type Item = Result<XmlEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Done;
                self.pending = None;
                Some(Err(e))
            }
        }
    }
}

/// Parse a complete string into a vector of events (convenience for tests
/// and small documents; not for streaming use).
pub fn parse_events(xml: &str) -> Result<Vec<XmlEvent>> {
    Reader::from_str(xml).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(xml: &str) -> Vec<XmlEvent> {
        parse_events(xml).unwrap_or_else(|e| panic!("parse {xml:?}: {e}"))
    }

    fn err(xml: &str) -> XmlError {
        match parse_events(xml) {
            Ok(evs) => panic!("expected error for {xml:?}, got {evs:?}"),
            Err(e) => e,
        }
    }

    #[test]
    fn figure_1_stream() {
        // The exact document of Fig. 1 of the paper.
        let xml = r#"<?xml version="1.0"?><a><a><c/></a><b/><c/></a>"#;
        let evs = ok(xml);
        let rendered: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "<$>", "<a>", "<a>", "<c>", "</c>", "</a>", "<b>", "</b>", "<c>", "</c>", "</a>",
                "</$>"
            ]
        );
    }

    #[test]
    fn attributes_and_both_quote_styles() {
        let evs = ok(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[1] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute::new("x", "1"));
                assert_eq!(attributes[1], Attribute::new("y", "two & three"));
            }
            other => panic!("expected start element, got {other:?}"),
        }
    }

    #[test]
    fn text_with_entities() {
        let evs = ok("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(evs[2], XmlEvent::text("1 < 2 && 3 > 2"));
    }

    #[test]
    fn cdata_is_text() {
        let evs = ok("<a><![CDATA[<not> & markup]]></a>");
        assert_eq!(evs[2], XmlEvent::text("<not> & markup"));
    }

    #[test]
    fn cdata_with_brackets() {
        let evs = ok("<a><![CDATA[x]]y]]]></a>");
        assert_eq!(evs[2], XmlEvent::text("x]]y]"));
    }

    #[test]
    fn comments_and_pis() {
        let evs = ok("<!-- head --><a><?pi some data?><!--in--></a><!--tail-->");
        assert_eq!(evs[1], XmlEvent::Comment(" head ".into()));
        assert_eq!(
            evs[3],
            XmlEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "some data".into()
            }
        );
        assert_eq!(evs[4], XmlEvent::Comment("in".into()));
        assert_eq!(evs[6], XmlEvent::Comment("tail".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = ok(r#"<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>"#);
        assert_eq!(evs[1], XmlEvent::open("a"));
    }

    #[test]
    fn self_closing_root() {
        let evs = ok("<a/>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartDocument,
                XmlEvent::open("a"),
                XmlEvent::close("a"),
                XmlEvent::EndDocument
            ]
        );
    }

    #[test]
    fn utf8_text_roundtrips() {
        let evs = ok("<a>grüße 東京 🚀</a>");
        assert_eq!(evs[2], XmlEvent::text("grüße 東京 🚀"));
    }

    #[test]
    fn utf8_element_names() {
        let evs = ok("<grüße>x</grüße>");
        assert_eq!(evs[1].element_name(), Some("grüße"));
    }

    #[test]
    fn mismatched_tags_detected() {
        assert!(matches!(
            err("<a><b></a></b>"),
            XmlError::MismatchedTag { .. }
        ));
    }

    #[test]
    fn unexpected_eof_detected() {
        assert!(matches!(err("<a><b>"), XmlError::UnexpectedEof { .. }));
        assert!(matches!(
            err("<a attr="),
            XmlError::UnexpectedEof { .. } | XmlError::Syntax { .. }
        ));
    }

    #[test]
    fn trailing_content_detected() {
        assert!(matches!(err("<a/><b/>"), XmlError::TrailingContent { .. }));
        assert!(matches!(err("<a/>text"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn empty_document_detected() {
        assert!(matches!(err(""), XmlError::EmptyDocument));
        assert!(matches!(
            err("   <!-- only comment -->  "),
            XmlError::EmptyDocument
        ));
    }

    #[test]
    fn bad_entity_detected() {
        assert!(matches!(err("<a>&nope;</a>"), XmlError::BadEntity { .. }));
    }

    #[test]
    fn depth_is_tracked() {
        // Note: a self-closing `<c/>` never enters the open-element stack, so
        // an explicit pair is used here.
        let mut r = Reader::from_str("<a><b><c></c></b></a>");
        let mut max = 0;
        while let Some(ev) = r.next_event().unwrap() {
            let _ = ev;
            max = max.max(r.depth());
        }
        assert_eq!(max, 3);
    }

    #[test]
    fn whitespace_text_is_reported() {
        let evs = ok("<a> <b/> </a>");
        assert_eq!(evs[2], XmlEvent::text(" "));
        assert_eq!(evs[5], XmlEvent::text(" "));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut it = Reader::from_str("<a><b></a>");
        let mut saw_err = false;
        let mut after_err = 0;
        for item in &mut it {
            if saw_err {
                after_err += 1;
            }
            if item.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
        assert_eq!(after_err, 0);
    }

    #[test]
    fn error_positions_are_useful() {
        match err("<a>\n  <b></c></b></a>") {
            XmlError::MismatchedTag { position, .. } => {
                assert_eq!(position.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_document_mode_splits_documents() {
        let input = "<a><x/></a>\n<b/>  <c>t</c>";
        let events: Vec<XmlEvent> = Reader::from_bytes(input.as_bytes().to_vec())
            .multi_document()
            .collect::<Result<_>>()
            .unwrap();
        let rendered: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "<$>", "<a>", "<x>", "</x>", "</a>", "</$>", "<$>", "<b>", "</b>", "</$>", "<$>",
                "<c>", "t", "</c>", "</$>"
            ]
        );
    }

    #[test]
    fn multi_document_mode_with_prologs() {
        let input = "<?xml version=\"1.0\"?><a/><?xml version=\"1.0\"?><b/>";
        let events: Vec<XmlEvent> = Reader::from_bytes(input.as_bytes().to_vec())
            .multi_document()
            .collect::<Result<_>>()
            .unwrap();
        let docs = events
            .iter()
            .filter(|e| matches!(e, XmlEvent::StartDocument))
            .count();
        assert_eq!(docs, 2);
    }

    #[test]
    fn single_document_mode_still_rejects_trailing() {
        assert!(matches!(err("<a/><b/>"), XmlError::TrailingContent { .. }));
    }

    #[test]
    fn multi_document_mode_reports_errors_in_later_documents() {
        let input = "<a/><b><c></b>";
        let mut saw_err = false;
        for item in Reader::from_bytes(input.as_bytes().to_vec()).multi_document() {
            if item.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn comment_with_embedded_dashes() {
        let evs = ok("<a><!--a-b--c--></a>");
        assert_eq!(evs[2], XmlEvent::Comment("a-b--c".into()));
    }

    #[test]
    fn pi_with_question_marks() {
        let evs = ok("<a><?p a?b??></a>");
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction {
                target: "p".into(),
                data: "a?b?".into()
            }
        );
    }
}
