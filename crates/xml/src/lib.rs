//! # spex-xml — XML stream substrate for SPEX
//!
//! This crate implements the XML stream data model of the SPEX paper
//! (*An Evaluation of Regular Path Expressions with Qualifiers against XML
//! Streams*, §II.1): an XML stream is the sequence of document messages
//! produced by a depth-first left-to-right traversal of the document tree,
//! wrapped in a start-document and an end-document message.
//!
//! Everything is written from scratch — no third-party XML parser is used —
//! because building the substrate is part of the reproduction.
//!
//! Contents:
//!
//! * [`event`] — the [`XmlEvent`] message type (SAX-like events),
//! * [`reader`] — a streaming, pull-based, non-validating XML parser
//!   ([`Reader`]) that never materializes the document,
//! * [`writer`] — an escaping serializer ([`Writer`]) turning event streams
//!   back into XML text,
//! * [`tree`] — an arena-allocated in-memory document tree ([`Document`]),
//!   used by the in-memory baselines and as the test oracle,
//! * [`symbol`] — label interning ([`SymbolTable`]): dense `u32` symbols
//!   assigned at parse time so upper layers route by handle, not string,
//! * [`store`] — the append-only event arena ([`EventStore`]) and the
//!   borrowing [`RawEvent`] view: one shared byte buffer per run, `u32`
//!   handles everywhere else,
//! * [`scan`] — vendored SWAR `memchr`/`memchr2`/`memchr3` delimiter
//!   search: the branch-light primitives under [`Reader`]'s structural fast
//!   path ([`ScannerKind`], DESIGN.md §18) and the server's event-horizon
//!   scanner,
//! * [`escape`] — text/attribute escaping and entity decoding,
//! * [`namespaces`] — streaming prefix→URI resolution (the "technical, but
//!   not difficult" extension the paper sets aside in §II.1),
//! * [`stats`] — stream statistics (size, element count, maximum depth)
//!   matching the figures reported in the paper's evaluation section.
//!
//! DESIGN.md §10 specifies the recovery layer built on [`Reader`]'s fault
//! reporting, and DESIGN.md §11 the zero-copy pipeline around
//! [`EventStore`]. This crate deliberately does *not* depend on
//! `spex-trace`: consumers report the reader's own counters
//! ([`Reader::events_emitted`], `position`, `faults`) after the stream
//! drains (DESIGN.md §13).
//!
//! ## Example
//!
//! ```
//! use spex_xml::{Reader, XmlEvent};
//!
//! let xml = "<a><b attr='1'>hi</b></a>";
//! let events: Vec<XmlEvent> = Reader::from_str(xml)
//!     .map(|r| r.unwrap())
//!     .collect();
//! assert!(matches!(events.first(), Some(XmlEvent::StartDocument)));
//! assert!(matches!(events.last(), Some(XmlEvent::EndDocument)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Input-handling code must never panic on malformed bytes: unwrap/expect in
// non-test code is a lint error (the fault-injection sweep in tests/recovery.rs
// enforces the same property dynamically).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod error;
pub mod escape;
pub mod event;
pub mod namespaces;
pub mod reader;
pub mod recover;
pub mod scan;
pub mod stats;
pub mod store;
pub mod symbol;
pub mod tree;
pub mod writer;

pub use error::{Position, XmlError, XmlErrorKind};
pub use event::{Attribute, XmlEvent};
pub use reader::{Reader, ScannerKind};
pub use recover::{Fault, FaultAction, FaultKind, RecoveryPolicy};
pub use stats::StreamStats;
pub use store::{AttrsView, EventId, EventStore, RawEvent, StoredEvent, StoredKind};
pub use symbol::{Symbol, SymbolTable, DOC_SYMBOL};
pub use tree::{Document, NodeId, NodeKind, TreeBuilder};
pub use writer::{WriteOptions, Writer};
