//! Coverage for public API entry points not exercised by the module tests:
//! file/stream-oriented constructors and error paths.

use spex_xml::{Document, Reader, StreamStats, WriteOptions, Writer, XmlEvent};
use std::io::Write as _;

#[test]
fn parse_reader_streams_from_io() {
    let xml = b"<r><a>1</a><b/></r>".to_vec();
    let doc = Document::parse_reader(std::io::Cursor::new(xml)).unwrap();
    assert_eq!(doc.element_count(), 3);
    assert_eq!(doc.to_xml(), "<r><a>1</a><b></b></r>");
}

#[test]
fn parse_reader_from_file() {
    let dir = std::env::temp_dir().join("spex-xml-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.xml");
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all("<r><x/></r>".as_bytes()).unwrap();
    drop(f);
    let doc = Document::parse_reader(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(doc.element_count(), 2);
}

#[test]
fn reader_over_chunked_io() {
    /// Returns at most 3 bytes per read, splitting tokens across calls.
    struct Trickle(Vec<u8>, usize);
    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.1 >= self.0.len() {
                return Ok(0);
            }
            let n = buf.len().min(3).min(self.0.len() - self.1);
            buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
            self.1 += n;
            Ok(n)
        }
    }
    let xml = r#"<root attr="value with spaces"><child>text &amp; more</child></root>"#;
    let events: Vec<XmlEvent> = Reader::new(Trickle(xml.as_bytes().to_vec(), 0))
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(events, spex_xml::reader::parse_events(xml).unwrap());
}

#[test]
fn writer_reports_io_errors() {
    /// A sink that fails after a few bytes.
    struct Full(usize);
    impl std::io::Write for Full {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.0 == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            let n = buf.len().min(self.0);
            self.0 -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut w = Writer::new(Full(4));
    let mut failed = false;
    for ev in spex_xml::reader::parse_events("<aaaa><bbbb/></aaaa>").unwrap() {
        if w.write(&ev).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the injected I/O failure must surface");
}

#[test]
fn stats_of_str_propagates_parse_errors() {
    assert!(StreamStats::of_str("<a><b></a>").is_err());
}

#[test]
fn pretty_writer_handles_mixed_content() {
    let events = spex_xml::reader::parse_events("<a>t<b/>u</a>").unwrap();
    let mut w = Writer::with_options(
        Vec::new(),
        WriteOptions {
            declaration: false,
            indent: Some(2),
        },
    );
    w.write_all(&events).unwrap();
    let s = String::from_utf8(w.into_inner().unwrap()).unwrap();
    // Mixed content keeps its text; reparsing preserves the text pieces.
    let roundtrip = spex_xml::reader::parse_events(&s).unwrap();
    let texts: Vec<&str> = roundtrip
        .iter()
        .filter_map(|e| match e {
            XmlEvent::Text(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();
    assert!(texts.concat().contains('t'));
    assert!(texts.concat().contains('u'));
}
