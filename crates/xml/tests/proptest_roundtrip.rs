//! Property-based tests for the XML substrate:
//!
//! * serialize → parse → identical event stream / tree,
//! * the parser never panics on arbitrary byte soup,
//! * stream statistics agree with the materialized tree.

use proptest::prelude::*;
use spex_xml::{Attribute, Document, NodeId, Reader, StreamStats, Writer, XmlEvent};

/// A strategy for element/attribute names.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

/// Text without any constraints the escaper can't handle.
fn text_strategy() -> impl Strategy<Value = String> {
    // Includes markup characters and non-ASCII to exercise escaping.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('é'),
            Just('質'),
        ],
        1..20,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// Recursive strategy for a subtree, returned as a balanced event list.
fn subtree_strategy(depth: u32) -> impl Strategy<Value = Vec<XmlEvent>> {
    let leaf = prop_oneof![
        text_strategy().prop_map(|t| vec![XmlEvent::Text(t)]),
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3)
        )
            .prop_map(|(n, attrs)| {
                let attributes = dedup_attrs(attrs);
                vec![
                    XmlEvent::StartElement {
                        name: n.clone(),
                        attributes,
                    },
                    XmlEvent::EndElement { name: n },
                ]
            }),
    ];
    leaf.prop_recursive(depth, 64, 4, |inner| {
        (name_strategy(), proptest::collection::vec(inner, 0..4)).prop_map(|(n, kids)| {
            let mut events = vec![XmlEvent::open(n.clone())];
            for k in kids {
                events.extend(k);
            }
            events.push(XmlEvent::close(n));
            events
        })
    })
}

fn dedup_attrs(attrs: Vec<(String, String)>) -> Vec<Attribute> {
    let mut seen = std::collections::HashSet::new();
    attrs
        .into_iter()
        .filter(|(n, _)| seen.insert(n.clone()))
        .map(|(n, v)| Attribute::new(n, v))
        .collect()
}

/// A full document event stream: StartDocument, one root wrapping the
/// subtree, EndDocument.
fn document_strategy() -> impl Strategy<Value = Vec<XmlEvent>> {
    (
        name_strategy(),
        proptest::collection::vec(subtree_strategy(3), 0..4),
    )
        .prop_map(|(root, kids)| {
            let mut events = vec![XmlEvent::StartDocument, XmlEvent::open(root.clone())];
            for k in kids {
                events.extend(k);
            }
            events.push(XmlEvent::close(root));
            events.push(XmlEvent::EndDocument);
            events
        })
}

/// Merge adjacent text events — the parser merges raw text runs, so the
/// comparison must too.
fn normalize(events: &[XmlEvent]) -> Vec<XmlEvent> {
    let mut out: Vec<XmlEvent> = Vec::with_capacity(events.len());
    for e in events {
        if let (Some(XmlEvent::Text(prev)), XmlEvent::Text(t)) = (out.last_mut(), e) {
            prev.push_str(t);
            continue;
        }
        out.push(e.clone());
    }
    // Drop empty text events, which serialize to nothing.
    out.retain(|e| !matches!(e, XmlEvent::Text(t) if t.is_empty()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(events in document_strategy()) {
        let mut w = Writer::new(Vec::new());
        w.write_all(&events).unwrap();
        let xml = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let reparsed: Vec<XmlEvent> = Reader::from_bytes(xml.clone().into_bytes())
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nxml: {xml}"));
        prop_assert_eq!(normalize(&reparsed), normalize(&events));
    }

    #[test]
    fn tree_roundtrip(events in document_strategy()) {
        let doc = Document::from_events(events.clone()).unwrap();
        let back = doc.subtree_events(NodeId::ROOT);
        prop_assert_eq!(normalize(&back), normalize(&events));
    }

    #[test]
    fn stats_agree_with_tree(events in document_strategy()) {
        let stats = StreamStats::of_events(&events);
        let doc = Document::from_events(events).unwrap();
        prop_assert_eq!(stats.elements, doc.element_count());
        prop_assert_eq!(stats.max_depth, doc.max_depth());
    }

    #[test]
    fn parser_never_panics_on_ascii_soup(input in "[ -~]{0,200}") {
        // Errors allowed; panics are not.
        let _ = spex_xml::reader::parse_events(&input);
    }

    #[test]
    fn parser_never_panics_on_bytes(input in proptest::collection::vec(any::<u8>(), 0..200)) {
        for item in Reader::from_bytes(input) {
            if item.is_err() {
                break;
            }
        }
    }

    #[test]
    fn parser_accepts_its_own_pretty_output(events in document_strategy()) {
        let mut w = Writer::with_options(
            Vec::new(),
            spex_xml::WriteOptions { declaration: true, indent: Some(2) },
        );
        w.write_all(&events).unwrap();
        let xml = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let reparsed: Result<Vec<XmlEvent>, _> = Reader::from_bytes(xml.into_bytes()).collect();
        prop_assert!(reparsed.is_ok());
    }
}
