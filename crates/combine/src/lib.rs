//! Multi-tenant query-set combination: N standing rpeq queries, one shared
//! SPEX transducer network.
//!
//! The paper's conclusion (§IX) names multi-query processing as the road
//! ahead: "a single transducer network can be used for processing several
//! queries having common subparts". This crate is that combiner. It turns a
//! registration list `[(name, rpeq)]` into one
//! [`spex_core::multi::SharedQuerySet`] in three moves:
//!
//! 1. **Normalization** ([`normalize`]): every query is rewritten into a
//!    canonical normal form (alternation sorted and deduplicated,
//!    concatenation flattened, closures collapsed, qualifier stacks
//!    canonically ordered), so structurally-equal-but-differently-written
//!    expressions become *identical* ASTs. See [`norm`].
//! 2. **Hash-consing + step trie** ([`canon`], [`trie`]): normalized chain
//!    steps and qualifiers are interned into integer [`canon::CanonId`]s,
//!    and the queries are walked through a trie keyed on those ids — every
//!    shared step prefix, and every shared qualifier at a shared tape,
//!    compiles exactly once.
//! 3. **Whole-query dedup with aliased sinks**: queries whose *entire*
//!    canonical form is equal (the limit case of common-suffix merging —
//!    the downstream context is identical) share one physical output
//!    transducer; each registered name still gets its own logical result
//!    stream, fanned out at result-delivery time
//!    ([`spex_core::SinkGroup`]). Result delivery is the rare path, so
//!    aliases are free per event — this is what makes per-event cost scale
//!    with the number of *distinct* query structures, not registrations.
//!
//! [`combine`] returns the shared set plus a [`SharingReport`];
//! [`canonical_key`] is the order- and spelling-insensitive cache key the
//! spex-serve plan registry uses.
//!
//! ```
//! use spex_combine::combine;
//!
//! let combined = combine(&[
//!     ("cities".into(), "_*.country.city".parse().unwrap()),
//!     ("also".into(), "_*.(country).city".parse().unwrap()), // same query
//!     ("names".into(), "_*.country.name".parse().unwrap()),
//! ])
//! .unwrap();
//! assert_eq!(combined.report.queries, 3);
//! assert_eq!(combined.report.distinct, 2); // "also" aliases "cities"
//! assert!(combined.set.degree() < combined.set.unshared_degree());
//! ```

#![deny(missing_docs)]

pub mod canon;
pub mod norm;
pub mod trie;

pub use norm::{normalize, nullable};

use canon::CanonPool;
use spex_core::compile::{check_compilable, translate, translate_qualifier, CompiledNetwork};
use spex_core::multi::SharedQuerySet;
use spex_core::network::NetworkBuilder;
use spex_core::CompileError;
use spex_query::Rpeq;
use std::collections::HashMap;
use trie::{StepKey, StepTrie};

/// How much structure a combined set shares — the combiner's census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingReport {
    /// Logical queries registered (after dropping exact duplicate
    /// `(name, canonical expression)` registrations).
    pub queries: usize,
    /// Distinct canonical queries — the number of physical sinks.
    pub distinct: usize,
    /// Chain steps walked over all distinct queries (trie edges traversed).
    pub steps_total: usize,
    /// Steps that were already compiled when reached (trie hits); each hit
    /// is a whole shared sub-network.
    pub steps_shared: usize,
    /// The shared network's degree.
    pub degree: usize,
    /// Summed degree of the queries compiled independently.
    pub unshared_degree: usize,
}

/// A combined query set: the shared network plus its sharing census.
#[derive(Debug)]
pub struct Combined {
    /// The shared multi-sink query set, ready to run on either engine.
    pub set: SharedQuerySet,
    /// What was shared.
    pub report: SharingReport,
}

/// Combine a registration list into one shared network. Names need not be
/// unique; exact duplicate `(name, canonical expression)` registrations are
/// dropped (a registration list is a set). The resulting logical query
/// order — [`SharedQuerySet::ids`] — is sorted by `(name, canonical
/// expression)`, so any registration order of the same set produces an
/// identical `SharedQuerySet` (this is what makes [`canonical_key`] sound
/// as a cache key).
///
/// # Errors
///
/// [`CompileError`] if any query falls outside the compilable fragment.
///
/// # Panics
///
/// If `queries` is empty (a network needs at least one sink).
pub fn combine(queries: &[(String, Rpeq)]) -> Result<Combined, CompileError> {
    assert!(!queries.is_empty(), "cannot combine an empty query set");
    for (_, q) in queries {
        check_compilable(q)?;
    }
    // Normalize, then order registrations canonically and drop exact
    // duplicates.
    let mut entries: Vec<(String, String, Rpeq, &Rpeq)> = queries
        .iter()
        .map(|(name, q)| {
            let n = normalize(q);
            (name.clone(), n.to_string(), n, q)
        })
        .collect();
    entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    entries.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    let (mut builder, source) = NetworkBuilder::with_input();
    let mut pool = CanonPool::new();
    let mut step_trie = StepTrie::new(source);
    // Canonical query string → physical sink slot.
    let mut slot_by_key: HashMap<String, usize> = HashMap::new();
    let mut ids = Vec::with_capacity(entries.len());
    let mut slot_of = Vec::with_capacity(entries.len());
    let mut unshared_degree = 0usize;
    let (mut steps_total, mut steps_shared) = (0usize, 0usize);
    for (name, key, normalized, original) in &entries {
        ids.push(name.clone());
        unshared_degree += CompiledNetwork::compile(original).degree();
        if let Some(&slot) = slot_by_key.get(key) {
            slot_of.push(slot); // whole-query alias: share the sink.
            continue;
        }
        let mut node = step_trie.root();
        for step in chain_of(normalized) {
            let (base, qualifiers) = unwrap_qualifiers(step);
            let base_key = StepKey::Step(pool.intern(base));
            let (next, hit) =
                step_trie.follow_or_insert(node, base_key, |t| translate(base, &mut builder, t));
            steps_total += 1;
            steps_shared += usize::from(hit);
            node = next;
            for qual in qualifiers {
                let qual_key = StepKey::Qual(pool.intern(qual));
                let (next, hit) = step_trie.follow_or_insert(node, qual_key, |t| {
                    translate_qualifier(qual, &mut builder, t)
                });
                steps_total += 1;
                steps_shared += usize::from(hit);
                node = next;
            }
        }
        builder.add_sink(step_trie.tape(node));
        let slot = slot_by_key.len();
        slot_by_key.insert(key.clone(), slot);
        slot_of.push(slot);
    }
    let spec = builder.finish();
    let report = SharingReport {
        queries: ids.len(),
        distinct: slot_by_key.len(),
        steps_total,
        steps_shared,
        degree: spec.degree(),
        unshared_degree,
    };
    let set = SharedQuerySet::from_parts(spec, ids, slot_of, unshared_degree);
    Ok(Combined { set, report })
}

/// Convenience: [`combine`], keeping only the shared set.
pub fn combine_set(queries: &[(String, Rpeq)]) -> Result<SharedQuerySet, CompileError> {
    combine(queries).map(|c| c.set)
}

/// Canonicalize a registration list: normalize every expression, sort by
/// `(name, canonical expression)` and drop exact duplicates — the same
/// transformation [`combine`] applies internally, exposed so protocol
/// boundaries (the spex-serve session) can adopt the combiner's logical
/// query order up front. After this, every positional index — plan sinks,
/// per-query delivery counters, durable `queries.txt` lines, resume
/// received-counts — speaks one order, whatever order the client
/// registered in.
pub fn canonicalize_registrations(queries: &[(String, Rpeq)]) -> Vec<(String, Rpeq)> {
    let mut entries: Vec<(String, String, Rpeq)> = queries
        .iter()
        .map(|(name, q)| {
            let n = normalize(q);
            (name.clone(), n.to_string(), n)
        })
        .collect();
    entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    entries.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    entries.into_iter().map(|(name, _, q)| (name, q)).collect()
}

/// The canonical, order- and spelling-insensitive cache key of a
/// registration list: sorted, deduplicated `name=canonical-expression`
/// lines. Two lists with equal keys combine to identical
/// [`SharedQuerySet`]s (same ids, same slots, same network), so a compiled
/// plan cached under this key serves every equivalent registration order —
/// the spex-serve plan registry keys its LRU on this.
pub fn canonical_key(queries: &[(String, Rpeq)]) -> String {
    let mut lines: Vec<String> = queries
        .iter()
        .map(|(name, q)| format!("{name}={}\n", normalize(q)))
        .collect();
    lines.sort();
    lines.dedup();
    lines.concat()
}

/// Flatten a normalized query into its top-level concatenation chain.
fn chain_of(query: &Rpeq) -> Vec<&Rpeq> {
    let mut out = Vec::new();
    fn go<'a>(q: &'a Rpeq, out: &mut Vec<&'a Rpeq>) {
        match q {
            Rpeq::Concat(a, b) => {
                go(a, out);
                go(b, out);
            }
            other => out.push(other),
        }
    }
    go(query, &mut out);
    out
}

/// Split a chain step into its base expression and qualifier stack (outermost
/// last) — the trie walks the base edge first, then one edge per qualifier,
/// mirroring how `translate` compiles `Qualified`.
fn unwrap_qualifiers(step: &Rpeq) -> (&Rpeq, Vec<&Rpeq>) {
    let mut qualifiers = Vec::new();
    let mut base = step;
    while let Rpeq::Qualified(b, q) = base {
        qualifiers.push(q.as_ref());
        base = b;
    }
    qualifiers.reverse();
    (base, qualifiers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(texts: &[&str]) -> Vec<(String, Rpeq)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("q{i}"), t.parse().unwrap()))
            .collect()
    }

    #[test]
    fn spelling_variants_fully_alias() {
        let c = combine(&qs(&["_*.(b|a).c", "_*.(a|b).c", "_*.((a)|b).(c)"])).unwrap();
        assert_eq!(c.report.queries, 3);
        assert_eq!(c.report.distinct, 1);
        assert_eq!(c.set.spec().sink_count(), 1);
        // One OU serves all three logical streams.
        let desc = c.set.spec().describe();
        assert_eq!(desc.iter().filter(|d| *d == "OU").count(), 1);
    }

    #[test]
    fn prefix_sharing_via_the_trie() {
        let c = combine(&qs(&["_*.country.city", "_*.country.name"])).unwrap();
        assert_eq!(c.report.distinct, 2);
        assert!(c.report.steps_shared >= 2); // `_*` and `country` hit twice
        let desc = c.set.spec().describe();
        assert_eq!(desc.iter().filter(|d| *d == "CH(country)").count(), 1);
    }

    #[test]
    fn qualifier_subnetworks_are_hash_consed() {
        // The `[meta.lang]` qualifier compiles once for both queries —
        // same tape, same canonical qualifier.
        let c = combine(&qs(&["_*.p[meta.lang].a", "_*.p[(meta).lang].b"])).unwrap();
        let desc = c.set.spec().describe();
        assert_eq!(desc.iter().filter(|d| d.starts_with("VC")).count(), 1);
    }

    #[test]
    fn qualified_and_bare_steps_share_the_base_child() {
        // `x.a.y` and `x.a[q].z` share CH(x) *and* CH(a): the qualifier is
        // a separate trie edge wrapped around the shared base tape.
        let c = combine(&qs(&["x.a.y", "x.a[q].z"])).unwrap();
        let desc = c.set.spec().describe();
        assert_eq!(desc.iter().filter(|d| *d == "CH(a)").count(), 1);
    }

    #[test]
    fn registration_order_is_immaterial() {
        let a = combine(&qs(&["a.b", "c[d]", "_*.x"])).unwrap();
        let mut rev: Vec<(String, Rpeq)> = qs(&["a.b", "c[d]", "_*.x"]);
        rev.reverse();
        // Re-number the names so the *sets* are equal despite the reversed
        // registration order.
        for (i, e) in rev.iter_mut().enumerate() {
            e.0 = format!("q{}", 2 - i);
        }
        let b = combine(&rev).unwrap();
        assert_eq!(a.set.ids(), b.set.ids());
        assert_eq!(a.set.slot_of(), b.set.slot_of());
        assert_eq!(a.set.spec().describe(), b.set.spec().describe());
        assert_eq!(
            canonical_key(&qs(&["a.b", "c[d]", "_*.x"])),
            canonical_key(&rev)
        );
    }

    #[test]
    fn duplicate_registrations_collapse() {
        let c = combine(&[
            ("x".to_string(), "a.b".parse().unwrap()),
            ("x".to_string(), "a.(b)".parse().unwrap()),
        ])
        .unwrap();
        assert_eq!(c.set.ids(), ["x"]);
        assert_eq!(c.report.queries, 1);
    }

    #[test]
    fn degree_strictly_decreases_on_overlap() {
        let c = combine(&qs(&[
            "_*.catalog.product.name",
            "_*.catalog.product.price",
            "_*.catalog.product[meta.lang].name",
            "_*.catalog.vendor.name",
        ]))
        .unwrap();
        assert!(c.set.degree() < c.set.unshared_degree());
    }

    #[test]
    fn combined_counts_match_independent_evaluation() {
        let texts = [
            "_*.a.b",
            "_*.(b|a)",
            "_*.a[b].c",
            "a.a",
            "_*.a.b", // alias of the first (after q-name renumbering below)
        ];
        // Give the duplicate a duplicate name so it aliases completely.
        let mut queries = qs(&texts);
        queries[4].0 = "q0".to_string();
        let c = combine(&queries).unwrap();
        let xml = "<a><a><b/><c/></a><c/><b><a><b/></a></b></a>";
        let events = spex_xml::reader::parse_events(xml).unwrap();
        let (counts, _) = c.set.count_events(events);
        assert_eq!(c.set.ids().len(), 4); // q0 dup dropped
        for (id, count) in c.set.ids().iter().zip(&counts) {
            let idx: usize = id[1..].parse().unwrap();
            let expected = spex_core::evaluate_str(texts[idx], xml).unwrap().len();
            assert_eq!(*count, expected, "query {id} = {}", texts[idx]);
        }
    }

    #[test]
    fn preceding_in_qualifier_is_rejected() {
        let err = combine(&qs(&["a[^b]"])).unwrap_err();
        let _ = format!("{err}");
    }
}
