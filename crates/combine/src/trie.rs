//! The step trie: common-prefix sharing over compiled chain steps.
//!
//! Each distinct (normalized, deduplicated) query is a chain of steps; the
//! trie maps a *path of steps from the input transducer* to the network
//! tape that materializes it. Two queries walking the same edge sequence
//! share every transducer on the way — the trie node's tape — and fork only
//! where their chains diverge. Edges are keyed by [`StepKey`]: either a
//! whole chain step or a qualifier wrap, both identified by their
//! hash-consed [`CanonId`]. Splitting a qualified step `a[q]` into a
//! `Step(a)` edge followed by a `Qual(q)` edge lets `x.a.y` and `x.a[q].z`
//! share the `CH(a)` instance, and lets every query continuing from the
//! same tape with the same qualifier share one compiled qualifier
//! sub-network (one VC/VF/VD group) — the hash-consed qualifier sharing of
//! DESIGN.md §17.

use crate::canon::CanonId;
use spex_core::network::Tape;
use std::collections::HashMap;

/// One trie edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKey {
    /// A chain step (the step's canonical id) compiled by `translate`.
    Step(CanonId),
    /// A qualifier wrap (the qualifier's canonical id) compiled by
    /// `translate_qualifier` around the current tape.
    Qual(CanonId),
}

/// One trie node: the network tape realizing the step path from the root,
/// plus the outgoing edges.
#[derive(Debug)]
struct TrieNode {
    tape: Tape,
    edges: HashMap<StepKey, usize>,
}

/// A trie over compiled chain steps; see the [module documentation](self).
#[derive(Debug)]
pub struct StepTrie {
    nodes: Vec<TrieNode>,
}

impl StepTrie {
    /// A trie whose root is the input transducer's tape.
    pub fn new(root: Tape) -> StepTrie {
        StepTrie {
            nodes: vec![TrieNode {
                tape: root,
                edges: HashMap::new(),
            }],
        }
    }

    /// The root node.
    pub fn root(&self) -> usize {
        0
    }

    /// The tape a node materializes.
    pub fn tape(&self, node: usize) -> Tape {
        self.nodes[node].tape
    }

    /// Follow `key` out of `node`, compiling the step with `build` (which
    /// receives the node's tape) only when the edge does not exist yet.
    /// Returns the target node and whether the edge was already present —
    /// a *hit* means the step's whole sub-network is shared.
    pub fn follow_or_insert(
        &mut self,
        node: usize,
        key: StepKey,
        build: impl FnOnce(Tape) -> Tape,
    ) -> (usize, bool) {
        if let Some(&next) = self.nodes[node].edges.get(&key) {
            return (next, true);
        }
        let tape = build(self.nodes[node].tape);
        let next = self.nodes.len();
        self.nodes.push(TrieNode {
            tape,
            edges: HashMap::new(),
        });
        self.nodes[node].edges.insert(key, next);
        (next, false)
    }

    /// Number of nodes (including the root) — one per distinct compiled
    /// step path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the trie just the root?
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::CanonPool;

    #[test]
    fn shared_prefixes_hit() {
        let mut pool = CanonPool::new();
        let a = StepKey::Step(pool.intern(&"a".parse().unwrap()));
        let b = StepKey::Step(pool.intern(&"b".parse().unwrap()));
        let c = StepKey::Step(pool.intern(&"c".parse().unwrap()));
        // Fake tapes: the builder is exercised in the combiner tests; here
        // a counter stands in for compilation.
        let (mut builder, root) = spex_core::network::NetworkBuilder::with_input();
        let mut trie = StepTrie::new(root);
        let mut compiled = 0;
        let mut walk = |trie: &mut StepTrie, keys: &[StepKey], compiled: &mut usize| {
            let mut node = trie.root();
            for &k in keys {
                let (next, hit) = trie.follow_or_insert(node, k, |tape| {
                    *compiled += 1;
                    builder.chain(
                        spex_core::network::NodeSpec::Child(spex_query::Label::Wildcard),
                        tape,
                    )
                });
                let _ = hit;
                node = next;
            }
            node
        };
        walk(&mut trie, &[a, b], &mut compiled);
        walk(&mut trie, &[a, c], &mut compiled);
        walk(&mut trie, &[a, b], &mut compiled);
        // a, b, c each compiled once; the second `a.b` walk was all hits.
        assert_eq!(compiled, 3);
        assert_eq!(trie.len(), 4); // root + a + b + c
    }
}
