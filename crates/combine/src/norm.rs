//! The rpeq canonical normal form.
//!
//! [`normalize`] rewrites an expression into a canonical representative of
//! its semantic equivalence class, so that structurally-different spellings
//! of the same query — `(a|b)`, `(b|a)`, `((b)|a)` — map to one AST and
//! therefore to **one** compiled sub-network in the combiner. Every rewrite
//! preserves the result *set* (which document nodes the query selects); the
//! engines deliver results in document order regardless of spelling, so the
//! observable output stream is preserved too (property-tested against both
//! engines in `tests/combine.rs`).
//!
//! The normal form:
//!
//! * **Concatenation** is flattened and left-associated; ε factors are
//!   elided (`a.%.b` → `a.b`); adjacent closures over one label collapse
//!   (`a*.a*` → `a*`, `a*.a` → `a+`, `a+.a*` → `a+`).
//! * **Alternation** is flattened, sorted and deduplicated (`b|a|b` →
//!   `a|b`); an ε alternative is factored into an optional (`a|%` → `a?`);
//!   a nullable alternative surrenders its ε to the whole alternation
//!   (`a*|b` → `(a+|b)?`).
//! * **Optionals** collapse (`e??` → `e?`, `a+?` → `a*`, `a*?` → `a*`); an
//!   optional over an already-nullable body is the body.
//! * **Qualifiers** are flattened: a stack `e[q1][q2]` is re-ordered into a
//!   canonical (sorted, deduplicated) stack — a qualifier conjunction is a
//!   set; a *nullable* qualifier is trivially true (the ε path reaches the
//!   context node itself) and is dropped (`e[b*]` → `e`).
//!
//! Normalization is idempotent: `normalize(normalize(q)) == normalize(q)`.

use spex_query::Rpeq;

/// Does the expression's language contain the empty path ε — i.e. does it
/// select the context node itself?
///
/// Conservative for qualified sub-expressions: `e[q]` is treated as
/// non-nullable even when `e` is, because the qualifier must additionally
/// hold at the context node.
pub fn nullable(q: &Rpeq) -> bool {
    match q {
        Rpeq::Empty | Rpeq::Star(_) | Rpeq::Optional(_) => true,
        Rpeq::Union(a, b) => nullable(a) || nullable(b),
        Rpeq::Concat(a, b) => nullable(a) && nullable(b),
        Rpeq::Step(_)
        | Rpeq::Plus(_)
        | Rpeq::Following(_)
        | Rpeq::Preceding(_)
        | Rpeq::Qualified(..) => false,
    }
}

/// Rewrite `q` into its canonical normal form (see the [module
/// documentation](self)).
pub fn normalize(q: &Rpeq) -> Rpeq {
    match q {
        Rpeq::Empty
        | Rpeq::Step(_)
        | Rpeq::Plus(_)
        | Rpeq::Star(_)
        | Rpeq::Following(_)
        | Rpeq::Preceding(_) => q.clone(),
        Rpeq::Concat(..) => {
            let mut parts = Vec::new();
            flatten_concat(q, &mut parts);
            rebuild_concat(parts)
        }
        Rpeq::Union(..) => {
            let mut ops = Vec::new();
            let mut has_empty = false;
            add_union_op(normalize_children_of_union(q), &mut ops, &mut has_empty);
            rebuild_union(ops, has_empty)
        }
        Rpeq::Optional(a) => optional(normalize(a)),
        Rpeq::Qualified(..) => {
            // Unwrap the qualifier stack down to the base expression.
            let mut quals = Vec::new();
            let mut base = q;
            while let Rpeq::Qualified(b, qual) = base {
                quals.push(qual.as_ref());
                base = b;
            }
            let base = normalize(base);
            let mut quals: Vec<Rpeq> = quals
                .into_iter()
                .rev()
                .map(normalize)
                .filter(|x| !nullable(x))
                .collect();
            quals.sort_by_cached_key(|x| x.to_string());
            quals.dedup();
            quals
                .into_iter()
                .fold(base, |acc, x| Rpeq::Qualified(Box::new(acc), Box::new(x)))
        }
    }
}

/// `e?` over an already-normalized body.
fn optional(n: Rpeq) -> Rpeq {
    if nullable(&n) {
        return n; // ε already in the language — e? ≡ e.
    }
    match n {
        Rpeq::Plus(l) => Rpeq::Star(l), // (l+)? ≡ l*.
        other => Rpeq::Optional(Box::new(other)),
    }
}

/// Flatten nested concatenations, normalizing and splicing each factor;
/// ε factors are dropped.
fn flatten_concat(q: &Rpeq, parts: &mut Vec<Rpeq>) {
    match q {
        Rpeq::Concat(a, b) => {
            flatten_concat(a, parts);
            flatten_concat(b, parts);
        }
        other => splice_concat_part(normalize(other), parts),
    }
}

/// Push one normalized factor, re-flattening if normalization itself
/// produced a concatenation (e.g. a singleton union collapsing to one).
fn splice_concat_part(n: Rpeq, parts: &mut Vec<Rpeq>) {
    match n {
        Rpeq::Empty => {}
        Rpeq::Concat(a, b) => {
            splice_concat_part(*a, parts);
            splice_concat_part(*b, parts);
        }
        other => parts.push(other),
    }
}

/// Left-associate the factor list, collapsing adjacent closures over the
/// same label as we go.
fn rebuild_concat(parts: Vec<Rpeq>) -> Rpeq {
    let mut out: Vec<Rpeq> = Vec::with_capacity(parts.len());
    for p in parts {
        out.push(p);
        // A collapse can enable the next one (`a*.a*.a` → `a*.a` → `a+`),
        // so keep folding the tail until it is stable.
        while out.len() >= 2 {
            let b = out.pop().expect("length checked");
            let a = out.pop().expect("length checked");
            match collapse_pair(a, b) {
                Ok(merged) => out.push(merged),
                Err((a, b)) => {
                    out.push(a);
                    out.push(b);
                    break;
                }
            }
        }
    }
    Rpeq::concat_all(out)
}

/// Try to merge two adjacent chain factors over the same label:
/// `l*.l* ≡ l*`, `l*.l ≡ l.l* ≡ l+`, `l+.l* ≡ l*.l+ ≡ l+`.
fn collapse_pair(a: Rpeq, b: Rpeq) -> Result<Rpeq, (Rpeq, Rpeq)> {
    use Rpeq::{Plus, Star, Step};
    match (&a, &b) {
        (Star(x), Star(y)) if x == y => Ok(a),
        (Star(x), Step(y)) | (Step(y), Star(x)) if x == y => Ok(Plus(x.clone())),
        (Star(x), Plus(y)) | (Plus(y), Star(x)) if x == y => Ok(Plus(y.clone())),
        _ => Err((a, b)),
    }
}

/// Normalize the two operands of a top-level union without re-running the
/// union rebuild (the caller flattens).
fn normalize_children_of_union(q: &Rpeq) -> Rpeq {
    match q {
        Rpeq::Union(a, b) => Rpeq::Union(
            Box::new(normalize_children_of_union(a)),
            Box::new(normalize_children_of_union(b)),
        ),
        other => normalize(other),
    }
}

/// Collect one normalized union alternative, factoring ε out: an `%`
/// alternative, an optional body, or a `l*` (recorded as `l+`) all set the
/// shared `has_empty` flag.
fn add_union_op(n: Rpeq, ops: &mut Vec<Rpeq>, has_empty: &mut bool) {
    match n {
        Rpeq::Empty => *has_empty = true,
        Rpeq::Optional(x) => {
            *has_empty = true;
            add_union_op(*x, ops, has_empty);
        }
        Rpeq::Star(l) => {
            *has_empty = true;
            ops.push(Rpeq::Plus(l));
        }
        Rpeq::Union(a, b) => {
            add_union_op(*a, ops, has_empty);
            add_union_op(*b, ops, has_empty);
        }
        other => ops.push(other),
    }
}

/// Sort, deduplicate and left-associate the alternatives; re-attach a
/// factored-out ε as an optional.
fn rebuild_union(mut ops: Vec<Rpeq>, has_empty: bool) -> Rpeq {
    ops.sort_by_cached_key(|x| x.to_string());
    ops.dedup();
    let u = match ops.len() {
        0 => return Rpeq::Empty, // every alternative was ε
        1 => ops.pop().expect("length checked"),
        _ => {
            let mut it = ops.into_iter();
            let first = it.next().expect("length checked");
            it.fold(first, |acc, x| Rpeq::Union(Box::new(acc), Box::new(x)))
        }
    };
    if has_empty {
        optional(u)
    } else {
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> String {
        normalize(&s.parse().unwrap()).to_string()
    }

    #[test]
    fn unions_sort_dedup_and_flatten() {
        assert_eq!(n("b|a"), "a|b");
        assert_eq!(n("(b|a)|b"), "a|b");
        assert_eq!(n("((a|b)|(c|a))"), "a|b|c");
        assert_eq!(n("a|a"), "a");
    }

    #[test]
    fn empty_alternative_becomes_optional() {
        assert_eq!(n("a|%"), "a?");
        assert_eq!(n("%|a|b"), "(a|b)?");
        assert_eq!(n("%|%"), "%");
        assert_eq!(n("a+|%"), "a*");
        assert_eq!(n("a*|b"), "(a+|b)?");
    }

    #[test]
    fn concat_flattens_and_drops_empty() {
        assert_eq!(n("a.%.b"), "a.b");
        assert_eq!(n("a.(b.c)"), "a.b.c");
        assert_eq!(n("%.%"), "%");
    }

    #[test]
    fn adjacent_closures_collapse() {
        assert_eq!(n("a*.a*"), "a*");
        assert_eq!(n("a*.a"), "a+");
        assert_eq!(n("a.a*"), "a+");
        assert_eq!(n("a+.a*"), "a+");
        assert_eq!(n("a*.a+"), "a+");
        assert_eq!(n("_*._"), "_+");
        assert_eq!(n("a*.a*.a"), "a+");
        // Different labels do not collapse.
        assert_eq!(n("a*.b*"), "a*.b*");
        // l+.l+ selects depth ≥ 2 — not collapsible.
        assert_eq!(n("a+.a+"), "a+.a+");
    }

    #[test]
    fn optionals_collapse() {
        assert_eq!(n("a??"), "a?");
        assert_eq!(n("a+?"), "a*");
        assert_eq!(n("a*?"), "a*");
        assert_eq!(n("%?"), "%");
        assert_eq!(n("(a?.b*)?"), "a?.b*");
    }

    #[test]
    fn qualifier_stacks_sort_dedup_and_drop_trivial() {
        assert_eq!(n("a[c][b]"), "a[b][c]");
        assert_eq!(n("a[b][b]"), "a[b]");
        assert_eq!(n("a[b*]"), "a"); // ε path reaches the context node.
        assert_eq!(n("a[b?]"), "a");
        assert_eq!(n("a[%]"), "a");
        assert_eq!(n("a[b|%][c]"), "a[c]");
        assert_eq!(n("a[c|b]"), "a[b|c]");
    }

    #[test]
    fn nested_rewrites_compose() {
        assert_eq!(n("(b|a).(%|c)"), "(a|b).c?");
        assert_eq!(n("x[(b|a).d].y"), "x[(a|b).d].y");
        assert_eq!(n("_*._*.a"), "_*.a");
    }

    #[test]
    fn normalization_is_idempotent_on_examples() {
        for s in [
            "b|a",
            "a|%",
            "a*.a",
            "a[c][b]",
            "(b|a).(%|c)",
            "x[(b|a).d].y",
            "a*|b",
            "~x.^y",
            "_*.country[name].city?",
        ] {
            let once = normalize(&s.parse().unwrap());
            assert_eq!(normalize(&once), once, "not idempotent on {s}");
        }
    }

    #[test]
    fn nullable_cases() {
        assert!(nullable(&"a*".parse().unwrap()));
        assert!(nullable(&"a?".parse().unwrap()));
        assert!(nullable(&"%".parse().unwrap()));
        assert!(nullable(&"a*.b?".parse().unwrap()));
        assert!(!nullable(&"a".parse().unwrap()));
        assert!(!nullable(&"a+".parse().unwrap()));
        assert!(!nullable(&"a*.b".parse().unwrap()));
        assert!(!nullable(&"a*[b]".parse().unwrap()));
    }
}
