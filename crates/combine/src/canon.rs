//! Hash-consing of normalized sub-expressions.
//!
//! A [`CanonPool`] interns normalized [`Rpeq`] values: structurally equal
//! sub-expressions — a chain step, a qualifier, a whole query — receive one
//! [`CanonId`]. The combiner keys its step trie and its compiled-instance
//! memo on these integer ids instead of the pretty-printed strings the old
//! `SharedQuerySet` memo used: an id comparison is O(1), cannot collide and
//! cannot drift out of sync with the printer.

use spex_query::Rpeq;
use std::collections::HashMap;

/// The interned identity of a normalized sub-expression. Two ids are equal
/// iff the underlying expressions are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonId(u32);

impl CanonId {
    /// The id as a dense index into the pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning pool over normalized expressions (hash-consing).
#[derive(Debug, Default)]
pub struct CanonPool {
    ids: HashMap<Rpeq, CanonId>,
    exprs: Vec<Rpeq>,
}

impl CanonPool {
    /// An empty pool.
    pub fn new() -> CanonPool {
        CanonPool::default()
    }

    /// Intern a **normalized** expression, returning its id; equal
    /// structures share one id. Sub-expressions (union alternatives,
    /// concatenation factors, optional and qualifier bodies) are interned
    /// too, so the pool doubles as a census of shared substructure.
    pub fn intern(&mut self, expr: &Rpeq) -> CanonId {
        if let Some(&id) = self.ids.get(expr) {
            return id;
        }
        match expr {
            Rpeq::Empty
            | Rpeq::Step(_)
            | Rpeq::Plus(_)
            | Rpeq::Star(_)
            | Rpeq::Following(_)
            | Rpeq::Preceding(_) => {}
            Rpeq::Union(a, b) | Rpeq::Concat(a, b) | Rpeq::Qualified(a, b) => {
                self.intern(a);
                self.intern(b);
            }
            Rpeq::Optional(a) => {
                self.intern(a);
            }
        }
        let id = CanonId(u32::try_from(self.exprs.len()).expect("pool overflow"));
        self.ids.insert(expr.clone(), id);
        self.exprs.push(expr.clone());
        id
    }

    /// The expression behind an id.
    pub fn expr(&self, id: CanonId) -> &Rpeq {
        &self.exprs[id.index()]
    }

    /// Number of distinct sub-expressions interned.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_structures_share_an_id() {
        let mut pool = CanonPool::new();
        let a: Rpeq = "a[b.c]".parse().unwrap();
        let b: Rpeq = "a[b.c]".parse().unwrap();
        assert_eq!(pool.intern(&a), pool.intern(&b));
        assert_ne!(pool.intern(&a), pool.intern(&"a[b]".parse().unwrap()));
    }

    #[test]
    fn subexpressions_are_interned() {
        let mut pool = CanonPool::new();
        let id = pool.intern(&"a[b.c]".parse().unwrap());
        // The qualifier `b.c` got its own id, shared with a later query
        // using the same qualifier.
        let qual = pool.intern(&"b.c".parse().unwrap());
        assert!(qual.index() < id.index());
        assert_eq!(pool.expr(qual).to_string(), "b.c");
    }
}
