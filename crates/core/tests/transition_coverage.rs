//! Transition-table coverage: every numbered transition of the paper's
//! figures must fire at least once across a suite of scenario runs — a
//! guard against silently dead rows in the implementations of Figs. 2, 3,
//! 6, 7 and 10.

use spex_core::{CompiledNetwork, CountingSink, Evaluator};
use std::collections::{BTreeSet, HashMap};

/// Run `query` over `xml` with tracing and accumulate the fired transition
/// numbers per node description into `seen`.
fn collect(query: &str, xml: &str, seen: &mut HashMap<String, BTreeSet<u8>>) {
    let net = CompiledNetwork::compile(&query.parse().unwrap());
    let desc = net.spec().describe();
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.set_tracing(true);
    for ev in spex_xml::reader::parse_events(xml).unwrap() {
        eval.push(ev);
        for (node, trace) in desc.iter().zip(eval.take_traces()) {
            let kind = node.split('(').next().unwrap_or(node).to_string();
            let entry = seen.entry(kind).or_default();
            for t in trace.split(',').filter(|s| !s.is_empty()) {
                entry.insert(t.parse().expect("trace numbers"));
            }
        }
    }
    eval.finish();
}

fn scenario_suite() -> HashMap<String, BTreeSet<u8>> {
    let mut seen = HashMap::new();
    let cases: &[(&str, &str)] = &[
        // The paper's own examples.
        ("a.c", "<a><a><c/></a><b/><c/></a>"),
        ("a+.c+", "<a><a><c/></a><b/><c/></a>"),
        ("_*.a[b].c", "<a><a><c/></a><b/><c/></a>"),
        // Child transducer: nested activations on matching labels (11).
        ("_*.a.a", "<a><a><a/></a></a>"),
        ("_*.a.b", "<a><a><b/></a><b/></a>"),
        // Closure: nested scopes on matching (12) and non-matching (13)
        // openers, excursions (8/4), outer scope end (11).
        ("_*.a+.b", "<x><a><a><b/></a><x><y/></x><b/></a></x>"),
        ("a+.a+", "<a><a><a/></a></a>"),
        // Qualifiers: satisfied and unsatisfied instances, nested instances,
        // past and future conditions.
        ("_*.a[b]", "<a><b/><a><c/></a></a>"),
        ("_*.a[b].c", "<r><a><c/><b/></a><a><b/><c/></a></r>"),
        ("_*._[x]._*._[y]._", "<a><x/><b><y/><c><d/></c></b></a>"),
        // Unions and optionals exercise SP/JO/UN.
        ("(a|b).c", "<a><c/></a>"),
        ("a?.b", "<a><b/></a>"),
        ("a*.b", "<a><a><b/></a><b/></a>"),
        ("(a|a).b", "<a><b/></a>"),
        // Following / preceding.
        ("r.a.~b.c", "<r><a/><b><c/></b></r>"),
        ("r.a.^b", "<r><b/><a/><b/></r>"),
        // Text content flows through everything.
        ("r.k", "<r>pre<k>in</k>post</r>"),
    ];
    for (q, d) in cases {
        collect(q, d, &mut seen);
    }
    seen
}

#[test]
fn child_transducer_full_table() {
    let seen = scenario_suite();
    let ch = &seen["CH"];
    // Fig. 2 has 13 transitions.
    let expected: BTreeSet<u8> = (1..=13).collect();
    let missing: Vec<u8> = expected.difference(ch).copied().collect();
    assert!(
        missing.is_empty(),
        "CH transitions never fired: {missing:?}"
    );
}

#[test]
fn closure_transducer_full_table() {
    let seen = scenario_suite();
    let cl = &seen["CL"];
    // Fig. 3 has 14 transitions (the determination update is 14 here).
    let expected: BTreeSet<u8> = (1..=14).collect();
    let missing: Vec<u8> = expected.difference(cl).copied().collect();
    assert!(
        missing.is_empty(),
        "CL transitions never fired: {missing:?}"
    );
}

#[test]
fn variable_creator_full_table() {
    let seen = scenario_suite();
    let vc = &seen["VC"];
    // Fig. 6 has 6 transitions; 6 (determination pass-through) requires a
    // determination to cross a VC, which the nested-qualifier case provides.
    let expected: BTreeSet<u8> = (1..=6).collect();
    let missing: Vec<u8> = expected.difference(vc).copied().collect();
    assert!(
        missing.is_empty(),
        "VC transitions never fired: {missing:?}"
    );
}

#[test]
fn connector_tables() {
    let seen = scenario_suite();
    // VD: activations determined (1) and pass-through (2).
    let vd = &seen["VD"];
    assert!(vd.contains(&1), "VD(1) never fired");
    // UN: store (1), merge (2), emit (3), determination pass (4).
    let un = &seen["UN"];
    for t in [1u8, 2, 3, 4] {
        assert!(un.contains(&t), "UN({t}) never fired: {un:?}");
    }
    // IN fires its activation, SP forwards, VF passes matches.
    assert!(seen["IN"].contains(&1));
    assert!(seen["SP"].contains(&1));
    assert!(seen["VF"].contains(&1));
}

#[test]
fn axis_extension_tables() {
    let seen = scenario_suite();
    let fo = &seen["FO"];
    for t in [1u8, 2, 3, 4] {
        assert!(fo.contains(&t), "FO({t}) never fired: {fo:?}");
    }
    let pr = &seen["PR"];
    for t in [1u8, 2, 3, 4] {
        assert!(pr.contains(&t), "PR({t}) never fired: {pr:?}");
    }
}
