//! Progressive result delivery.
//!
//! The output transducer emits result fragments — the range of document
//! messages from a matched `<l>` to its `</l>` — in document order, as soon
//! as (a) the fragment's condition formula is determined true and (b) all
//! earlier candidates are decided (§III.8). A [`ResultSink`] receives those
//! fragments event by event; the `tick` arguments let tests assert
//! *progressiveness* (content of "past condition" results is delivered
//! before the stream ends).
//!
//! Sinks receive borrowed [`RawEvent`] views into the run's event arena —
//! the zero-copy end of the pipeline. A sink that needs to keep an event
//! past the callback (e.g. [`crate::recover::Quarantine`]) converts it
//! with [`RawEvent::to_owned_event`]; the built-in sinks serialize or count
//! without ever materializing owned events.

use spex_xml::RawEvent;

/// Metadata identifying a result fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultMeta {
    /// The tick (document-message index, 0-based from `<$>`) at which the
    /// fragment's opening message appeared in the stream. This uniquely
    /// identifies the result node, which the equivalence tests exploit.
    pub start_tick: u64,
}

/// Receives result fragments progressively.
pub trait ResultSink {
    /// A fragment begins. `now` is the current tick (when this became known).
    fn begin(&mut self, meta: ResultMeta, now: u64);
    /// One event of the current fragment, in document order. The view
    /// borrows from the run's event arena and is only valid for the call.
    fn event(&mut self, event: &RawEvent<'_>, now: u64);
    /// The current fragment is complete.
    fn end(&mut self, now: u64);
}

/// Collects fragments as serialized XML strings.
///
/// Serialization is incremental: each event is written into the fragment's
/// byte buffer as it arrives, so nothing is buffered as events — the arena
/// can recycle the payload immediately after the callback returns.
#[derive(Default)]
pub struct FragmentCollector {
    fragments: Vec<String>,
    current: Option<spex_xml::Writer<Vec<u8>>>,
    /// `(start_tick, first_delivery_tick)` per fragment, for progressiveness
    /// assertions.
    pub timing: Vec<(u64, u64)>,
}

impl std::fmt::Debug for FragmentCollector {
    // Manual impl: `spex_xml::Writer` is not `Debug`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FragmentCollector")
            .field("fragments", &self.fragments)
            .field("in_fragment", &self.current.is_some())
            .field("timing", &self.timing)
            .finish()
    }
}

impl FragmentCollector {
    /// An empty collector.
    pub fn new() -> Self {
        FragmentCollector::default()
    }

    /// The collected fragments, serialized compactly.
    pub fn fragments(&self) -> &[String] {
        &self.fragments
    }

    /// Consume the collector, returning the fragments.
    pub fn into_fragments(self) -> Vec<String> {
        self.fragments
    }
}

impl ResultSink for FragmentCollector {
    fn begin(&mut self, meta: ResultMeta, now: u64) {
        self.current = Some(spex_xml::Writer::new(Vec::new()));
        self.timing.push((meta.start_tick, now));
    }

    fn event(&mut self, event: &RawEvent<'_>, _now: u64) {
        if let Some(w) = &mut self.current {
            w.write_view(event)
                .expect("writing a fragment to a Vec cannot fail");
        }
    }

    fn end(&mut self, _now: u64) {
        if let Some(w) = self.current.take() {
            let bytes = w.into_inner().expect("flush to Vec cannot fail");
            self.fragments
                .push(String::from_utf8(bytes).expect("writer output is valid UTF-8"));
        }
    }
}

/// Counts results without storing them (for throughput benchmarks).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of complete fragments received.
    pub results: usize,
    /// Number of events received across all fragments.
    pub events: usize,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl ResultSink for CountingSink {
    fn begin(&mut self, _meta: ResultMeta, _now: u64) {}

    fn event(&mut self, _event: &RawEvent<'_>, _now: u64) {
        self.events += 1;
    }

    fn end(&mut self, _now: u64) {
        self.results += 1;
    }
}

/// Writes result fragments to an [`std::io::Write`] sink **as they are
/// emitted** — one fragment per line. This is SPEX's progressive delivery
/// made visible: for past-condition queries, output appears while the input
/// is still streaming in.
///
/// Write errors are sticky: the first one is kept and delivery stops;
/// inspect it with [`StreamingSink::take_error`].
pub struct StreamingSink<W: std::io::Write> {
    writer: spex_xml::Writer<W>,
    error: Option<spex_xml::XmlError>,
    /// Completed fragments so far.
    pub results: usize,
}

impl<W: std::io::Write> StreamingSink<W> {
    /// Stream fragments to `out`.
    pub fn new(out: W) -> Self {
        StreamingSink {
            writer: spex_xml::Writer::new(out),
            error: None,
            results: 0,
        }
    }

    /// The first write error, if any occurred.
    pub fn take_error(&mut self) -> Option<spex_xml::XmlError> {
        self.error.take()
    }

    fn try_write(&mut self, event: &RawEvent<'_>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_view(event) {
            self.error = Some(e);
        }
    }
}

impl<W: std::io::Write> ResultSink for StreamingSink<W> {
    fn begin(&mut self, _meta: ResultMeta, _now: u64) {}

    fn event(&mut self, event: &RawEvent<'_>, _now: u64) {
        self.try_write(event);
    }

    fn end(&mut self, _now: u64) {
        self.results += 1;
        // One fragment per line; flush so consumers see it immediately.
        self.try_write(&RawEvent::Text("\n"));
        if let Err(e) = self.writer.flush_inner() {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

/// Serializes each fragment into a private buffer and hands the completed
/// bytes to a callback — the serialization is byte-identical to
/// [`StreamingSink`] minus the trailing newline (same [`spex_xml::Writer`],
/// fresh per fragment).
///
/// This is the sink for consumers that multiplex several queries onto one
/// output channel (the multi-query CLI, the `spex-serve` result frames):
/// within-fragment progressiveness is traded for whole fragments that can be
/// labeled and interleaved safely.
pub struct FragmentFnSink<F: FnMut(&[u8])> {
    current: Option<spex_xml::Writer<Vec<u8>>>,
    deliver: F,
    /// Completed fragments so far.
    pub results: u64,
}

impl<F: FnMut(&[u8])> FragmentFnSink<F> {
    /// Deliver each completed fragment's serialized bytes to `deliver`.
    pub fn new(deliver: F) -> Self {
        FragmentFnSink {
            current: None,
            deliver,
            results: 0,
        }
    }
}

impl<F: FnMut(&[u8])> ResultSink for FragmentFnSink<F> {
    fn begin(&mut self, _meta: ResultMeta, _now: u64) {
        self.current = Some(spex_xml::Writer::new(Vec::new()));
    }

    fn event(&mut self, event: &RawEvent<'_>, _now: u64) {
        if let Some(w) = &mut self.current {
            w.write_view(event)
                .expect("writing a fragment to a Vec cannot fail");
        }
    }

    fn end(&mut self, _now: u64) {
        if let Some(w) = self.current.take() {
            let bytes = w.into_inner().expect("flush to Vec cannot fail");
            self.results += 1;
            (self.deliver)(&bytes);
        }
    }
}

/// One physical network sink's delivery target: either a single logical
/// sink, or a fan-out to several.
///
/// The multi-query combiner ([`crate::multi::SharedQuerySet`] built by
/// `spex-combine`) deduplicates queries whose canonical forms are equal:
/// one physical OU serves every aliased registration. At run instantiation
/// the logical per-query sinks are partitioned into one `SinkGroup` per
/// physical sink; a group with aliases replays each `begin`/`event`/`end`
/// callback to all of its members in registration order. Fan-out happens at
/// result-delivery time — the rare path — so aliased queries add zero
/// per-event cost.
pub enum SinkGroup<'s> {
    /// The common case: one physical sink, one logical sink.
    One(&'s mut dyn ResultSink),
    /// An aliased sink: every member receives every fragment.
    Fanout(Vec<&'s mut dyn ResultSink>),
}

impl std::fmt::Debug for SinkGroup<'_> {
    // Manual impl: trait objects are not `Debug`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkGroup::One(_) => f.write_str("SinkGroup::One"),
            SinkGroup::Fanout(v) => write!(f, "SinkGroup::Fanout({})", v.len()),
        }
    }
}

impl<'s> SinkGroup<'s> {
    /// Partition `sinks` (one per logical query) into one group per physical
    /// sink slot. `slot_of[i]` names the physical slot logical sink `i`
    /// feeds from; `slots` is the number of physical sinks.
    ///
    /// # Panics
    ///
    /// If `slot_of.len() != sinks.len()`, if any slot index is out of
    /// range, or if a physical slot ends up with no logical sink (every
    /// physical sink must deliver somewhere).
    pub fn partition(
        sinks: Vec<&'s mut dyn ResultSink>,
        slot_of: &[usize],
        slots: usize,
    ) -> Vec<SinkGroup<'s>> {
        assert_eq!(
            sinks.len(),
            slot_of.len(),
            "{} sink(s) provided for {} logical queries",
            sinks.len(),
            slot_of.len()
        );
        let mut groups: Vec<Vec<&'s mut dyn ResultSink>> = (0..slots).map(|_| Vec::new()).collect();
        for (sink, &slot) in sinks.into_iter().zip(slot_of) {
            assert!(slot < slots, "sink slot {slot} out of range ({slots})");
            groups[slot].push(sink);
        }
        groups
            .into_iter()
            .enumerate()
            .map(|(slot, mut g)| {
                assert!(!g.is_empty(), "physical sink {slot} has no logical sink");
                if g.len() == 1 {
                    SinkGroup::One(g.pop().expect("length checked"))
                } else {
                    SinkGroup::Fanout(g)
                }
            })
            .collect()
    }
}

impl ResultSink for SinkGroup<'_> {
    fn begin(&mut self, meta: ResultMeta, now: u64) {
        match self {
            SinkGroup::One(s) => s.begin(meta, now),
            SinkGroup::Fanout(v) => {
                for s in v {
                    s.begin(meta, now);
                }
            }
        }
    }

    fn event(&mut self, event: &RawEvent<'_>, now: u64) {
        match self {
            SinkGroup::One(s) => s.event(event, now),
            SinkGroup::Fanout(v) => {
                for s in v {
                    s.event(event, now);
                }
            }
        }
    }

    fn end(&mut self, now: u64) {
        match self {
            SinkGroup::One(s) => s.end(now),
            SinkGroup::Fanout(v) => {
                for s in v {
                    s.end(now);
                }
            }
        }
    }
}

/// Collects only the start ticks of result fragments — the node identities.
/// This is what the SPEX-vs-baseline equivalence tests compare.
#[derive(Debug, Default)]
pub struct SpanCollector {
    /// Start tick of each result, in emission (document) order.
    pub starts: Vec<u64>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }
}

impl ResultSink for SpanCollector {
    fn begin(&mut self, meta: ResultMeta, _now: u64) {
        self.starts.push(meta.start_tick);
    }

    fn event(&mut self, _event: &RawEvent<'_>, _now: u64) {}

    fn end(&mut self, _now: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::{RawEvent, XmlEvent};

    #[test]
    fn fragment_collector_serializes() {
        let mut c = FragmentCollector::new();
        c.begin(ResultMeta { start_tick: 3 }, 5);
        c.event(&RawEvent::from_event(&XmlEvent::open("a")), 5);
        c.event(&RawEvent::Text("x"), 6);
        c.event(&RawEvent::from_event(&XmlEvent::close("a")), 7);
        c.end(7);
        assert_eq!(c.fragments(), ["<a>x</a>".to_string()]);
        assert_eq!(c.timing, vec![(3, 5)]);
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::new();
        for _ in 0..2 {
            c.begin(ResultMeta { start_tick: 0 }, 0);
            c.event(&RawEvent::from_event(&XmlEvent::open("a")), 0);
            c.event(&RawEvent::from_event(&XmlEvent::close("a")), 0);
            c.end(0);
        }
        assert_eq!(c.results, 2);
        assert_eq!(c.events, 4);
    }

    #[test]
    fn streaming_sink_writes_progressively() {
        let mut out = Vec::new();
        {
            let mut s = StreamingSink::new(&mut out);
            s.begin(ResultMeta { start_tick: 1 }, 1);
            s.event(&RawEvent::from_event(&XmlEvent::open("a")), 1);
            s.event(&RawEvent::Text("x"), 2);
            s.event(&RawEvent::from_event(&XmlEvent::close("a")), 3);
            s.end(3);
            assert_eq!(s.results, 1);
            assert!(s.take_error().is_none());
        }
        assert_eq!(String::from_utf8(out).unwrap(), "<a>x</a>\n");
    }

    #[test]
    fn streaming_sink_keeps_first_write_error() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("nope"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = StreamingSink::new(Broken);
        s.begin(ResultMeta { start_tick: 0 }, 0);
        s.event(&RawEvent::from_event(&XmlEvent::open("a")), 0);
        s.event(&RawEvent::from_event(&XmlEvent::close("a")), 0);
        s.end(0);
        assert!(s.take_error().is_some());
    }

    #[test]
    fn sink_group_fans_out_to_every_alias() {
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        let mut c = CountingSink::new();
        {
            let sinks: Vec<&mut dyn ResultSink> = vec![&mut a, &mut b, &mut c];
            // Logical sinks 0 and 2 alias physical slot 0; sink 1 is alone
            // on slot 1.
            let mut groups = SinkGroup::partition(sinks, &[0, 1, 0], 2);
            assert_eq!(groups.len(), 2);
            groups[0].begin(ResultMeta { start_tick: 4 }, 4);
            groups[0].event(&RawEvent::from_event(&XmlEvent::open("x")), 4);
            groups[0].end(5);
        }
        assert_eq!((a.results, b.results, c.results), (1, 0, 1));
        assert_eq!((a.events, c.events), (1, 1));
    }

    #[test]
    #[should_panic(expected = "physical sink 1 has no logical sink")]
    fn sink_group_rejects_unserved_slots() {
        let mut a = CountingSink::new();
        let sinks: Vec<&mut dyn ResultSink> = vec![&mut a];
        let _ = SinkGroup::partition(sinks, &[0], 2);
    }

    #[test]
    fn span_collector_records_starts() {
        let mut c = SpanCollector::new();
        c.begin(ResultMeta { start_tick: 2 }, 9);
        c.end(9);
        c.begin(ResultMeta { start_tick: 7 }, 9);
        c.end(9);
        assert_eq!(c.starts, vec![2, 7]);
    }
}
